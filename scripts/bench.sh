#!/usr/bin/env bash
# Runs the timing-harness suites through the shipped `varbench bench`
# subcommand and emits a machine-readable perf snapshot as
# BENCH_<label>.json (a JSON array of objects, one per benchmark).
#
# The same snapshot is reproducible without cargo from the built binary:
#   target/release/varbench bench --json > BENCH_results.json
#
# Usage: scripts/bench.sh [label] [--quick]
#   label     suffix of the output file (default: results)
#   --quick   fast smoke knobs (5 reps, 2 ms targets) — for CI gating,
#             not for committed trajectory snapshots
# Env:
#   VARBENCH_BENCH_REPS        repetitions per benchmark (default harness: 11)
#   VARBENCH_BENCH_TARGET_MS   calibrated wall time per rep (default: 5)

set -euo pipefail
cd "$(dirname "$0")/.."

label="results"
quick=()
for arg in "$@"; do
    case "$arg" in
        --quick) quick=(--quick) ;;
        -*) echo "unknown flag $arg" >&2; exit 2 ;;
        *) label="$arg" ;;
    esac
done
out="BENCH_${label}.json"

echo "== building varbench (release) ==" >&2
cargo build --release --offline -p varbench-bench --bin varbench >&2

echo "== running timing suites (varbench bench) ==" >&2
target/release/varbench bench "${quick[@]}" --json > "$out"

count=$(grep -c '"name"' "$out" || true)
echo "wrote $out ($count benchmarks)" >&2
