#!/usr/bin/env bash
# Runs the timing-harness micro-benches and emits a machine-readable perf
# snapshot as BENCH_<label>.json (an array of objects, one per benchmark
# line printed by varbench_bench::timing).
#
# Usage: scripts/bench.sh [label]
#   label   suffix of the output file (default: results)
# Env:
#   VARBENCH_BENCH_REPS        repetitions per benchmark (default harness: 11)
#   VARBENCH_BENCH_TARGET_MS   calibrated wall time per rep (default: 5)

set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-results}"
out="BENCH_${label}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== running timing-harness benches (cargo bench) ==" >&2
cargo bench --offline -p varbench-bench 2>/dev/null | tee /dev/stderr | grep '^bench ' > "$raw" || {
    echo "no benchmark lines captured" >&2
    exit 1
}

# Convert `bench suite=stats name=mean_n10000 iters=.. reps=.. median_ns=..
# min_ns=.. max_ns=..` lines into a JSON array.
awk '
BEGIN { print "["; first = 1 }
{
    line = ""
    for (i = 2; i <= NF; i++) {
        split($i, kv, "=")
        if (kv[1] == "suite" || kv[1] == "name") {
            field = "\"" kv[1] "\":\"" kv[2] "\""
        } else {
            field = "\"" kv[1] "\":" kv[2]
        }
        line = line (i > 2 ? "," : "") field
    }
    if (!first) printf(",\n")
    printf("  {%s}", line)
    first = 0
}
END { print "\n]" }
' "$raw" > "$out"

count=$(grep -c '^bench ' "$raw")
echo "wrote $out ($count benchmarks)" >&2
