#!/usr/bin/env bash
# Tier-1 verification plus lint gates for the varbench workspace.
#
# Designed for fully offline machines: the workspace has zero external
# dependencies, so everything here works with an empty cargo registry.
# rustfmt/clippy steps skip gracefully when the components are absent.
#
# Usage: scripts/ci.sh
# Env:
#   VARBENCH_THREADS      thread count for Runner-driven paths (0 = all cores)
#   CI_SKIP_SPEEDUP=1     skip the fig5 parallel-speedup benchmark even on
#                         machines with >= 4 cores

set -euo pipefail
cd "$(dirname "$0")/.."

say() { printf '\n== %s ==\n' "$*"; }

# One scratch area for every step; the trap also reaps a serve process
# or stray worker subprocesses left behind by a failed smoke step.
scratch=$(mktemp -d)
serve_pid=""
trap 'rm -rf "$scratch"; [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null;
      pkill -f "varbench worker" 2>/dev/null || true' EXIT

say "tier-1: cargo build --release"
cargo build --release --offline

say "tier-1: cargo test -q"
cargo test -q --offline

say "varbench CLI: list + workloads + run all --test --json"
target/release/varbench list
target/release/varbench workloads --test
target/release/varbench run all --test --json > /dev/null
# The two non-MLP workloads must produce variance reports end to end.
target/release/varbench run workload-linear workload-synth --test > /dev/null
target/release/varbench cache stats
# Unknown flags must fail fast (the --ful typo regression).
if target/release/varbench run fig1 --ful >/dev/null 2>&1; then
    echo "ERROR: varbench accepted an unknown flag" >&2
    exit 1
fi

say "varbench serve: loopback smoke (serve <-> CLI byte-identity)"
servedir="$scratch/serve"
mkdir -p "$servedir"
VARBENCH_CACHE_DIR="$servedir/cache" target/release/varbench serve \
    --addr 127.0.0.1:0 --serial --ready-file "$servedir/ready" &
serve_pid=$!
for _ in $(seq 1 100); do [ -s "$servedir/ready" ] && break; sleep 0.1; done
[ -s "$servedir/ready" ] || { echo "ERROR: serve never became ready" >&2; exit 1; }
addr=$(cat "$servedir/ready")
# `varbench query` is the std-only curl stand-in (one TcpStream exchange).
target/release/varbench query --addr "$addr" /health > /dev/null
target/release/varbench query --addr "$addr" /v1/workloads > /dev/null
# The served report must be byte-for-byte the offline CLI's --json output.
target/release/varbench query --addr "$addr" /v1/run \
    '{"artifacts":["workload-synth"],"effort":"test"}' > "$servedir/served.json"
VARBENCH_CACHE_DIR="$servedir/cache" \
    target/release/varbench run workload-synth --test --json \
    > "$servedir/offline.json" 2> /dev/null
if ! cmp -s "$servedir/served.json" "$servedir/offline.json"; then
    echo "ERROR: served report differs from offline varbench run" >&2
    diff "$servedir/served.json" "$servedir/offline.json" >&2 || true
    exit 1
fi
# Remote study through the same server, then a clean shutdown.
target/release/varbench study synthetic-ridge --test --seeds 3 --json \
    --addr "$addr" > /dev/null
target/release/varbench query --addr "$addr" --post /v1/shutdown > /dev/null
wait "$serve_pid"
serve_pid=""
# The shared on-disk store survives; gc finds nothing to reclaim.
VARBENCH_CACHE_DIR="$servedir/cache" target/release/varbench cache gc

say "chaos smoke: sharded study survives a kill -9'd worker"
# Faultpoints are compiled in under debug_assertions, so this step runs
# the debug binary (already built by the cargo test step above).
cargo build --offline -q -p varbench-bench --bin varbench
chaosdir="$scratch/chaos"
mkdir -p "$chaosdir/solo" "$chaosdir/fleet"
# Ground truth: the same study, one process, its own fresh cache.
VARBENCH_CACHE_DIR="$chaosdir/solo" target/debug/varbench \
    study synthetic-ridge --test --seeds 4 --budget 3 --json \
    > "$chaosdir/solo.json" 2> /dev/null
# Sharded run on a second fresh cache: four workers, and the kill1
# sentinel guarantees exactly one of them aborts (kill -9 style) in the
# middle of its first row. The driver must reclaim the dead lease,
# re-dispatch, and emit byte-identical output.
VARBENCH_CACHE_DIR="$chaosdir/fleet" \
    VARBENCH_FAULT="worker:mid-row:kill1=$chaosdir/killed" \
    target/debug/varbench \
    study synthetic-ridge --test --seeds 4 --budget 3 --json \
    --workers 4 --row-timeout-ms 500 \
    > "$chaosdir/fleet.json" 2> "$chaosdir/fleet.err"
if [ ! -f "$chaosdir/killed" ]; then
    echo "ERROR: no worker hit the armed faultpoint (chaos smoke proved nothing)" >&2
    exit 1
fi
if ! cmp -s "$chaosdir/solo.json" "$chaosdir/fleet.json"; then
    echo "ERROR: sharded study differs from the single-process run" >&2
    cat "$chaosdir/fleet.err" >&2
    diff "$chaosdir/solo.json" "$chaosdir/fleet.json" >&2 || true
    exit 1
fi
# The dead worker's leftovers are gc-able garbage, never torn records.
VARBENCH_CACHE_DIR="$chaosdir/fleet" target/debug/varbench cache gc

say "serve chaos A: fleet-backed study survives a kill -9'd worker"
# The server supervises its own 2-worker fleet; the kill1 sentinel
# guarantees exactly one worker aborts mid-row under the served study.
# The supervisor respawns it, the dispatch loop reclaims the dead
# lease, and the response must still byte-match the single-process run.
fleetdir="$scratch/servefleet"
mkdir -p "$fleetdir/cache"
VARBENCH_CACHE_DIR="$fleetdir/cache" \
    VARBENCH_FAULT="worker:mid-row:kill1=$fleetdir/killed" \
    target/debug/varbench serve --addr 127.0.0.1:0 --serial \
    --workers 2 --row-timeout-ms 500 --ready-file "$fleetdir/ready" \
    2> "$fleetdir/serve.err" &
serve_pid=$!
for _ in $(seq 1 100); do [ -s "$fleetdir/ready" ] && break; sleep 0.1; done
[ -s "$fleetdir/ready" ] || { echo "ERROR: fleet serve never became ready" >&2; exit 1; }
fleet_addr=$(cat "$fleetdir/ready")
target/debug/varbench query --addr "$fleet_addr" /v1/ready > /dev/null
target/debug/varbench study synthetic-ridge --test --seeds 4 --budget 3 --json \
    --dispatch --addr "$fleet_addr" > "$fleetdir/served.json"
if [ ! -f "$fleetdir/killed" ]; then
    echo "ERROR: no fleet worker hit the armed faultpoint (serve chaos proved nothing)" >&2
    exit 1
fi
if ! cmp -s "$chaosdir/solo.json" "$fleetdir/served.json"; then
    echo "ERROR: fleet-served study differs from the single-process run" >&2
    cat "$fleetdir/serve.err" >&2
    diff "$chaosdir/solo.json" "$fleetdir/served.json" >&2 || true
    exit 1
fi
# Graceful drain: shutdown must stop the fleet, release its leases, and
# exit 0 without leaking worker processes.
target/debug/varbench query --addr "$fleet_addr" --post /v1/shutdown > /dev/null
wait "$serve_pid"
serve_pid=""
if pgrep -f "varbench worker" > /dev/null 2>&1; then
    echo "ERROR: drained serve leaked worker processes" >&2
    exit 1
fi
gc_out=$(VARBENCH_CACHE_DIR="$fleetdir/cache" target/debug/varbench cache gc)
echo "$gc_out"
case "$gc_out" in
    *"torn 0"*) ;;
    *) echo "ERROR: serve chaos left torn records" >&2; exit 1 ;;
esac
case "$gc_out" in
    *"stale-lease 0"*) ;;
    *) echo "ERROR: drained fleet left stale leases behind" >&2; exit 1 ;;
esac

say "serve chaos B: server killed mid-study; restart + retrying client recover"
# Ground truth for the extended study: 6 seeds over the solo cache, so
# the expected bytes are themselves assembled record-prefix-stably.
VARBENCH_CACHE_DIR="$chaosdir/solo" target/debug/varbench \
    study synthetic-ridge --test --seeds 6 --budget 3 --json \
    > "$chaosdir/solo6.json" 2> /dev/null
# A doomed server on the part-A cache: it aborts (kill -9 style) in the
# middle of the first dispatched study it accepts.
VARBENCH_CACHE_DIR="$fleetdir/cache" \
    VARBENCH_FAULT="serve:mid-dispatch:kill" \
    target/debug/varbench serve --addr 127.0.0.1:0 --serial \
    --ready-file "$fleetdir/ready-doomed" 2> "$fleetdir/doomed.err" &
serve_pid=$!
for _ in $(seq 1 100); do [ -s "$fleetdir/ready-doomed" ] && break; sleep 0.1; done
[ -s "$fleetdir/ready-doomed" ] || { echo "ERROR: doomed serve never became ready" >&2; exit 1; }
doomed_addr=$(cat "$fleetdir/ready-doomed")
# The client keeps retrying through the crash window (dead connection,
# then connection refused, then the revived server).
target/debug/varbench query --addr "$doomed_addr" --retries 15 --timeout-ms 60000 \
    /v1/study \
    '{"workload":"synthetic-ridge","effort":"test","seeds":6,"budget":3,"dispatch":true}' \
    > "$fleetdir/served6.json" 2> "$fleetdir/query.err" &
query_pid=$!
if wait "$serve_pid" 2>/dev/null; then
    echo "ERROR: the doomed server survived its armed faultpoint" >&2
    exit 1
fi
serve_pid=""
# Revive on the same address (SO_REUSEADDR makes the rebind immediate;
# the loop is belt and braces), this time with a healthy fleet.
rm -f "$fleetdir/ready-revived"
for _ in $(seq 1 20); do
    VARBENCH_CACHE_DIR="$fleetdir/cache" target/debug/varbench serve \
        --addr "$doomed_addr" --serial --workers 2 --row-timeout-ms 500 \
        --ready-file "$fleetdir/ready-revived" 2>> "$fleetdir/revived.err" &
    serve_pid=$!
    for _ in $(seq 1 20); do
        [ -s "$fleetdir/ready-revived" ] && break
        kill -0 "$serve_pid" 2>/dev/null || break
        sleep 0.1
    done
    [ -s "$fleetdir/ready-revived" ] && break
    wait "$serve_pid" 2>/dev/null || true
    serve_pid=""
    sleep 0.2
done
[ -s "$fleetdir/ready-revived" ] || { echo "ERROR: could not rebind the crashed server's address" >&2; exit 1; }
if ! wait "$query_pid"; then
    echo "ERROR: the retrying client never completed against the revived server" >&2
    cat "$fleetdir/query.err" >&2
    exit 1
fi
if ! cmp -s "$chaosdir/solo6.json" "$fleetdir/served6.json"; then
    echo "ERROR: post-crash served study differs from the single-process run" >&2
    cat "$fleetdir/revived.err" >&2
    diff "$chaosdir/solo6.json" "$fleetdir/served6.json" >&2 || true
    exit 1
fi
# The revived server must have answered through the dispatch path,
# recomputing only the rows the part-A cache was missing.
if ! grep -q "serve dispatch" "$fleetdir/revived.err"; then
    echo "ERROR: revived server never took the dispatch path" >&2
    cat "$fleetdir/revived.err" >&2
    exit 1
fi
target/debug/varbench query --addr "$doomed_addr" --post /v1/shutdown > /dev/null
wait "$serve_pid"
serve_pid=""
if pgrep -f "varbench worker" > /dev/null 2>&1; then
    echo "ERROR: revived serve leaked worker processes" >&2
    exit 1
fi
gc_out=$(VARBENCH_CACHE_DIR="$fleetdir/cache" target/debug/varbench cache gc)
echo "$gc_out"
case "$gc_out" in
    *"torn 0"*) ;;
    *) echo "ERROR: server crash left torn records" >&2; exit 1 ;;
esac

say "varbench lint (repo-invariant checker; hard gate)"
target/release/varbench lint
# The gate must actually detect violations: seed one and expect exit 1
# with the stable lint ID in the output.
lintdir="$scratch/lint"
mkdir -p "$lintdir/src"
printf 'use std::collections::HashMap;\n' > "$lintdir/src/seeded.rs"
if out=$(target/release/varbench lint "$lintdir" 2>&1); then
    echo "ERROR: varbench lint missed a seeded violation" >&2
    exit 1
fi
case "$out" in
    *L001*) ;;
    *) echo "ERROR: seeded violation did not report L001: $out" >&2; exit 1 ;;
esac

say "cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --quiet

say "benches compile and run one fast rep"
VARBENCH_BENCH_REPS=3 VARBENCH_BENCH_TARGET_MS=1 cargo test -q --offline --benches

say "rustfmt"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "rustfmt not installed; skipping"
fi

say "clippy"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --all-targets -- -D warnings
else
    echo "clippy not installed; skipping"
fi

# The executor acceptance benchmark needs real cores to mean anything.
cores=$(nproc 2>/dev/null || echo 1)
if [ "${CI_SKIP_SPEEDUP:-0}" != "1" ] && [ "$cores" -ge 4 ]; then
    say "fig5 quick parallel speedup (>= 2x on $cores cores)"
    cargo test --release --offline --test figures_smoke -- --ignored fig5_quick_parallel_speedup
else
    say "fig5 speedup benchmark skipped (cores=$cores, CI_SKIP_SPEEDUP=${CI_SKIP_SPEEDUP:-0})"
fi

# Perf-regression gate: quick-mode timing suites vs the committed
# quick-mode companion baseline BENCH_10_quick.json — comparing quick
# medians against quick medians, not against the full-mode trajectory
# snapshot (quick mode's short reps read systematically slower on slow
# boxes, which made the old full-baseline gate cry wolf). Timing on a
# 1-CPU box is noise, so it skips there (the PR-1 convention).
if [ "${CI_SKIP_PERF_GATE:-0}" != "1" ] && [ "$cores" -ge 2 ] && [ -f BENCH_10_quick.json ]; then
    say "perf regression gate (quick bench vs BENCH_10_quick.json, +25% budget)"
    target/release/varbench bench --quick --json --baseline BENCH_10_quick.json --max-regress 25 > /dev/null
else
    say "perf gate skipped (cores=$cores, CI_SKIP_PERF_GATE=${CI_SKIP_PERF_GATE:-0})"
fi

say "all checks passed"
