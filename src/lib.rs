//! # varbench — variance-aware machine-learning benchmarking
//!
//! A Rust reproduction of *Accounting for Variance in Machine Learning
//! Benchmarks* (Bouthillier et al., MLSys 2021): a probabilistic model of
//! the complete benchmarking process, estimators of expected pipeline
//! performance that do (and do not) account for hyperparameter-optimization
//! variance, and a variance-aware decision criterion — the *probability of
//! outperforming* `P(A > B)` — with percentile-bootstrap confidence
//! intervals and Noether sample-size planning.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`rng`] | `varbench-rng` | deterministic RNG + per-source seed trees |
//! | [`linalg`] | `varbench-linalg` | dense matrices, Cholesky |
//! | [`stats`] | `varbench-stats` | distributions, tests, bootstrap, power |
//! | [`data`] | `varbench-data` | synthetic datasets, out-of-bootstrap splits |
//! | [`models`] | `varbench-models` | seedable MLPs, linear models, ensembles |
//! | [`hpo`] | `varbench-hpo` | random/grid/noisy-grid/Bayesian optimization |
//! | [`pipeline`] | `varbench-pipeline` | [`Workload`] trait, variance sources, 7 workloads |
//! | [`core`] | `varbench-core` | estimators, comparisons, simulation, [`Study`] |
//!
//! # Bring your own workload
//!
//! Every estimator, the measurement cache and the `varbench` CLI are
//! generic over the [`Workload`] trait: implement it for your pipeline
//! (see `examples/custom_workload.rs` for a complete implementation in
//! under 60 lines) and the whole stack — including the fluent [`Study`]
//! builder — applies unchanged:
//!
//! ```
//! use varbench::pipeline::{Scale, SyntheticWorkload, VarianceSource};
//! use varbench::{RunContext, Study};
//!
//! let workload = SyntheticWorkload::new(Scale::Test);
//! let report = Study::new(&workload)
//!     .randomize(&[VarianceSource::DataSplit])
//!     .budget(2) // adds the xi_H (hyperparameter-optimization) row
//!     .seeds(4)
//!     .run(&RunContext::serial());
//! assert!(report.render_text().contains("synthetic-ridge"));
//! ```
//!
//! # The paper's three recommendations, as code
//!
//! 1. **Randomize as many sources of variation as possible** — build a
//!    fresh [`pipeline::SeedAssignment::all_random`] for every run.
//! 2. **Use multiple data splits** — every case study splits with
//!    out-of-bootstrap resampling ([`data::split::oob_split`]).
//! 3. **Account for variance when concluding** — use
//!    [`core::compare::compare_paired`] with γ = 0.75 and
//!    [`core::sample_size::recommended`] (= 29) paired runs.
//!
//! ```
//! use varbench::core::compare::compare_paired;
//! use varbench::pipeline::{CaseStudy, Scale, SeedAssignment};
//! use varbench::rng::Rng;
//!
//! let cs = CaseStudy::mhc_mlp(Scale::Test);
//! let a_params = vec![24.0, 1e-3]; // wider hidden layer
//! let b_params = vec![8.0, 1e-3];  // narrower hidden layer
//! let (mut a, mut b) = (Vec::new(), Vec::new());
//! for i in 0..5 {
//!     let seeds = SeedAssignment::all_random(7, i); // paired seeds
//!     a.push(cs.run_with_params(&a_params, &seeds));
//!     b.push(cs.run_with_params(&b_params, &seeds));
//! }
//! let mut rng = Rng::seed_from_u64(1);
//! let verdict = compare_paired(&a, &b, 0.75, 0.05, 200, &mut rng);
//! println!("{verdict}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use varbench_core as core;
pub use varbench_data as data;
pub use varbench_hpo as hpo;
pub use varbench_linalg as linalg;
pub use varbench_models as models;
pub use varbench_pipeline as pipeline;
pub use varbench_rng as rng;
pub use varbench_stats as stats;

pub use varbench_core::ctx::RunContext;
pub use varbench_core::study::Study;
pub use varbench_pipeline::Workload;
