//! Integration tests of the resampling schemes, including the paper's
//! Appendix B argument for bootstrap over cross-validation.

use varbench::data::split::{kfold, oob_split, stratified_oob_split};
use varbench::rng::Rng;

/// Sorted, deduplicated copy of an index list (sorted-vec stand-in for a
/// set; see clippy.toml / lint L001 on why we avoid hash collections).
fn uniques(xs: &[usize]) -> Vec<usize> {
    let mut v = xs.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

/// `|a ∩ b| / min(|a|, |b|)` over the unique elements, via sorted merge.
fn overlap_fraction(a: &[usize], b: &[usize]) -> f64 {
    let (sa, sb) = (uniques(a), uniques(b));
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / sa.len().min(sb.len()).max(1) as f64
}

#[test]
fn cv_train_sets_overlap_more_than_bootstrap_train_sets() {
    // The mechanism behind CV's variance underestimation (Appendix B):
    // k-fold train sets share (k-2)/(k-1) of their examples, while
    // bootstrap train sets share ~63% — bootstrap replicates are closer to
    // independent draws.
    let n = 1000;
    let mut rng = Rng::seed_from_u64(1);
    let folds = kfold(n, 5, &mut rng);
    let cv_overlap = overlap_fraction(&folds[0].0, &folds[1].0);

    let s1 = oob_split(n, n, 50, 50, &mut rng);
    let s2 = oob_split(n, n, 50, 50, &mut rng);
    let boot_overlap = overlap_fraction(s1.train(), s2.train());

    assert!(
        cv_overlap > boot_overlap,
        "cv overlap {cv_overlap} should exceed bootstrap overlap {boot_overlap}"
    );
    // Quantitative check: 5-fold CV trains share 3/4 of the pool.
    assert!((cv_overlap - 0.75).abs() < 0.05, "cv overlap {cv_overlap}");
    // Bootstrap unique sets cover ~63.2% of the pool and overlap ~63%.
    assert!(
        (boot_overlap - 0.632).abs() < 0.08,
        "boot overlap {boot_overlap}"
    );
}

#[test]
fn oob_supports_arbitrarily_many_resamples() {
    // Appendix B: "flexible sample sizes ... hardly possible with
    // cross-validation without affecting the training dataset sizes".
    // Bootstrap gives any number of same-sized splits.
    let mut rng = Rng::seed_from_u64(2);
    let splits: Vec<_> = (0..25)
        .map(|_| oob_split(300, 300, 30, 30, &mut rng))
        .collect();
    for s in &splits {
        assert_eq!(s.train().len(), 300);
        assert_eq!(s.test().len(), 30);
    }
    // And they differ from each other.
    assert_ne!(splits[0].train(), splits[1].train());
}

#[test]
fn stratified_split_preserves_balance_under_stress() {
    // Heavily imbalanced pool: stratification must still deliver exact
    // per-class counts.
    let mut labels = vec![0usize; 700];
    labels.extend(vec![1usize; 200]);
    labels.extend(vec![2usize; 100]);
    let mut rng = Rng::seed_from_u64(3);
    let s = stratified_oob_split(&labels, 3, 60, 10, 10, &mut rng);
    for c in 0..3 {
        let count = |idx: &[usize]| idx.iter().filter(|&&i| labels[i] == c).count();
        assert_eq!(count(s.train()), 60, "class {c} train");
        assert_eq!(count(s.valid()), 10, "class {c} valid");
        assert_eq!(count(s.test()), 10, "class {c} test");
    }
}
