//! Reproducibility integration tests — the paper's Appendix A discipline:
//! identical seeds must give identical results, varied seeds must vary
//! them, and execution order across experiments must not matter.

use varbench::pipeline::{CaseStudy, HpoAlgorithm, Scale, SeedAssignment, VarianceSource};

#[test]
fn identical_seeds_identical_results_every_task() {
    for cs in CaseStudy::all(Scale::Test) {
        let seeds = SeedAssignment::all_fixed(42);
        let params = cs.default_params().to_vec();
        let a = cs.run_with_params(&params, &seeds);
        let b = cs.run_with_params(&params, &seeds);
        assert_eq!(a, b, "{} not reproducible", cs.name());
    }
}

#[test]
fn full_pipeline_reproducible_with_hpo() {
    let cs = CaseStudy::glue_rte_bert(Scale::Test);
    let seeds = SeedAssignment::all_fixed(1);
    for algo in [
        HpoAlgorithm::RandomSearch,
        HpoAlgorithm::NoisyGridSearch,
        HpoAlgorithm::BayesOpt,
    ] {
        let a = cs.run_pipeline(&seeds, algo, 4);
        let b = cs.run_pipeline(&seeds, algo, 4);
        assert_eq!(a, b, "{algo} pipeline not reproducible");
    }
}

#[test]
fn interleaved_execution_equals_sequential() {
    // The paper's resumption test analog: running experiments interleaved
    // must give the same results as running each to completion, because no
    // global state is shared between pipeline invocations.
    let cs1 = CaseStudy::glue_rte_bert(Scale::Test);
    let cs2 = CaseStudy::mhc_mlp(Scale::Test);
    let p1 = cs1.default_params().to_vec();
    let p2 = cs2.default_params().to_vec();

    // Sequential: all of cs1's runs, then all of cs2's.
    let seq1: Vec<f64> = (0..3)
        .map(|i| cs1.run_with_params(&p1, &SeedAssignment::all_random(9, i)))
        .collect();
    let seq2: Vec<f64> = (0..3)
        .map(|i| cs2.run_with_params(&p2, &SeedAssignment::all_random(9, i)))
        .collect();

    // Interleaved.
    let mut inter1 = Vec::new();
    let mut inter2 = Vec::new();
    for i in 0..3 {
        inter2.push(cs2.run_with_params(&p2, &SeedAssignment::all_random(9, i)));
        inter1.push(cs1.run_with_params(&p1, &SeedAssignment::all_random(9, i)));
    }
    assert_eq!(seq1, inter1);
    assert_eq!(seq2, inter2);
}

#[test]
fn seed_variation_isolates_sources() {
    // Varying one source's seed changes the outcome only through that
    // source: re-fixing it restores the original result exactly.
    let cs = CaseStudy::glue_rte_bert(Scale::Test);
    let params = cs.default_params().to_vec();
    let base = SeedAssignment::all_fixed(11);
    let reference = cs.run_with_params(&params, &base);
    let varied = base.with_varied(VarianceSource::WeightsInit, 999);
    let _ = cs.run_with_params(&params, &varied);
    let restored = cs.run_with_params(&params, &base);
    assert_eq!(reference, restored, "fixed seeds must replay bit-exactly");
}

#[test]
fn numerical_noise_only_in_pascal_analog() {
    // Our substrate is bit-deterministic: the "numerical noise" source is
    // inert everywhere except the PascalVOC analog where the paper also
    // could not control it (we model it with seeded gradient noise).
    for cs in CaseStudy::all(Scale::Test) {
        let has_noise = cs
            .active_sources()
            .contains(&VarianceSource::NumericalNoise);
        assert_eq!(
            has_noise,
            cs.name() == "pascalvoc-resnet",
            "{}: unexpected numerical-noise activation",
            cs.name()
        );
    }
}
