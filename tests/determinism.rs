//! Reproducibility integration tests — the paper's Appendix A discipline:
//! identical seeds must give identical results, varied seeds must vary
//! them, and execution order across experiments must not matter — and the
//! parallel executor must not change a single bit of any of it.

use varbench::core::ctx::RunContext;
use varbench::core::estimator::{
    fix_hopt_estimator, ideal_estimator, source_variance_study, Randomize,
};
use varbench::core::exec::Runner;
use varbench::core::simulation::{detection_study_with, DetectionConfig, SimulatedTask};
use varbench::pipeline::MeasureCache;
use varbench::pipeline::{CaseStudy, HpoAlgorithm, Scale, SeedAssignment, VarianceSource};

#[test]
fn identical_seeds_identical_results_every_task() {
    for cs in CaseStudy::all(Scale::Test) {
        let seeds = SeedAssignment::all_fixed(42);
        let params = cs.default_params().to_vec();
        let a = cs.run_with_params(&params, &seeds);
        let b = cs.run_with_params(&params, &seeds);
        assert_eq!(a, b, "{} not reproducible", cs.name());
    }
}

#[test]
fn full_pipeline_reproducible_with_hpo() {
    let cs = CaseStudy::glue_rte_bert(Scale::Test);
    let seeds = SeedAssignment::all_fixed(1);
    for algo in [
        HpoAlgorithm::RandomSearch,
        HpoAlgorithm::NoisyGridSearch,
        HpoAlgorithm::BayesOpt,
    ] {
        let a = cs.run_pipeline(&seeds, algo, 4);
        let b = cs.run_pipeline(&seeds, algo, 4);
        assert_eq!(a, b, "{algo} pipeline not reproducible");
    }
}

#[test]
fn interleaved_execution_equals_sequential() {
    // The paper's resumption test analog: running experiments interleaved
    // must give the same results as running each to completion, because no
    // global state is shared between pipeline invocations.
    let cs1 = CaseStudy::glue_rte_bert(Scale::Test);
    let cs2 = CaseStudy::mhc_mlp(Scale::Test);
    let p1 = cs1.default_params().to_vec();
    let p2 = cs2.default_params().to_vec();

    // Sequential: all of cs1's runs, then all of cs2's.
    let seq1: Vec<f64> = (0..3)
        .map(|i| cs1.run_with_params(&p1, &SeedAssignment::all_random(9, i)))
        .collect();
    let seq2: Vec<f64> = (0..3)
        .map(|i| cs2.run_with_params(&p2, &SeedAssignment::all_random(9, i)))
        .collect();

    // Interleaved.
    let mut inter1 = Vec::new();
    let mut inter2 = Vec::new();
    for i in 0..3 {
        inter2.push(cs2.run_with_params(&p2, &SeedAssignment::all_random(9, i)));
        inter1.push(cs1.run_with_params(&p1, &SeedAssignment::all_random(9, i)));
    }
    assert_eq!(seq1, inter1);
    assert_eq!(seq2, inter2);
}

#[test]
fn seed_variation_isolates_sources() {
    // Varying one source's seed changes the outcome only through that
    // source: re-fixing it restores the original result exactly.
    let cs = CaseStudy::glue_rte_bert(Scale::Test);
    let params = cs.default_params().to_vec();
    let base = SeedAssignment::all_fixed(11);
    let reference = cs.run_with_params(&params, &base);
    let varied = base.with_varied(VarianceSource::WeightsInit, 999);
    let _ = cs.run_with_params(&params, &varied);
    let restored = cs.run_with_params(&params, &base);
    assert_eq!(reference, restored, "fixed seeds must replay bit-exactly");
}

#[test]
fn runner_map_seeds_thread_count_invariant() {
    // The executor contract: Runner::map_seeds with 1 thread vs N threads
    // yields bit-identical, seed-ordered outputs, because every unit draws
    // from its own seed branch and results are collected by index.
    let seeds: Vec<SeedAssignment> = (0..37).map(|i| SeedAssignment::all_random(3, i)).collect();
    let cs = CaseStudy::glue_rte_bert(Scale::Test);
    let params = cs.default_params().to_vec();
    let work = |_: usize, s: &SeedAssignment| cs.run_with_params(&params, s);

    let one_thread = Runner::new(1).map_seeds(&seeds, work);
    for threads in [2, 4, 8] {
        let n_threads = Runner::new(threads).map_seeds(&seeds, work);
        assert_eq!(
            one_thread, n_threads,
            "map_seeds output differs at {threads} threads"
        );
    }
}

#[test]
fn estimators_thread_count_invariant() {
    // The paper's estimators through the executor: 1 thread vs N threads
    // must produce bit-identical EstimatorRun contents.
    let cs = CaseStudy::glue_rte_bert(Scale::Test);
    let algo = HpoAlgorithm::RandomSearch;
    let serial = RunContext::serial();
    for threads in [4, 7] {
        let parallel = RunContext::new(Runner::new(threads), MeasureCache::disabled());
        assert_eq!(
            ideal_estimator(&cs, 6, algo, 3, 21, &serial),
            ideal_estimator(&cs, 6, algo, 3, 21, &parallel),
            "ideal estimator differs at {threads} threads"
        );
        assert_eq!(
            fix_hopt_estimator(&cs, 6, algo, 3, 21, 1, Randomize::All, &serial),
            fix_hopt_estimator(&cs, 6, algo, 3, 21, 1, Randomize::All, &parallel),
            "biased estimator differs at {threads} threads"
        );
        assert_eq!(
            source_variance_study(&cs, VarianceSource::DataSplit, 6, algo, 2, 5, &serial),
            source_variance_study(&cs, VarianceSource::DataSplit, 6, algo, 2, 5, &parallel),
            "source study differs at {threads} threads"
        );
    }
}

#[test]
fn simulation_grid_thread_count_invariant() {
    let task = SimulatedTask::new(0.02, 0.012, 0.016);
    let config = DetectionConfig {
        k: 20,
        n_simulations: 30,
        gamma: 0.75,
        delta: 0.04,
        alpha: 0.05,
        resamples: 50,
    };
    let ctx_n = |threads| RunContext::new(Runner::new(threads), MeasureCache::disabled());
    let one = detection_study_with(&task, &[0.5, 0.8], &config, 9, &ctx_n(1));
    for threads in [2, 4, 8] {
        let many = detection_study_with(&task, &[0.5, 0.8], &config, 9, &ctx_n(threads));
        assert_eq!(one, many, "detection study differs at {threads} threads");
    }
}

#[test]
fn split_bootstrap_bit_identical_across_thread_counts() {
    // The split-stream bootstrap's acceptance guarantee: every replicate
    // is a pure function of its own `Rng::split` child, so fanning the
    // resample loop across any number of threads changes nothing — and
    // the serial split driver in varbench-stats is the 1-thread
    // reference.
    use varbench::core::compare::compare_paired_with;
    use varbench::core::ctx::BootstrapMode;
    use varbench::rng::Rng;
    use varbench::stats::bootstrap::percentile_ci_prob_outperform_split;

    let mut g = Rng::seed_from_u64(77);
    let a: Vec<f64> = (0..50).map(|_| g.normal(0.75, 0.02)).collect();
    let b: Vec<f64> = (0..50).map(|_| g.normal(0.74, 0.02)).collect();

    let reference =
        percentile_ci_prob_outperform_split(&a, &b, 1500, 0.05, &mut Rng::seed_from_u64(78));
    for threads in [1, 2, 4, 8] {
        let ctx = RunContext::new(Runner::new(threads), MeasureCache::disabled())
            .with_bootstrap(BootstrapMode::SplitPerReplicate);
        let t = compare_paired_with(&a, &b, 0.75, 0.05, 1500, &mut Rng::seed_from_u64(78), &ctx);
        assert_eq!(
            t.ci, reference,
            "split bootstrap differs at {threads} threads"
        );
    }
}

#[test]
fn split_bootstrap_cache_keys_never_alias_serial_records() {
    // The variant firewall: a context in split-bootstrap mode addresses
    // every cached measurement under its own key space, so its records
    // can never be served into (or from) the default serial path — even
    // though today's score matrices do not depend on the mode.
    use varbench::core::ctx::BootstrapMode;
    use varbench::core::estimator::ideal_estimator;

    let cs = CaseStudy::glue_rte_bert(Scale::Test);
    let algo = HpoAlgorithm::RandomSearch;
    let cache = MeasureCache::new();
    let serial_ctx = RunContext::new(Runner::serial(), cache);
    let run_a = ideal_estimator(&cs, 3, algo, 2, 5, &serial_ctx);
    assert_eq!(serial_ctx.cache().stats().misses, 1);

    // Same measurement under the split mode: the warm serial entry must
    // NOT be served — the split context misses and computes its own.
    let split_ctx = RunContext::new(Runner::serial(), MeasureCache::new())
        .with_bootstrap(BootstrapMode::SplitPerReplicate);
    let run_b = ideal_estimator(&cs, 3, algo, 2, 5, &split_ctx);
    assert_eq!(split_ctx.cache().stats().misses, 1);
    // The measured values themselves are mode-independent (the mode only
    // governs bootstrap resampling, which happens downstream of the
    // cache) — the quarantine is a firewall, not a value change.
    assert_eq!(run_a, run_b);

    // And the two modes' canonical addresses can never collide, so even
    // one shared store keeps them as separate entries.
    use varbench::pipeline::cache::MeasureKind;
    let kind = || MeasureKind::IdealEstimator {
        algo: algo.display_name(),
        budget: 2,
    };
    assert_ne!(
        serial_ctx.measure_key(&cs, kind(), 5).canon(),
        split_ctx.measure_key(&cs, kind(), 5).canon()
    );
}

#[test]
fn numerical_noise_only_in_pascal_analog() {
    // Our substrate is bit-deterministic: the "numerical noise" source is
    // inert everywhere except the PascalVOC analog where the paper also
    // could not control it (we model it with seeded gradient noise).
    for cs in CaseStudy::all(Scale::Test) {
        let has_noise = cs
            .active_sources()
            .contains(&VarianceSource::NumericalNoise);
        assert_eq!(
            has_noise,
            cs.name() == "pascalvoc-resnet",
            "{}: unexpected numerical-noise activation",
            cs.name()
        );
    }
}

#[test]
fn artifact_output_cached_uncached_thread_count_invariant() {
    // The acceptance guarantee of the measurement cache, end to end on a
    // real artifact: cached == uncached == 1-thread == N-thread output.
    use varbench_bench::figures::fig5;

    let config = fig5::Config::test();

    // Uncached baseline: the default no-op cache never serves a row.
    let no_cache = RunContext::serial();
    let uncached = fig5::report_with(&config, &no_cache).render_text();
    assert_eq!(
        no_cache.cache().stats().rows_served,
        0,
        "baseline must be uncached"
    );

    // Cached: replaying against the warm cache computes nothing new.
    let warm = RunContext::serial_cached();
    let cached_cold = fig5::report_with(&config, &warm).render_text();
    let cold_stats = warm.cache().stats();
    let cached_warm = fig5::report_with(&config, &warm).render_text();
    let stats = warm.cache().stats();
    assert_eq!(
        stats.rows_computed, cold_stats.rows_computed,
        "replay must compute nothing new"
    );
    assert_eq!(cached_cold, uncached, "cached output differs from uncached");
    assert_eq!(cached_warm, uncached, "warm replay differs from uncached");

    // Thread-count invariance, cold and warm.
    let par = RunContext::new(Runner::new(4), MeasureCache::new());
    let par_cold = fig5::report_with(&config, &par).render_text();
    let par_warm = fig5::report_with(&config, &par).render_text();
    assert_eq!(par_cold, uncached, "N-thread cold differs from 1-thread");
    assert_eq!(par_warm, uncached, "N-thread warm differs from 1-thread");
}
