//! Smoke tests: every figure/table harness runs end-to-end at test preset
//! and produces the expected report structure — and the registry (with
//! its shared measurement cache and artifact-level parallel scheduling)
//! reproduces the standalone serial reports byte for byte.

use varbench::core::exec::Runner;
use varbench::pipeline::MeasureCache;
use varbench_bench::args::Effort;
use varbench_bench::figures::*;
use varbench_bench::registry;

#[test]
fn fig1_smoke() {
    let r = fig1::run(&fig1::Config::test());
    assert!(r.contains("Figure 1"));
    assert!(r.contains("Data (bootstrap)"));
}

#[test]
fn fig2_smoke() {
    let r = fig2::run(&fig2::Config::test());
    assert!(r.contains("Figure 2"));
    assert!(r.contains("tau"));
}

#[test]
fn fig3_smoke() {
    let r = fig3::run(&fig3::Config::default());
    assert!(r.contains("Figure 3"));
    assert!(r.contains("AutoAugment"));
}

#[test]
fn fig5_smoke() {
    let r = fig5::run(&fig5::Config::test());
    assert!(r.contains("Figure 5"));
    assert!(r.contains("IdealEst"));
}

#[test]
fn fig6_smoke() {
    let r = fig6::run(&fig6::Config::test());
    assert!(r.contains("Figure 6"));
    assert!(r.contains("oracle"));
}

#[test]
fn figc1_smoke() {
    let r = figc1::run(&figc1::Config::test());
    assert!(r.contains("N = 29"));
}

#[test]
fn figf2_smoke() {
    let r = figf2::run(&figf2::Config::test());
    assert!(r.contains("Figure F.2"));
    assert!(r.contains("Bayes Opt"));
}

#[test]
fn figg3_smoke() {
    let r = figg3::run(&figg3::Config::test());
    assert!(r.contains("Shapiro-Wilk"));
}

#[test]
fn figh5_smoke() {
    let r = figh5::run(&figh5::Config::test());
    assert!(r.contains("MSE decomposition"));
}

#[test]
fn figi6_smoke() {
    let cfg = figi6::Config {
        n_simulations: 4,
        resamples: 40,
        sigma: 0.02,
    };
    let r = figi6::run(&cfg);
    assert!(r.contains("robustness"));
}

#[test]
fn tables_smoke() {
    let r = tables::run(&tables::Config::test());
    assert!(r.contains("Table 8"));
    assert!(r.contains("search spaces"));
}

#[test]
fn interactions_smoke() {
    let r = interactions::run(&interactions::Config::test());
    assert!(r.contains("joint / sum"));
}

#[test]
fn ablations_smoke() {
    let r = ablations::run(&ablations::Config::test());
    assert!(r.contains("HPO budget"));
    assert!(r.contains("out-of-bootstrap"));
}

#[test]
fn parallel_reports_byte_identical_to_serial() {
    // The executor guarantee, end to end: every Runner-threaded figure
    // renders the exact same report text at 1 thread and at 4 threads.
    let serial = Runner::serial();
    let parallel = Runner::new(4);

    assert_eq!(
        fig1::run_with(&fig1::Config::test(), &serial),
        fig1::run_with(&fig1::Config::test(), &parallel),
        "fig1 report differs"
    );
    assert_eq!(
        fig5::run_with(&fig5::Config::test(), &serial),
        fig5::run_with(&fig5::Config::test(), &parallel),
        "fig5 report differs"
    );
    assert_eq!(
        fig6::run_with(&fig6::Config::test(), &serial),
        fig6::run_with(&fig6::Config::test(), &parallel),
        "fig6 report differs"
    );
    assert_eq!(
        figh5::run_with(&figh5::Config::test(), &serial),
        figh5::run_with(&figh5::Config::test(), &parallel),
        "figh5 report differs"
    );
    let i6 = figi6::Config {
        n_simulations: 4,
        resamples: 40,
        sigma: 0.02,
    };
    assert_eq!(
        figi6::run_with(&i6, &serial),
        figi6::run_with(&i6, &parallel),
        "figi6 report differs"
    );
    assert_eq!(
        interactions::run_with(&interactions::Config::test(), &serial),
        interactions::run_with(&interactions::Config::test(), &parallel),
        "interactions report differs"
    );
}

/// The standalone path: each artifact through its own module entry point,
/// serially, with a fresh (therefore never-hitting) cache — exactly what
/// the pre-registry one-shot binaries printed.
fn standalone_reports(effort: Effort) -> Vec<(&'static str, String)> {
    let serial = Runner::serial();
    vec![
        (
            "fig1",
            fig1::run_with(&fig1::Config::for_effort(effort), &serial),
        ),
        ("fig2", fig2::run(&fig2::Config::for_effort(effort))),
        ("fig3", fig3::run(&fig3::Config::for_effort(effort))),
        (
            "fig5",
            fig5::run_with(&fig5::Config::for_effort(effort), &serial),
        ),
        (
            "fig6",
            fig6::run_with(&fig6::Config::for_effort(effort), &serial),
        ),
        ("figc1", figc1::run(&figc1::Config::for_effort(effort))),
        ("figf2", figf2::run(&figf2::Config::for_effort(effort))),
        ("figg3", figg3::run(&figg3::Config::for_effort(effort))),
        (
            "figh5",
            figh5::run_with(&figh5::Config::for_effort(effort), &serial),
        ),
        (
            "figi6",
            figi6::run_with(&figi6::Config::for_effort(effort), &serial),
        ),
        ("tables", tables::run(&tables::Config::for_effort(effort))),
        (
            "interactions",
            interactions::run_with(&interactions::Config::for_effort(effort), &serial),
        ),
        (
            "ablations",
            ablations::run(&ablations::Config::for_effort(effort)),
        ),
    ]
}

#[test]
fn registry_run_all_byte_identical_to_standalone_artifacts() {
    // The `varbench run all --test` path: every artifact through the
    // registry, scheduled in parallel, sharing one measurement cache.
    // Each report must match the standalone serial uncached output byte
    // for byte — the cache and the scheduler may change who computes a
    // measurement, never its value.
    //
    // Baseline note: the standalone modules are this PR's refactored
    // ones. fig1 and fig5 are additionally byte-identical to the
    // pre-registry binaries; the other measuring artifacts were
    // re-seeded onto the shared SOURCE_STUDY_SEED/ESTIMATOR_SEED roots
    // (and a few quick budgets aligned) so cross-figure sharing exists
    // at all — their numbers differ from pre-refactor output by design,
    // as recorded in CHANGES.md.
    let cache = MeasureCache::new();
    let specs: Vec<_> = registry::all().iter().collect();
    let reports = registry::run_specs(&specs, Effort::Test, &Runner::new(4), &cache);
    let expected = standalone_reports(Effort::Test);
    assert_eq!(reports.len(), expected.len());
    assert!(
        cache.stats().rows_served > 0,
        "the shared cache must actually serve cross-artifact measurements"
    );
    for (report, (name, text)) in reports.iter().zip(&expected) {
        assert_eq!(report.name(), *name, "registry order");
        assert_eq!(
            report.render_text(),
            *text,
            "{name} report differs from its standalone output"
        );
    }
}

#[test]
#[ignore = "wall-clock benchmark; run explicitly: cargo test --release -- --ignored fig5_quick"]
fn fig5_quick_parallel_speedup() {
    // Acceptance check: fig5's quick config through the Runner on >= 4
    // threads must be >= 2x faster than the serial path, with the exact
    // same report text. Wall-clock sensitive, so opt-in (scripts/ci.sh
    // runs it in release mode when the host has enough cores).
    let config = fig5::Config::quick();
    let t0 = std::time::Instant::now();
    let serial_report = fig5::run_with(&config, &Runner::serial());
    let serial_time = t0.elapsed();

    let threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get().min(8))
        .max(4);
    let t1 = std::time::Instant::now();
    let parallel_report = fig5::run_with(&config, &Runner::new(threads));
    let parallel_time = t1.elapsed();

    assert_eq!(
        serial_report, parallel_report,
        "reports must be byte-identical"
    );
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
    println!(
        "fig5 quick: serial {serial_time:?}, parallel({threads}) {parallel_time:?}, speedup {speedup:.2}x"
    );
    assert!(
        speedup >= 2.0,
        "expected >= 2x speedup on {threads} threads, got {speedup:.2}x \
         (serial {serial_time:?}, parallel {parallel_time:?})"
    );
}
