//! Smoke tests: every figure/table harness runs end-to-end at test preset
//! and produces the expected report structure — and the parallel executor
//! reproduces the serial reports byte for byte.

use varbench::core::exec::Runner;
use varbench_bench::figures::*;

#[test]
fn fig1_smoke() {
    let r = fig1::run(&fig1::Config::test());
    assert!(r.contains("Figure 1"));
    assert!(r.contains("Data (bootstrap)"));
}

#[test]
fn fig2_smoke() {
    let r = fig2::run(&fig2::Config::test());
    assert!(r.contains("Figure 2"));
    assert!(r.contains("tau"));
}

#[test]
fn fig3_smoke() {
    let r = fig3::run(&fig3::Config::default());
    assert!(r.contains("Figure 3"));
    assert!(r.contains("AutoAugment"));
}

#[test]
fn fig5_smoke() {
    let r = fig5::run(&fig5::Config::test());
    assert!(r.contains("Figure 5"));
    assert!(r.contains("IdealEst"));
}

#[test]
fn fig6_smoke() {
    let r = fig6::run(&fig6::Config::test());
    assert!(r.contains("Figure 6"));
    assert!(r.contains("oracle"));
}

#[test]
fn figc1_smoke() {
    let r = figc1::run();
    assert!(r.contains("N = 29"));
}

#[test]
fn figf2_smoke() {
    let r = figf2::run(&figf2::Config::test());
    assert!(r.contains("Figure F.2"));
    assert!(r.contains("Bayes Opt"));
}

#[test]
fn figg3_smoke() {
    let r = figg3::run(&figg3::Config::test());
    assert!(r.contains("Shapiro-Wilk"));
}

#[test]
fn figh5_smoke() {
    let r = figh5::run(&figh5::Config::test());
    assert!(r.contains("MSE decomposition"));
}

#[test]
fn figi6_smoke() {
    let cfg = figi6::Config {
        n_simulations: 4,
        resamples: 40,
        sigma: 0.02,
    };
    let r = figi6::run(&cfg);
    assert!(r.contains("robustness"));
}

#[test]
fn tables_smoke() {
    let r = tables::run(&tables::Config::test());
    assert!(r.contains("Table 8"));
    assert!(r.contains("search spaces"));
}

#[test]
fn interactions_smoke() {
    let r = interactions::run(&interactions::Config::test());
    assert!(r.contains("joint / sum"));
}

#[test]
fn ablations_smoke() {
    let r = ablations::run(&ablations::Config::test());
    assert!(r.contains("HPO budget"));
    assert!(r.contains("out-of-bootstrap"));
}

#[test]
fn parallel_reports_byte_identical_to_serial() {
    // The executor guarantee, end to end: every Runner-threaded figure
    // renders the exact same report text at 1 thread and at 4 threads.
    let serial = Runner::serial();
    let parallel = Runner::new(4);

    assert_eq!(
        fig1::run_with(&fig1::Config::test(), &serial),
        fig1::run_with(&fig1::Config::test(), &parallel),
        "fig1 report differs"
    );
    assert_eq!(
        fig5::run_with(&fig5::Config::test(), &serial),
        fig5::run_with(&fig5::Config::test(), &parallel),
        "fig5 report differs"
    );
    assert_eq!(
        fig6::run_with(&fig6::Config::test(), &serial),
        fig6::run_with(&fig6::Config::test(), &parallel),
        "fig6 report differs"
    );
    assert_eq!(
        figh5::run_with(&figh5::Config::test(), &serial),
        figh5::run_with(&figh5::Config::test(), &parallel),
        "figh5 report differs"
    );
    let i6 = figi6::Config {
        n_simulations: 4,
        resamples: 40,
        sigma: 0.02,
    };
    assert_eq!(
        figi6::run_with(&i6, &serial),
        figi6::run_with(&i6, &parallel),
        "figi6 report differs"
    );
    assert_eq!(
        interactions::run_with(&interactions::Config::test(), &serial),
        interactions::run_with(&interactions::Config::test(), &parallel),
        "interactions report differs"
    );
}

#[test]
#[ignore = "wall-clock benchmark; run explicitly: cargo test --release -- --ignored fig5_quick"]
fn fig5_quick_parallel_speedup() {
    // Acceptance check: fig5's quick config through the Runner on >= 4
    // threads must be >= 2x faster than the serial path, with the exact
    // same report text. Wall-clock sensitive, so opt-in (scripts/ci.sh
    // runs it in release mode when the host has enough cores).
    let config = fig5::Config::quick();
    let t0 = std::time::Instant::now();
    let serial_report = fig5::run_with(&config, &Runner::serial());
    let serial_time = t0.elapsed();

    let threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get().min(8))
        .max(4);
    let t1 = std::time::Instant::now();
    let parallel_report = fig5::run_with(&config, &Runner::new(threads));
    let parallel_time = t1.elapsed();

    assert_eq!(
        serial_report, parallel_report,
        "reports must be byte-identical"
    );
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
    println!(
        "fig5 quick: serial {serial_time:?}, parallel({threads}) {parallel_time:?}, speedup {speedup:.2}x"
    );
    assert!(
        speedup >= 2.0,
        "expected >= 2x speedup on {threads} threads, got {speedup:.2}x \
         (serial {serial_time:?}, parallel {parallel_time:?})"
    );
}
