//! Smoke tests: every figure/table harness runs end-to-end at test preset
//! and produces the expected report structure.

use varbench_bench::figures::*;

#[test]
fn fig1_smoke() {
    let r = fig1::run(&fig1::Config::test());
    assert!(r.contains("Figure 1"));
    assert!(r.contains("Data (bootstrap)"));
}

#[test]
fn fig2_smoke() {
    let r = fig2::run(&fig2::Config::test());
    assert!(r.contains("Figure 2"));
    assert!(r.contains("tau"));
}

#[test]
fn fig3_smoke() {
    let r = fig3::run(&fig3::Config::default());
    assert!(r.contains("Figure 3"));
    assert!(r.contains("AutoAugment"));
}

#[test]
fn fig5_smoke() {
    let r = fig5::run(&fig5::Config::test());
    assert!(r.contains("Figure 5"));
    assert!(r.contains("IdealEst"));
}

#[test]
fn fig6_smoke() {
    let r = fig6::run(&fig6::Config::test());
    assert!(r.contains("Figure 6"));
    assert!(r.contains("oracle"));
}

#[test]
fn figc1_smoke() {
    let r = figc1::run();
    assert!(r.contains("N = 29"));
}

#[test]
fn figf2_smoke() {
    let r = figf2::run(&figf2::Config::test());
    assert!(r.contains("Figure F.2"));
    assert!(r.contains("Bayes Opt"));
}

#[test]
fn figg3_smoke() {
    let r = figg3::run(&figg3::Config::test());
    assert!(r.contains("Shapiro-Wilk"));
}

#[test]
fn figh5_smoke() {
    let r = figh5::run(&figh5::Config::test());
    assert!(r.contains("MSE decomposition"));
}

#[test]
fn figi6_smoke() {
    let cfg = figi6::Config {
        n_simulations: 4,
        resamples: 40,
        sigma: 0.02,
    };
    let r = figi6::run(&cfg);
    assert!(r.contains("robustness"));
}

#[test]
fn tables_smoke() {
    let r = tables::run(&tables::Config::test());
    assert!(r.contains("Table 8"));
    assert!(r.contains("search spaces"));
}

#[test]
fn interactions_smoke() {
    let r = interactions::run(&interactions::Config::test());
    assert!(r.contains("joint / sum"));
}

#[test]
fn ablations_smoke() {
    let r = ablations::run(&ablations::Config::test());
    assert!(r.contains("HPO budget"));
    assert!(r.contains("out-of-bootstrap"));
}
