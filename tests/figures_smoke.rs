//! Smoke tests: every figure/table harness runs end-to-end at test preset
//! and produces the expected report structure — and the registry (with
//! its shared measurement cache and artifact-level parallel scheduling)
//! reproduces the standalone serial reports byte for byte.

use varbench::core::ctx::RunContext;
use varbench::core::exec::Runner;
use varbench::pipeline::MeasureCache;
use varbench_bench::args::Effort;
use varbench_bench::figures::*;
use varbench_bench::{registry, workloads};

/// A standalone render: the module entry point, serially, with a private
/// in-memory cache — what the pre-registry one-shot binaries printed.
fn render<F>(report_with: F) -> String
where
    F: Fn(&RunContext) -> varbench::core::report::Report,
{
    report_with(&RunContext::serial_cached()).render_text()
}

#[test]
fn fig1_smoke() {
    let r = render(|ctx| fig1::report_with(&fig1::Config::test(), ctx));
    assert!(r.contains("Figure 1"));
    assert!(r.contains("Data (bootstrap)"));
}

#[test]
fn fig2_smoke() {
    let r = render(|ctx| fig2::report_with(&fig2::Config::test(), ctx));
    assert!(r.contains("Figure 2"));
    assert!(r.contains("tau"));
}

#[test]
fn fig3_smoke() {
    let r = render(|ctx| fig3::report_with(&fig3::Config::default(), ctx));
    assert!(r.contains("Figure 3"));
    assert!(r.contains("AutoAugment"));
}

#[test]
fn fig5_smoke() {
    let r = render(|ctx| fig5::report_with(&fig5::Config::test(), ctx));
    assert!(r.contains("Figure 5"));
    assert!(r.contains("IdealEst"));
}

#[test]
fn fig6_smoke() {
    let r = render(|ctx| fig6::report_with(&fig6::Config::test(), ctx));
    assert!(r.contains("Figure 6"));
    assert!(r.contains("oracle"));
}

#[test]
fn figc1_smoke() {
    let r = render(|ctx| figc1::report_with(&figc1::Config::test(), ctx));
    assert!(r.contains("N = 29"));
}

#[test]
fn figf2_smoke() {
    let r = render(|ctx| figf2::report_with(&figf2::Config::test(), ctx));
    assert!(r.contains("Figure F.2"));
    assert!(r.contains("Bayes Opt"));
}

#[test]
fn figg3_smoke() {
    let r = render(|ctx| figg3::report_with(&figg3::Config::test(), ctx));
    assert!(r.contains("Shapiro-Wilk"));
}

#[test]
fn figh5_smoke() {
    let r = render(|ctx| figh5::report_with(&figh5::Config::test(), ctx));
    assert!(r.contains("MSE decomposition"));
}

#[test]
fn figi6_smoke() {
    let cfg = figi6::Config {
        n_simulations: 4,
        resamples: 40,
        sigma: 0.02,
    };
    let r = render(|ctx| figi6::report_with(&cfg, ctx));
    assert!(r.contains("robustness"));
}

#[test]
fn tables_smoke() {
    let r = render(|ctx| tables::report_with(&tables::Config::test(), ctx));
    assert!(r.contains("Table 8"));
    assert!(r.contains("search spaces"));
}

#[test]
fn interactions_smoke() {
    let r = render(|ctx| interactions::report_with(&interactions::Config::test(), ctx));
    assert!(r.contains("joint / sum"));
}

#[test]
fn ablations_smoke() {
    let r = render(|ctx| ablations::report_with(&ablations::Config::test(), ctx));
    assert!(r.contains("HPO budget"));
    assert!(r.contains("out-of-bootstrap"));
}

#[test]
fn workload_artifacts_smoke() {
    // The acceptance check for the two non-MLP workloads: `varbench run
    // workload-linear workload-synth --test` produces variance reports.
    let linear = render(|ctx| workloads::linear_report(Effort::Test, ctx));
    assert!(linear.contains("linear-logreg"));
    assert!(linear.contains("Weights init"));
    assert!(linear.contains("Altogether (joint)"));
    let synth = render(|ctx| workloads::synth_report(Effort::Test, ctx));
    assert!(synth.contains("synthetic-ridge"));
    assert!(synth.contains("Data (bootstrap)"));
    assert!(synth.contains("HyperOpt"));
}

#[test]
fn parallel_reports_byte_identical_to_serial() {
    // The executor guarantee, end to end: every Runner-threaded figure
    // renders the exact same report text at 1 thread and at 4 threads.
    let serial = RunContext::serial();
    let parallel = || RunContext::new(Runner::new(4), MeasureCache::disabled());

    assert_eq!(
        fig1::report_with(&fig1::Config::test(), &serial).render_text(),
        fig1::report_with(&fig1::Config::test(), &parallel()).render_text(),
        "fig1 report differs"
    );
    assert_eq!(
        fig5::report_with(&fig5::Config::test(), &serial).render_text(),
        fig5::report_with(&fig5::Config::test(), &parallel()).render_text(),
        "fig5 report differs"
    );
    assert_eq!(
        fig6::report_with(&fig6::Config::test(), &serial).render_text(),
        fig6::report_with(&fig6::Config::test(), &parallel()).render_text(),
        "fig6 report differs"
    );
    assert_eq!(
        figh5::report_with(&figh5::Config::test(), &serial).render_text(),
        figh5::report_with(&figh5::Config::test(), &parallel()).render_text(),
        "figh5 report differs"
    );
    let i6 = figi6::Config {
        n_simulations: 4,
        resamples: 40,
        sigma: 0.02,
    };
    assert_eq!(
        figi6::report_with(&i6, &serial).render_text(),
        figi6::report_with(&i6, &parallel()).render_text(),
        "figi6 report differs"
    );
    assert_eq!(
        interactions::report_with(&interactions::Config::test(), &serial).render_text(),
        interactions::report_with(&interactions::Config::test(), &parallel()).render_text(),
        "interactions report differs"
    );
}

/// The standalone path: each artifact through its own module entry point,
/// serially, with a private cache — exactly what the pre-registry
/// one-shot binaries printed.
fn standalone_reports(effort: Effort) -> Vec<(&'static str, String)> {
    vec![
        (
            "fig1",
            render(|c| fig1::report_with(&fig1::Config::for_effort(effort), c)),
        ),
        (
            "fig2",
            render(|c| fig2::report_with(&fig2::Config::for_effort(effort), c)),
        ),
        (
            "fig3",
            render(|c| fig3::report_with(&fig3::Config::for_effort(effort), c)),
        ),
        (
            "fig5",
            render(|c| fig5::report_with(&fig5::Config::for_effort(effort), c)),
        ),
        (
            "fig6",
            render(|c| fig6::report_with(&fig6::Config::for_effort(effort), c)),
        ),
        (
            "figc1",
            render(|c| figc1::report_with(&figc1::Config::for_effort(effort), c)),
        ),
        (
            "figf2",
            render(|c| figf2::report_with(&figf2::Config::for_effort(effort), c)),
        ),
        (
            "figg3",
            render(|c| figg3::report_with(&figg3::Config::for_effort(effort), c)),
        ),
        (
            "figh5",
            render(|c| figh5::report_with(&figh5::Config::for_effort(effort), c)),
        ),
        (
            "figi6",
            render(|c| figi6::report_with(&figi6::Config::for_effort(effort), c)),
        ),
        (
            "tables",
            render(|c| tables::report_with(&tables::Config::for_effort(effort), c)),
        ),
        (
            "interactions",
            render(|c| interactions::report_with(&interactions::Config::for_effort(effort), c)),
        ),
        (
            "ablations",
            render(|c| ablations::report_with(&ablations::Config::for_effort(effort), c)),
        ),
        (
            "workload-linear",
            render(|c| workloads::linear_report(effort, c)),
        ),
        (
            "workload-synth",
            render(|c| workloads::synth_report(effort, c)),
        ),
    ]
}

#[test]
fn registry_run_all_byte_identical_to_standalone_artifacts() {
    // The `varbench run all --test` path: every artifact through the
    // registry, scheduled in parallel, sharing one measurement cache.
    // Each report must match the standalone serial output byte for byte —
    // the cache and the scheduler may change who computes a measurement,
    // never its value.
    let ctx = RunContext::new(Runner::new(4), MeasureCache::new());
    let specs: Vec<_> = registry::all().iter().collect();
    let reports = registry::run_specs(&specs, Effort::Test, &ctx);
    let expected = standalone_reports(Effort::Test);
    assert_eq!(reports.len(), expected.len());
    assert!(
        ctx.cache().stats().rows_served > 0,
        "the shared cache must actually serve cross-artifact measurements"
    );
    for (report, (name, text)) in reports.iter().zip(&expected) {
        assert_eq!(report.name(), *name, "registry order");
        assert_eq!(
            report.render_text(),
            *text,
            "{name} report differs from its standalone output"
        );
    }
}

#[test]
#[ignore = "wall-clock benchmark; run explicitly: cargo test --release -- --ignored fig5_quick"]
// A speedup acceptance test is the other legitimate clock reader
// besides the timing module (lint L002 exempts test paths; the clippy
// mirror needs an explicit carve-out).
#[allow(clippy::disallowed_methods)]
fn fig5_quick_parallel_speedup() {
    // Acceptance check: fig5's quick config through the Runner on >= 4
    // threads must be >= 2x faster than the serial path, with the exact
    // same report text. Wall-clock sensitive, so opt-in (scripts/ci.sh
    // runs it in release mode when the host has enough cores).
    let config = fig5::Config::quick();
    let t0 = std::time::Instant::now();
    let serial_report = render(|c| fig5::report_with(&config, c));
    let serial_time = t0.elapsed();

    let threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get().min(8))
        .max(4);
    let t1 = std::time::Instant::now();
    let parallel_ctx = RunContext::new(Runner::new(threads), MeasureCache::new());
    let parallel_report = fig5::report_with(&config, &parallel_ctx).render_text();
    let parallel_time = t1.elapsed();

    assert_eq!(
        serial_report, parallel_report,
        "reports must be byte-identical"
    );
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
    println!(
        "fig5 quick: serial {serial_time:?}, parallel({threads}) {parallel_time:?}, speedup {speedup:.2}x"
    );
    assert!(
        speedup >= 2.0,
        "expected >= 2x speedup on {threads} threads, got {speedup:.2}x \
         (serial {serial_time:?}, parallel {parallel_time:?})"
    );
}
