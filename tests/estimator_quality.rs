//! Integration tests of the paper's estimator-quality claims, at reduced
//! scale: randomizing more sources decorrelates measures, and the biased
//! estimator costs a fraction of the ideal one.

use varbench::core::ctx::RunContext;
use varbench::core::decompose::{decompose, std_err_curve};
use varbench::core::estimator::{fix_hopt_estimator, ideal_estimator, Randomize};
use varbench::pipeline::{CaseStudy, HpoAlgorithm, Scale};
use varbench::stats::describe::mean;

fn groups(cs: &CaseStudy, variant: Randomize, reps: usize, k: usize) -> Vec<Vec<f64>> {
    let ctx = RunContext::serial();
    (0..reps)
        .map(|r| {
            fix_hopt_estimator(
                cs,
                k,
                HpoAlgorithm::RandomSearch,
                3,
                77,
                r as u64,
                variant,
                &ctx,
            )
            .measures
        })
        .collect()
}

#[test]
fn randomizing_all_sources_decorrelates_measures() {
    // The mechanism behind the paper's Fig. H.5: FixHOptEst(k, All) has
    // lower measure correlation rho than FixHOptEst(k, Init).
    let cs = CaseStudy::glue_rte_bert(Scale::Test);
    let reps = 6;
    let k = 8;
    let ideal = ideal_estimator(
        &cs,
        6,
        HpoAlgorithm::RandomSearch,
        3,
        77,
        &RunContext::serial(),
    );
    let mu = mean(&ideal.measures);

    let d_init = decompose(&groups(&cs, Randomize::Init, reps, k), mu);
    let d_all = decompose(&groups(&cs, Randomize::All, reps, k), mu);
    assert!(
        d_all.rho < d_init.rho + 0.15,
        "rho(All) = {} should not exceed rho(Init) = {} (tolerance for small reps)",
        d_all.rho,
        d_init.rho
    );
    // Init-only keeps split and order fixed: correlation should be high.
    assert!(
        d_init.rho > 0.3,
        "rho(Init) = {} suspiciously low",
        d_init.rho
    );
}

#[test]
fn std_err_curves_are_finite_and_ordered_at_k() {
    let cs = CaseStudy::glue_sst2_bert(Scale::Test);
    let k = 6;
    let curve_init = std_err_curve(&groups(&cs, Randomize::Init, 5, k), k);
    let curve_all = std_err_curve(&groups(&cs, Randomize::All, 5, k), k);
    assert_eq!(curve_init.len(), k);
    assert_eq!(curve_all.len(), k);
    for c in curve_init.iter().chain(&curve_all) {
        assert!(c.is_finite() && *c >= 0.0);
    }
}

#[test]
fn cost_accounting_matches_theory() {
    let cs = CaseStudy::mhc_mlp(Scale::Test);
    let k = 5;
    let t = 4;
    let ctx = RunContext::serial();
    let ideal = ideal_estimator(&cs, k, HpoAlgorithm::RandomSearch, t, 1, &ctx);
    let biased = fix_hopt_estimator(
        &cs,
        k,
        HpoAlgorithm::RandomSearch,
        t,
        1,
        0,
        Randomize::All,
        &ctx,
    );
    assert_eq!(ideal.fits, k * (t + 1));
    assert_eq!(biased.fits, t + k);
    // The paper's 51x claim at k=100, T=200; here the ratio is smaller but
    // must already exceed 2x.
    assert!(ideal.fits as f64 / biased.fits as f64 > 2.0);
}

#[test]
fn ideal_estimator_mean_is_stable_across_seeds() {
    // Two independent ideal-estimator runs must agree within a few sigma.
    let cs = CaseStudy::mhc_mlp(Scale::Test);
    let ctx = RunContext::serial();
    let a = ideal_estimator(&cs, 5, HpoAlgorithm::RandomSearch, 3, 100, &ctx);
    let b = ideal_estimator(&cs, 5, HpoAlgorithm::RandomSearch, 3, 200, &ctx);
    let spread = a.std().max(b.std()).max(1e-6);
    assert!(
        (a.mean() - b.mean()).abs() < 6.0 * spread,
        "means {} vs {} with spread {}",
        a.mean(),
        b.mean(),
        spread
    );
}
