//! Property-based tests over the public API: invariants that must hold for
//! generated inputs, not just the unit-test examples. Driven by the in-repo
//! deterministic seed-sweep harness ([`varbench::rng::sweep`]).

use varbench::data::split::oob_split;
use varbench::hpo::Dim;
use varbench::rng::sweep::sweep;
use varbench::rng::{Rng, SeedTree};
use varbench::stats::bootstrap::{percentile_ci, prob_outperform};
use varbench::stats::describe::{mean, quantile, std_dev, Summary};
use varbench::stats::power::noether_sample_size;
use varbench::stats::tests::mann_whitney::mann_whitney_u;
use varbench::stats::tests::Alternative;
use varbench::stats::{standard_normal_quantile, Normal};

#[test]
fn normal_quantile_inverts_cdf() {
    sweep("normal_quantile_inverts_cdf", 64, |case| {
        let p = case.f64_in(0.001, 0.999);
        let n = Normal::standard();
        let x = n.quantile(p);
        assert!((n.cdf(x) - p).abs() < 1e-9);
    });
}

#[test]
fn normal_quantile_monotone() {
    sweep("normal_quantile_monotone", 64, |case| {
        let p1 = case.f64_in(0.01, 0.98);
        let dp = case.f64_in(0.001, 0.01);
        assert!(standard_normal_quantile(p1 + dp) > standard_normal_quantile(p1));
    });
}

#[test]
fn prob_outperform_bounds_and_antisymmetry() {
    sweep("prob_outperform_bounds_and_antisymmetry", 64, |case| {
        let a = case.vec_f64(-1e3, 1e3, 1, 40);
        let b_offset = case.f64_in(-10.0, 10.0);
        let b: Vec<f64> = a.iter().map(|x| x + b_offset).collect();
        let p_ab = prob_outperform(&a, &b);
        let p_ba = prob_outperform(&b, &a);
        assert!((0.0..=1.0).contains(&p_ab));
        // With no exact ties (offset != 0) the two probabilities complement.
        if b_offset != 0.0 {
            assert!((p_ab + p_ba - 1.0).abs() < 1e-12);
        }
    });
}

#[test]
fn percentile_ci_is_ordered() {
    sweep("percentile_ci_is_ordered", 64, |case| {
        let data = case.vec_f64(-100.0, 100.0, 5, 60);
        let seed = case.u64_in(0, 1000);
        let mut rng = Rng::seed_from_u64(seed);
        let ci = percentile_ci(&data, mean, 200, 0.05, &mut rng);
        assert!(ci.lo <= ci.hi);
        // The mean of a bounded sample lies within the bootstrap hull.
        assert!(ci.lo >= data.iter().cloned().fold(f64::INFINITY, f64::min) - 1e-9);
        assert!(ci.hi <= data.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1e-9);
    });
}

#[test]
fn mann_whitney_p_value_valid() {
    sweep("mann_whitney_p_value_valid", 64, |case| {
        let a = case.vec_f64(-10.0, 10.0, 2, 30);
        let b = case.vec_f64(-10.0, 10.0, 2, 30);
        let r = mann_whitney_u(&a, &b, Alternative::TwoSided);
        assert!((0.0..=1.0).contains(&r.p_value));
        assert!((0.0..=1.0).contains(&r.effect_size));
        assert!(r.u >= 0.0);
        assert!(r.u <= (a.len() * b.len()) as f64);
    });
}

#[test]
fn noether_monotone_in_gamma() {
    sweep("noether_monotone_in_gamma", 64, |case| {
        let g1 = case.f64_in(0.55, 0.94);
        let n1 = noether_sample_size(g1, 0.05, 0.05);
        let n2 = noether_sample_size(g1 + 0.05, 0.05, 0.05);
        assert!(n2 <= n1);
    });
}

#[test]
fn oob_split_partitions_correctly() {
    sweep("oob_split_partitions_correctly", 64, |case| {
        let n = case.usize_in(50, 300);
        let seed = case.u64_in(0, 500);
        let n_eval = n / 10;
        let mut rng = Rng::seed_from_u64(seed);
        let s = oob_split(n, n, n_eval, n_eval, &mut rng);
        // Sorted-vec membership instead of a hash set (clippy.toml / L001).
        let mut train: Vec<usize> = s.train().to_vec();
        train.sort_unstable();
        for &i in s.valid().iter().chain(s.test()) {
            assert!(i < n);
            assert!(
                train.binary_search(&i).is_err(),
                "eval index leaked into train"
            );
        }
        let mut valid: Vec<usize> = s.valid().to_vec();
        valid.sort_unstable();
        for &i in s.test() {
            assert!(valid.binary_search(&i).is_err(), "test overlaps valid");
        }
    });
}

#[test]
fn dim_from_unit_stays_in_bounds() {
    sweep("dim_from_unit_stays_in_bounds", 64, |case| {
        // Hit the closed upper endpoint explicitly; the sweep covers [0, 1).
        let u = if case.index() == 0 {
            1.0
        } else {
            case.f64_in(0.0, 1.0)
        };
        let dims = [
            Dim::uniform(-3.0, 7.0),
            Dim::log_uniform(1e-6, 1e2),
            Dim::integer(-5, 20),
        ];
        for d in dims {
            let v = d.from_unit(u);
            assert_eq!(d.clamp(v), v, "{:?} produced out-of-bounds {}", d, v);
        }
    });
}

#[test]
fn seed_tree_labels_never_collide() {
    sweep("seed_tree_labels_never_collide", 64, |case| {
        let root = case.u64_in(0, 10_000);
        let i = case.u64_in(0, 1000);
        let j = case.u64_in(0, 1000);
        if i == j {
            return; // the old harness prop_assume!'d this away
        }
        let tree = SeedTree::new(root);
        assert_ne!(tree.seed_indexed("x", i), tree.seed_indexed("x", j));
    });
}

#[test]
fn summary_orders_min_median_max() {
    sweep("summary_orders_min_median_max", 64, |case| {
        let data = case.vec_f64(-1e6, 1e6, 1, 100);
        let s = Summary::from_slice(&data);
        assert!(s.min <= s.median);
        assert!(s.median <= s.max);
        assert!(s.min <= s.mean && s.mean <= s.max);
    });
}

#[test]
fn quantile_monotone_in_q() {
    sweep("quantile_monotone_in_q", 64, |case| {
        let data = case.vec_f64(-100.0, 100.0, 2, 50);
        let q1 = case.f64_in(0.0, 0.5);
        let q2 = case.f64_in(0.5, 1.0);
        assert!(quantile(&data, q1) <= quantile(&data, q2));
    });
}

#[test]
fn std_dev_shift_invariant() {
    sweep("std_dev_shift_invariant", 64, |case| {
        let data = case.vec_f64(-100.0, 100.0, 3, 50);
        let shift = case.f64_in(-1e3, 1e3);
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        assert!((std_dev(&data) - std_dev(&shifted)).abs() < 1e-6);
    });
}
