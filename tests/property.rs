//! Property-based tests (proptest) over the public API: invariants that
//! must hold for arbitrary inputs, not just the unit-test examples.

use proptest::prelude::*;
use varbench::data::split::oob_split;
use varbench::hpo::Dim;
use varbench::rng::{Rng, SeedTree};
use varbench::stats::bootstrap::{percentile_ci, prob_outperform};
use varbench::stats::describe::{mean, quantile, std_dev, Summary};
use varbench::stats::power::noether_sample_size;
use varbench::stats::tests::mann_whitney::mann_whitney_u;
use varbench::stats::tests::Alternative;
use varbench::stats::{standard_normal_quantile, Normal};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normal_quantile_inverts_cdf(p in 0.001f64..0.999) {
        let n = Normal::standard();
        let x = n.quantile(p);
        prop_assert!((n.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn normal_quantile_monotone(p1 in 0.01f64..0.98, dp in 0.001f64..0.01) {
        prop_assert!(standard_normal_quantile(p1 + dp) > standard_normal_quantile(p1));
    }

    #[test]
    fn prob_outperform_bounds_and_antisymmetry(
        a in prop::collection::vec(-1e3f64..1e3, 1..40),
        b_offset in -10f64..10.0,
    ) {
        let b: Vec<f64> = a.iter().map(|x| x + b_offset).collect();
        let p_ab = prob_outperform(&a, &b);
        let p_ba = prob_outperform(&b, &a);
        prop_assert!((0.0..=1.0).contains(&p_ab));
        // With no exact ties (offset != 0) the two probabilities complement.
        if b_offset != 0.0 {
            prop_assert!((p_ab + p_ba - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn percentile_ci_is_ordered(
        data in prop::collection::vec(-100f64..100.0, 5..60),
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let ci = percentile_ci(&data, mean, 200, 0.05, &mut rng);
        prop_assert!(ci.lo <= ci.hi);
        // The mean of a bounded sample lies within the bootstrap hull.
        prop_assert!(ci.lo >= data.iter().cloned().fold(f64::INFINITY, f64::min) - 1e-9);
        prop_assert!(ci.hi <= data.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1e-9);
    }

    #[test]
    fn mann_whitney_p_value_valid(
        a in prop::collection::vec(-10f64..10.0, 2..30),
        b in prop::collection::vec(-10f64..10.0, 2..30),
    ) {
        let r = mann_whitney_u(&a, &b, Alternative::TwoSided);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!((0.0..=1.0).contains(&r.effect_size));
        prop_assert!(r.u >= 0.0);
        prop_assert!(r.u <= (a.len() * b.len()) as f64);
    }

    #[test]
    fn noether_monotone_in_gamma(g1 in 0.55f64..0.94) {
        let n1 = noether_sample_size(g1, 0.05, 0.05);
        let n2 = noether_sample_size(g1 + 0.05, 0.05, 0.05);
        prop_assert!(n2 <= n1);
    }

    #[test]
    fn oob_split_partitions_correctly(
        n in 50usize..300,
        seed in 0u64..500,
    ) {
        let n_eval = n / 10;
        let mut rng = Rng::seed_from_u64(seed);
        let s = oob_split(n, n, n_eval, n_eval, &mut rng);
        let train: std::collections::HashSet<usize> = s.train().iter().copied().collect();
        for &i in s.valid().iter().chain(s.test()) {
            prop_assert!(i < n);
            prop_assert!(!train.contains(&i), "eval index leaked into train");
        }
        let valid: std::collections::HashSet<usize> = s.valid().iter().copied().collect();
        for &i in s.test() {
            prop_assert!(!valid.contains(&i), "test overlaps valid");
        }
    }

    #[test]
    fn dim_from_unit_stays_in_bounds(u in 0.0f64..=1.0) {
        let dims = [
            Dim::uniform(-3.0, 7.0),
            Dim::log_uniform(1e-6, 1e2),
            Dim::integer(-5, 20),
        ];
        for d in dims {
            let v = d.from_unit(u);
            prop_assert_eq!(d.clamp(v), v, "{:?} produced out-of-bounds {}", d, v);
        }
    }

    #[test]
    fn seed_tree_labels_never_collide(root in 0u64..10_000, i in 0u64..1000, j in 0u64..1000) {
        prop_assume!(i != j);
        let tree = SeedTree::new(root);
        prop_assert_ne!(tree.seed_indexed("x", i), tree.seed_indexed("x", j));
    }

    #[test]
    fn summary_orders_min_median_max(
        data in prop::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let s = Summary::from_slice(&data);
        prop_assert!(s.min <= s.median);
        prop_assert!(s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn quantile_monotone_in_q(
        data in prop::collection::vec(-100f64..100.0, 2..50),
        q1 in 0.0f64..0.5,
        q2 in 0.5f64..1.0,
    ) {
        prop_assert!(quantile(&data, q1) <= quantile(&data, q2));
    }

    #[test]
    fn std_dev_shift_invariant(
        data in prop::collection::vec(-100f64..100.0, 3..50),
        shift in -1e3f64..1e3,
    ) {
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        prop_assert!((std_dev(&data) - std_dev(&shifted)).abs() < 1e-6);
    }
}
