//! Integration tests of the decision criteria's error rates, reproducing
//! the paper's Section 4 claims at reduced simulation scale.

use varbench::core::compare::{average_comparison, compare_paired, single_point_comparison};
use varbench::core::simulation::{
    detection_study, oracle_power, simulate_measures, DetectionConfig, SimEstimator, SimulatedTask,
};
use varbench::rng::Rng;

fn task() -> SimulatedTask {
    // Calibration-realistic ratio: the per-ξ offset of FixHOptEst(All) is
    // roughly a third of the conditioned measure std (paper Fig. H.5).
    // Larger offsets degrade the biased test's false-positive control —
    // that degradation is itself a paper finding, tested in
    // `biased_estimator_degrades_but_preserves_control`.
    SimulatedTask::new(0.02, 0.006, 0.019)
}

fn config() -> DetectionConfig {
    DetectionConfig {
        k: 50,
        n_simulations: 120,
        gamma: 0.75,
        delta: 1.9952 * 0.02,
        alpha: 0.05,
        resamples: 150,
    }
}

#[test]
fn false_positives_controlled_at_null() {
    let rows = detection_study(&task(), &[0.5], &config(), 1);
    let r = &rows[0];
    // Paper: single point ~10% FP (we measure "A declared better", a coin
    // flip ~50%, of which the false-positive *error* concerns the
    // conclusion; here we check the variance-aware tests).
    assert!(
        r.prob_out_ideal <= 0.08,
        "P(A>B) test FP {}",
        r.prob_out_ideal
    );
    // The biased estimator loses nominal control ("we cannot guarantee a
    // nominal control") but stays in a usable regime. With 120 simulations
    // the FP estimate has std ~0.04, so allow a generous band above the
    // ~0.2 typical rate while still rejecting a collapse to coin-flipping.
    assert!(
        r.prob_out_biased <= 0.32,
        "biased P(A>B) FP {}",
        r.prob_out_biased
    );
    assert!(r.average_ideal <= 0.08, "average FP {}", r.average_ideal);
}

#[test]
fn false_negatives_much_lower_for_prob_test_than_average() {
    // Paper Fig. 6, right region (H1 true, P(A>B) = 0.95): average has
    // ~90% FN, the P(A>B) test ~30%.
    let rows = detection_study(&task(), &[0.95], &config(), 2);
    let r = &rows[0];
    assert!(
        r.prob_out_ideal > r.average_ideal,
        "P(A>B) detection {} must exceed average's {}",
        r.prob_out_ideal,
        r.average_ideal
    );
    assert!(
        r.prob_out_ideal > 0.5,
        "P(A>B) detection too low: {}",
        r.prob_out_ideal
    );
    assert!(r.oracle > 0.99);
}

#[test]
fn single_point_has_high_false_negatives_under_h1() {
    // One pair of runs misses true improvements often (paper: ~75% FN at
    // moderate effects).
    let t = task();
    let gap = t.gap_for_probability(0.75);
    let mut rng = Rng::seed_from_u64(3);
    let mut misses = 0;
    let sims = 2000;
    for _ in 0..sims {
        let a = simulate_measures(&t, SimEstimator::Ideal, 0.5 + gap, 1, &mut rng);
        let b = simulate_measures(&t, SimEstimator::Ideal, 0.5, 1, &mut rng);
        if !single_point_comparison(a[0], b[0]) {
            misses += 1;
        }
    }
    let fn_rate = misses as f64 / sims as f64;
    // At P(A>B)=0.75 the single-point FN rate is exactly 25% by
    // construction; the paper's ~75% figure applies to its delta-thresholded
    // variant. Verify the coin-flip structure.
    assert!((fn_rate - 0.25).abs() < 0.05, "single-point FN {fn_rate}");
}

#[test]
fn average_with_paper_delta_is_conservative() {
    let t = task();
    let gap = t.gap_for_probability(0.85);
    let mut rng = Rng::seed_from_u64(4);
    let mut detections = 0;
    let sims = 400;
    for _ in 0..sims {
        let a = simulate_measures(&t, SimEstimator::Ideal, 0.5 + gap, 50, &mut rng);
        let b = simulate_measures(&t, SimEstimator::Ideal, 0.5, 50, &mut rng);
        if average_comparison(&a, &b, 1.9952 * t.sigma) {
            detections += 1;
        }
    }
    let rate = detections as f64 / sims as f64;
    // Meaningful effect (P=0.85) but the delta threshold swallows most of
    // it: detection should stay low (paper: ~10%).
    assert!(
        rate < 0.5,
        "average criterion detection {rate} not conservative"
    );
}

#[test]
fn biased_estimator_degrades_but_preserves_control() {
    // Paper: "the test of probability of outperforming controls well the
    // error rates even when used with a biased estimator".
    let rows = detection_study(&task(), &[0.5, 0.9], &config(), 5);
    let null = &rows[0];
    let effect = &rows[1];
    // Same statistical band as `false_positives_controlled_at_null`.
    assert!(
        null.prob_out_biased <= 0.32,
        "biased FP {}",
        null.prob_out_biased
    );
    assert!(
        effect.prob_out_biased >= effect.prob_out_ideal * 0.4,
        "biased power {} collapsed vs ideal {}",
        effect.prob_out_biased,
        effect.prob_out_ideal
    );
}

#[test]
fn oracle_power_is_an_upper_envelope() {
    let rows = detection_study(&task(), &[0.6, 0.7, 0.8], &config(), 6);
    for r in &rows {
        assert!(
            r.prob_out_ideal <= oracle_power(r.p_true, 50, 0.05) + 0.10,
            "test at p={} beats the oracle: {} vs {}",
            r.p_true,
            r.prob_out_ideal,
            r.oracle
        );
    }
}

#[test]
fn gamma_tuning_trades_detection_for_stringency() {
    let t = task();
    let gap = t.gap_for_probability(0.8);
    let mut loose_hits = 0;
    let mut strict_hits = 0;
    let sims = 150;
    let mut rng = Rng::seed_from_u64(7);
    for _ in 0..sims {
        let a = simulate_measures(&t, SimEstimator::Ideal, 0.5 + gap, 50, &mut rng);
        let b = simulate_measures(&t, SimEstimator::Ideal, 0.5, 50, &mut rng);
        if compare_paired(&a, &b, 0.65, 0.05, 150, &mut rng).is_improvement() {
            loose_hits += 1;
        }
        if compare_paired(&a, &b, 0.9, 0.05, 150, &mut rng).is_improvement() {
            strict_hits += 1;
        }
    }
    assert!(
        loose_hits >= strict_hits,
        "looser gamma should detect at least as often: {loose_hits} vs {strict_hits}"
    );
}
