//! Integration tests of the cross-figure measurement cache: hit/miss
//! accounting on real artifacts, key sensitivity (changing seed, budget,
//! scale, or workload identity must miss), bit-identical cached vs
//! uncached results, disk persistence, and the headline
//! cache-effectiveness property — running artifacts together performs
//! strictly fewer workload measurements than running them independently.

use varbench::core::ctx::RunContext;
use varbench::core::estimator::{ideal_estimator, source_variance_study};
use varbench::core::exec::Runner;
use varbench::pipeline::{
    gc_dir, CaseStudy, HpoAlgorithm, MeasureCache, MeasureKey, MeasureKind, Scale,
    SyntheticWorkload, VarianceSource, Workload,
};
use varbench_bench::args::Effort;
use varbench_bench::registry;

fn work_of(names: &[&str], ctx: &RunContext) -> u64 {
    let specs: Vec<_> = names
        .iter()
        .map(|n| registry::find(n).expect("registered artifact"))
        .collect();
    // Serial scheduling: deterministic accounting (parallel artifacts can
    // race to compute the same key, which is correct but double-counts).
    let _ = registry::run_specs(&specs, Effort::Test, ctx);
    ctx.cache().stats().work()
}

#[test]
fn fig5_and_tables_together_measure_strictly_less_than_apart() {
    // fig5 + tables share the MHC hyperparameter search (the biased
    // estimator's repetition 0), so a joint run performs strictly fewer
    // model fits than the sum of independent runs.
    let alone_fig5 = work_of(&["fig5"], &RunContext::serial_cached());
    let alone_tables = work_of(&["tables"], &RunContext::serial_cached());
    let together = work_of(&["fig5", "tables"], &RunContext::serial_cached());
    assert!(
        together < alone_fig5 + alone_tables,
        "shared cache saved nothing: {together} >= {alone_fig5} + {alone_tables}"
    );
}

#[test]
fn figh5_reuses_fig5_estimator_matrices() {
    // figh5's biased repetitions are prefixes of fig5's at test preset:
    // with a warm cache the marginal cost collapses.
    let alone = work_of(&["figh5"], &RunContext::serial_cached());
    let ctx = RunContext::serial_cached();
    let after_fig5 = work_of(&["fig5"], &ctx);
    let after_both = work_of(&["figh5"], &ctx);
    let marginal = after_both - after_fig5;
    assert!(
        marginal < alone,
        "warm-cache figh5 cost {marginal} not below standalone {alone}"
    );
}

#[test]
fn source_study_family_shares_one_matrix_per_source() {
    // fig1 (n=4), fig2 (n=5), figg3 (n=8) and interactions (n=6) all
    // draw bootstrap matrices from the same key; the longest request
    // bounds the total rows computed for that key.
    let ctx = RunContext::serial_cached();
    let cs = CaseStudy::glue_rte_bert(Scale::Test);
    let seed = varbench_bench::figures::SOURCE_STUDY_SEED;
    for n in [4, 5, 8, 6] {
        let m = source_variance_study(
            &cs,
            VarianceSource::DataSplit,
            n,
            HpoAlgorithm::RandomSearch,
            1,
            seed,
            &ctx,
        );
        assert_eq!(m.len(), n);
    }
    let stats = ctx.cache().stats();
    assert_eq!(stats.rows_computed, 8, "only the longest request computes");
    assert_eq!(stats.misses, 1, "only the first request misses outright");
    assert_eq!(stats.extensions, 2, "n=5 and n=8 extend the prefix");
    assert_eq!(stats.full_hits, 1, "n=6 is served outright");
    // And the matrix is exactly what the uncached (default-context) study
    // measures.
    let direct = source_variance_study(
        &cs,
        VarianceSource::DataSplit,
        8,
        HpoAlgorithm::RandomSearch,
        1,
        seed,
        &RunContext::serial(),
    );
    let cached = source_variance_study(
        &cs,
        VarianceSource::DataSplit,
        8,
        HpoAlgorithm::RandomSearch,
        1,
        seed,
        &ctx,
    );
    assert_eq!(direct, cached, "cached matrix must be bit-identical");
}

#[test]
fn changing_seed_budget_scale_or_workload_misses() {
    let ctx = RunContext::serial_cached();
    let algo = HpoAlgorithm::RandomSearch;
    let cs = CaseStudy::glue_rte_bert(Scale::Test);

    let base = ideal_estimator(&cs, 2, algo, 2, 11, &ctx);
    assert_eq!(ctx.cache().stats().misses, 1);

    // Same key: full hit, identical run.
    let replay = ideal_estimator(&cs, 2, algo, 2, 11, &ctx);
    assert_eq!(replay, base);
    assert_eq!(ctx.cache().stats().full_hits, 1);

    // Different seed: miss, different measures.
    let other_seed = ideal_estimator(&cs, 2, algo, 2, 12, &ctx);
    assert_eq!(ctx.cache().stats().misses, 2);
    assert_ne!(other_seed.measures, base.measures);

    // Different budget: miss (budget changes the tuning, hence measures).
    let other_budget = ideal_estimator(&cs, 2, algo, 3, 11, &ctx);
    assert_eq!(ctx.cache().stats().misses, 3);
    assert_ne!(other_budget.measures, base.measures);

    // Different scale: miss (same name, bigger pools).
    let quick = CaseStudy::glue_rte_bert(Scale::Quick);
    let _ = source_variance_study(&cs, VarianceSource::WeightsInit, 2, algo, 1, 5, &ctx);
    let misses_before = ctx.cache().stats().misses;
    let _ = source_variance_study(&quick, VarianceSource::WeightsInit, 2, algo, 1, 5, &ctx);
    assert_eq!(
        ctx.cache().stats().misses,
        misses_before + 1,
        "scale must miss"
    );

    // Different workload sharing nothing but the API: its own entries.
    let synth = varbench::pipeline::SyntheticWorkload::new(Scale::Test);
    let misses_before = ctx.cache().stats().misses;
    let _ = source_variance_study(&synth, VarianceSource::DataSplit, 2, algo, 1, 5, &ctx);
    assert_eq!(
        ctx.cache().stats().misses,
        misses_before + 1,
        "another workload must miss"
    );
    assert!(
        synth.cache_id().contains("synthetic-ridge@v1:test"),
        "cache identity carries name, version and scale: {}",
        synth.cache_id()
    );
}

#[test]
fn disk_backed_cache_replays_bit_identically_across_instances() {
    let dir = std::env::temp_dir().join(format!("varbench-it-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cs = CaseStudy::mhc_mlp(Scale::Test);
    let algo = HpoAlgorithm::RandomSearch;

    let first = {
        let ctx = RunContext::new(Runner::serial(), MeasureCache::with_dir(&dir));
        ideal_estimator(&cs, 3, algo, 2, 21, &ctx)
    };
    let second = {
        // A brand-new process-like instance: must load from disk, compute
        // nothing, and replay the exact bits.
        let ctx = RunContext::new(Runner::serial(), MeasureCache::with_dir(&dir));
        let run = ideal_estimator(&cs, 3, algo, 2, 21, &ctx);
        let stats = ctx.cache().stats();
        assert_eq!(stats.rows_computed, 0, "must be served from disk");
        assert_eq!(stats.disk_loads, 1);
        run
    };
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&first.measures), bits(&second.measures));
    assert_eq!(first.fits, second.fits);
    // Against the uncached ground truth too.
    let direct = ideal_estimator(&cs, 3, algo, 2, 21, &RunContext::serial());
    assert_eq!(bits(&direct.measures), bits(&first.measures));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Unique per-test scratch directory (tests in one binary share a pid).
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("varbench-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn rowfn(r: std::ops::Range<usize>) -> Vec<f64> {
    r.map(|i| i as f64 * 0.25 + 1.0).collect()
}

#[test]
fn concurrent_instances_over_one_dir_do_not_tear_the_same_key() {
    // Eight writers, each with its OWN MeasureCache instance over one
    // shared directory — the multi-process scenario `varbench serve`
    // depends on (coalescing only helps within a process; across
    // processes only the atomic tmp+rename publish protects readers).
    let dir = scratch("mp-same");
    let w = SyntheticWorkload::new(Scale::Test);
    let key = MeasureKey::new(
        &w,
        MeasureKind::SourceStudy {
            source: VarianceSource::DataSplit,
        },
        777,
    );
    std::thread::scope(|s| {
        for t in 0..8 {
            let (dir, key) = (&dir, &key);
            s.spawn(move || {
                // Growing prefixes: every iteration is a fresh instance
                // (no shared memory), racing publishes of 1..=12 rows.
                for n in 1..=12 {
                    let cache = MeasureCache::with_dir(dir);
                    let got = cache.matrix(key, n, 1, rowfn);
                    assert_eq!(got, rowfn(0..n), "writer {t} at n = {n}");
                }
            });
        }
    });

    // Whatever interleaving happened: one parseable record, no torn
    // bytes, no leftover temp files.
    let report = gc_dir(&dir).expect("gc scans the store");
    assert_eq!(report.kept_records, 1, "one record for one key");
    assert_eq!(report.torn_files, 0, "no torn publishes");
    assert_eq!(report.tmp_files, 0, "no orphaned temp files");

    // Settle to the full 12 rows (a racing shorter publish may have
    // landed last; the prefix property makes that harmless), then a
    // fresh instance must replay all 12 from disk, computing nothing.
    let settle = MeasureCache::with_dir(&dir);
    assert_eq!(settle.matrix(&key, 12, 1, rowfn), rowfn(0..12));
    assert!(
        settle.stats().rows_computed < 12,
        "the disk record served at least one row"
    );
    let fresh = MeasureCache::with_dir(&dir);
    let replay = fresh.matrix(&key, 12, 1, |_| unreachable!("must be served from disk"));
    assert_eq!(replay, rowfn(0..12), "bit-identical replay");
    assert_eq!(fresh.stats().rows_computed, 0);
    assert_eq!(fresh.stats().disk_loads, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_instances_writing_distinct_keys_all_persist() {
    let dir = scratch("mp-distinct");
    let w = SyntheticWorkload::new(Scale::Test);
    let key_for = |seed: u64| {
        MeasureKey::new(
            &w,
            MeasureKind::SourceStudy {
                source: VarianceSource::DataSplit,
            },
            seed,
        )
    };
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let (dir, key) = (&dir, key_for(t));
            s.spawn(move || {
                let cache = MeasureCache::with_dir(dir);
                let got = cache.matrix(&key, 4, 1, move |r| {
                    r.map(|i| (i + t as usize) as f64).collect()
                });
                assert_eq!(got.len(), 4);
            });
        }
    });
    let report = gc_dir(&dir).expect("gc scans the store");
    assert_eq!(report.kept_records, 8, "every key persisted its record");
    assert_eq!(report.torn_files + report.tmp_files, 0);
    // Each replays from disk bit-identically on a fresh instance.
    for t in 0..8u64 {
        let fresh = MeasureCache::with_dir(&dir);
        let expect: Vec<f64> = (0..4).map(|i| (i + t as usize) as f64).collect();
        let replay = fresh.matrix(&key_for(t), 4, 1, |_| unreachable!("served from disk"));
        assert_eq!(replay, expect, "key {t}");
        assert_eq!(fresh.stats().rows_computed, 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig3_full_effort_measures_inflation_through_the_cache() {
    // `fig3 --full` derives its inflation ratio from cached CIFAR10
    // matrices instead of assuming 2.0. Exercised at a reduced size here:
    // just check the measured path is finite, >= 1, and cache-served on
    // replay.
    let ctx = RunContext::serial_cached();
    // Quick-scale measurement is minutes; measure the mechanism on the
    // smaller direct API instead of the full preset.
    let x = {
        use varbench::core::estimator::joint_variance_study;
        use varbench::stats::describe::variance;
        let cs = CaseStudy::cifar10_vgg11(Scale::Test);
        let joint = joint_variance_study(
            &cs,
            &VarianceSource::XI_O,
            6,
            varbench_bench::figures::SOURCE_STUDY_SEED,
            &ctx,
        );
        let boot = source_variance_study(
            &cs,
            VarianceSource::DataSplit,
            6,
            HpoAlgorithm::RandomSearch,
            1,
            varbench_bench::figures::SOURCE_STUDY_SEED,
            &ctx,
        );
        (variance(&joint, 1) / variance(&boot, 1)).max(1.0)
    };
    assert!(x.is_finite() && x >= 1.0, "inflation ratio {x}");
    assert!(ctx.cache().stats().rows_computed >= 12);
}
