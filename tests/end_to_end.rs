//! End-to-end integration: the full workflow of the paper — measure
//! variance, estimate performance, compare algorithms, decide — across
//! crates.

use varbench::core::compare::{compare_paired, Decision};
use varbench::core::ctx::RunContext;
use varbench::core::estimator::{fix_hopt_estimator, ideal_estimator, Randomize};
use varbench::pipeline::{CaseStudy, HpoAlgorithm, Scale, SeedAssignment};
use varbench::rng::Rng;
use varbench::stats::describe::mean;

#[test]
fn complete_benchmark_workflow() {
    let cs = CaseStudy::glue_rte_bert(Scale::Test);

    // 1. Estimate expected performance with both estimators.
    let ctx = RunContext::serial();
    let ideal = ideal_estimator(&cs, 4, HpoAlgorithm::RandomSearch, 4, 1, &ctx);
    let biased = fix_hopt_estimator(
        &cs,
        6,
        HpoAlgorithm::RandomSearch,
        4,
        1,
        0,
        Randomize::All,
        &ctx,
    );
    assert!(ideal.fits > biased.fits, "ideal must cost more fits");
    let mu_ideal = ideal.mean();
    let mu_biased = biased.mean();
    assert!(
        (mu_ideal - mu_biased).abs() < 0.25,
        "estimators should agree roughly"
    );

    // 2. Compare a real improvement with the recommended test.
    let a_params = cs.default_params().to_vec();
    let mut b_params = a_params.clone();
    b_params[0] = 0.002; // crippled learning rate
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for i in 0..16 {
        let seeds = SeedAssignment::all_random(5, i);
        a.push(cs.run_with_params(&a_params, &seeds));
        b.push(cs.run_with_params(&b_params, &seeds));
    }
    assert!(
        mean(&a) > mean(&b),
        "A should outperform the crippled B on average"
    );
    let mut rng = Rng::seed_from_u64(9);
    let verdict = compare_paired(&a, &b, 0.75, 0.05, 500, &mut rng);
    assert!(
        verdict.p_a_gt_b > 0.6,
        "P(A>B) = {} should reflect the improvement",
        verdict.p_a_gt_b
    );

    // 3. Comparing an algorithm against itself must not be an improvement.
    let (mut a2, mut b2) = (Vec::new(), Vec::new());
    for i in 0..16 {
        // Different seeds per side: two independent runs of the SAME
        // algorithm.
        a2.push(cs.run_with_params(&a_params, &SeedAssignment::all_random(21, i)));
        b2.push(cs.run_with_params(&a_params, &SeedAssignment::all_random(22, i)));
    }
    let verdict2 = compare_paired(&a2, &b2, 0.75, 0.05, 500, &mut rng);
    assert_ne!(
        verdict2.decision,
        Decision::SignificantAndMeaningful,
        "self-comparison must not be declared an improvement: {verdict2}"
    );
}

#[test]
fn pipeline_hpo_improves_over_bad_defaults() {
    // HOpt should find hyperparameters at least as good as a crippled
    // starting point on the validation objective.
    let cs = CaseStudy::mhc_mlp(Scale::Test);
    let seeds = SeedAssignment::all_fixed(3);
    let (best, history) = cs.hopt(&seeds, HpoAlgorithm::BayesOpt, 8);
    // The selected parameters must come from the history's best trial.
    let best_obj = history.best().unwrap().objective;
    assert!(history.trials().iter().all(|t| t.objective >= best_obj));
    assert_eq!(best, history.best().unwrap().params);
}

#[test]
fn all_case_studies_complete_pipeline() {
    for cs in CaseStudy::all(Scale::Test) {
        let seeds = SeedAssignment::all_random(7, 0);
        let result = cs.run_pipeline(&seeds, HpoAlgorithm::RandomSearch, 3);
        assert!(
            result.test_metric > 0.0 && result.test_metric <= 1.0,
            "{}: test metric {}",
            cs.name(),
            result.test_metric
        );
        assert_eq!(result.fits, 4);
        assert_eq!(result.best_params.len(), cs.search_space().len());
    }
}
