//! Integration tests of the study server against real sockets: the
//! ISSUE-level acceptance properties — a warm-cache request answers
//! byte-identically without computing, a cold request computes only the
//! missing matrix delta, and concurrent identical requests compute the
//! matrix exactly once (request coalescing through the shared
//! `MeasureCache`).

use std::sync::Barrier;
use varbench::core::ctx::RunContext;
use varbench::core::json::Json;
use varbench_bench::serve::{http_request, ServeState, Server};

fn start_server() -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let state = ServeState::new(RunContext::serial_cached());
    let server = Server::bind("127.0.0.1:0", state).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    (addr, std::thread::spawn(move || server.run()))
}

fn shutdown(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let (status, _) = http_request(addr, "POST", "/v1/shutdown", None).expect("shutdown request");
    assert_eq!(status, 200);
    handle
        .join()
        .expect("server thread exits")
        .expect("accept loop exits cleanly");
}

fn cache_stat(addr: std::net::SocketAddr, field: &str) -> u64 {
    let (status, body) = http_request(addr, "GET", "/v1/cache/stats", None).expect("stats");
    assert_eq!(status, 200, "{body}");
    Json::parse(&body)
        .expect("stats body parses")
        .get(field)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats field {field} in {body}"))
}

#[test]
fn cold_then_warm_requests_compute_only_the_missing_delta() {
    let (addr, handle) = start_server();
    let study = |seeds: usize| {
        format!(r#"{{"workload":"synthetic-ridge","effort":"test","seeds":{seeds}}}"#)
    };

    // Cold: the 3-row matrix is computed outright.
    let (status, cold) = http_request(addr, "POST", "/v1/study", Some(&study(3))).unwrap();
    assert_eq!(status, 200, "{cold}");
    assert_eq!(cache_stat(addr, "misses"), 1);
    assert_eq!(cache_stat(addr, "rows_computed"), 3);

    // Warm replay: byte-identical, nothing computed.
    let (status, warm) = http_request(addr, "POST", "/v1/study", Some(&study(3))).unwrap();
    assert_eq!(status, 200);
    assert_eq!(warm, cold, "warm response is byte-identical");
    assert_eq!(cache_stat(addr, "rows_computed"), 3, "no new rows");
    assert_eq!(cache_stat(addr, "full_hits"), 1);

    // A longer request extends the cached prefix: only the 2 missing
    // rows are computed, not a fresh 5-row matrix.
    let (status, _) = http_request(addr, "POST", "/v1/study", Some(&study(5))).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        cache_stat(addr, "misses"),
        1,
        "prefix extension, not a miss"
    );
    assert_eq!(cache_stat(addr, "extensions"), 1);
    assert_eq!(cache_stat(addr, "rows_computed"), 5, "only the delta");
    shutdown(addr, handle);
}

#[test]
fn concurrent_identical_requests_compute_the_matrix_exactly_once() {
    let (addr, handle) = start_server();
    let body = r#"{"workload":"synthetic-ridge","effort":"test","seeds":4}"#;

    const CLIENTS: usize = 4;
    let barrier = Barrier::new(CLIENTS);
    let responses: Vec<(u16, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    http_request(addr, "POST", "/v1/study", Some(body)).expect("study request")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (status, resp) in &responses {
        assert_eq!(*status, 200, "{resp}");
        assert_eq!(resp, &responses[0].1, "all clients get identical bytes");
    }
    // However the four requests interleaved — coalesced onto one
    // in-flight computation or served after it finished — the matrix was
    // measured exactly once.
    assert_eq!(cache_stat(addr, "misses"), 1, "one leader computed");
    assert_eq!(cache_stat(addr, "rows_computed"), 4, "4 rows, once");
    // Every non-leader was *served* (a full hit after waiting out the
    // leader's flight, or after it already finished); `coalesced` counts
    // how many actually overlapped the computation, which depends on
    // scheduling and may be 0..=3.
    assert_eq!(cache_stat(addr, "full_hits"), (CLIENTS - 1) as u64);
    assert!(cache_stat(addr, "coalesced") <= (CLIENTS - 1) as u64);
    shutdown(addr, handle);
}
