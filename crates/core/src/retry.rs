//! A bounded retry/backoff policy shared by every component that waits
//! on another process: the fleet dispatch driver (waiting for workers to
//! publish cache records) and the `varbench query` HTTP client (waiting
//! for a server to accept connections).
//!
//! The policy is a *pure schedule*: given an attempt number it returns
//! how long to pause before the next attempt, or `None` when the caller
//! should give up. Elapsed time is tracked by summing the pauses the
//! schedule itself hands out — never by reading a clock — so users of
//! this type stay inside the repo's L002 no-wallclock lint without any
//! carve-out.
//!
//! ```
//! use std::time::Duration;
//! use varbench_core::retry::RetryPolicy;
//!
//! let policy = RetryPolicy::new(4)
//!     .initial_backoff(Duration::from_millis(10))
//!     .max_backoff(Duration::from_millis(40));
//! // Exponential doubling, capped at max_backoff, then exhaustion.
//! let pauses: Vec<_> = (0..4).map(|i| policy.backoff_after(i)).collect();
//! assert_eq!(
//!     pauses,
//!     vec![
//!         Some(Duration::from_millis(10)),
//!         Some(Duration::from_millis(20)),
//!         Some(Duration::from_millis(40)),
//!         None, // last attempt: no further retry
//!     ]
//! );
//! ```

#![deny(missing_docs)]

use std::time::Duration;

/// Bounded exponential backoff: up to `attempts` tries, pausing
/// `initial_backoff * 2^k` (capped at `max_backoff`) between them, with
/// the *sum* of all pauses additionally capped by `budget`.
///
/// The schedule is deterministic (no jitter): varbench's own invariants
/// are built on reproducibility, and the handful of processes in a
/// worker fleet do not need thundering-herd protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    attempts: u32,
    initial: Duration,
    max: Duration,
    budget: Duration,
}

impl RetryPolicy {
    /// A policy with `attempts` total tries and the default pacing:
    /// 25 ms initial backoff, 1 s cap, 60 s total sleep budget.
    ///
    /// # Panics
    ///
    /// Panics if `attempts == 0` — a policy that never tries cannot
    /// return a result.
    pub fn new(attempts: u32) -> RetryPolicy {
        assert!(attempts > 0, "a retry policy needs at least one attempt");
        RetryPolicy {
            attempts,
            initial: Duration::from_millis(25),
            max: Duration::from_secs(1),
            budget: Duration::from_secs(60),
        }
    }

    /// A single attempt, no retries: `backoff_after` is always `None`.
    pub fn once() -> RetryPolicy {
        RetryPolicy::new(1)
    }

    /// Sets the pause before the first retry (doubles each retry after).
    pub fn initial_backoff(mut self, d: Duration) -> RetryPolicy {
        self.initial = d;
        self
    }

    /// Caps every individual pause at `d`.
    pub fn max_backoff(mut self, d: Duration) -> RetryPolicy {
        self.max = d;
        self
    }

    /// Caps the *total* time slept across all retries. Once the
    /// cumulative schedule reaches the budget, `backoff_after` returns
    /// `None` even if attempts remain.
    pub fn budget(mut self, d: Duration) -> RetryPolicy {
        self.budget = d;
        self
    }

    /// Total number of attempts this policy allows.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The cap on any individual pause (see [`RetryPolicy::max_backoff`]).
    /// Callers honoring an external pacing hint — e.g. a server's
    /// `Retry-After` header — clamp the hint to this so a hostile or
    /// misconfigured peer cannot stretch the schedule past its bounds.
    pub fn max_pause(&self) -> Duration {
        self.max
    }

    /// The pause to take after failed attempt `attempt` (0-based), or
    /// `None` when the policy is exhausted (attempt cap or sleep budget
    /// reached) and the caller should surface the last error.
    ///
    /// The final pause is truncated so the cumulative sleep never
    /// exceeds [`RetryPolicy::budget`]; a truncation to zero means
    /// exhaustion, not a busy-loop.
    pub fn backoff_after(&self, attempt: u32) -> Option<Duration> {
        if attempt.checked_add(1)? >= self.attempts {
            return None;
        }
        let mut slept = Duration::ZERO;
        for k in 0..attempt {
            slept = slept.saturating_add(self.nominal(k));
        }
        let remaining = self.budget.checked_sub(slept)?;
        let pause = self.nominal(attempt).min(remaining);
        if pause.is_zero() && !self.nominal(attempt).is_zero() {
            return None; // budget exhausted
        }
        Some(pause)
    }

    /// Runs `op` under this policy: retried with the scheduled pauses
    /// (via `std::thread::sleep`) until it succeeds or the policy is
    /// exhausted, in which case the last error is returned. `op`
    /// receives the 0-based attempt number.
    pub fn run<T, E>(&self, mut op: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => match self.backoff_after(attempt) {
                    Some(pause) => {
                        std::thread::sleep(pause);
                        attempt += 1;
                    }
                    None => return Err(e),
                },
            }
        }
    }

    /// The uncapped-by-budget pause after attempt `k`: `initial * 2^k`,
    /// saturating, capped at `max_backoff`.
    fn nominal(&self, k: u32) -> Duration {
        let doubled = self
            .initial
            .checked_mul(1u32.checked_shl(k).unwrap_or(u32::MAX))
            .unwrap_or(self.max);
        doubled.min(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn doubles_and_caps() {
        let p = RetryPolicy::new(6)
            .initial_backoff(ms(10))
            .max_backoff(ms(35));
        assert_eq!(p.backoff_after(0), Some(ms(10)));
        assert_eq!(p.backoff_after(1), Some(ms(20)));
        assert_eq!(p.backoff_after(2), Some(ms(35)), "capped");
        assert_eq!(p.backoff_after(3), Some(ms(35)));
        assert_eq!(p.backoff_after(5), None, "last attempt has no retry");
    }

    #[test]
    fn budget_truncates_then_exhausts() {
        let p = RetryPolicy::new(10)
            .initial_backoff(ms(10))
            .max_backoff(ms(10))
            .budget(ms(25));
        assert_eq!(p.backoff_after(0), Some(ms(10)));
        assert_eq!(p.backoff_after(1), Some(ms(10)));
        assert_eq!(p.backoff_after(2), Some(ms(5)), "truncated to budget");
        assert_eq!(p.backoff_after(3), None, "budget spent");
    }

    #[test]
    fn once_never_retries() {
        assert_eq!(RetryPolicy::once().backoff_after(0), None);
    }

    #[test]
    fn max_pause_reports_the_per_pause_cap() {
        assert_eq!(
            RetryPolicy::new(2).max_backoff(ms(7)).max_pause(),
            ms(7),
            "clamp for external pacing hints like Retry-After"
        );
    }

    #[test]
    fn run_returns_last_error_after_exhaustion() {
        let p = RetryPolicy::new(3)
            .initial_backoff(ms(0))
            .max_backoff(ms(0));
        let mut calls = 0;
        let out: Result<(), String> = p.run(|attempt| {
            calls += 1;
            Err(format!("boom {attempt}"))
        });
        assert_eq!(out, Err("boom 2".to_string()));
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_stops_on_success() {
        let p = RetryPolicy::new(5)
            .initial_backoff(ms(0))
            .max_backoff(ms(0));
        let out: Result<u32, ()> =
            p.run(|attempt| if attempt == 2 { Ok(attempt) } else { Err(()) });
        assert_eq!(out, Ok(2));
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = RetryPolicy::new(0);
    }
}
