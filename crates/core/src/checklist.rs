//! A benchmark-protocol audit: the paper's recommendations as a lintable
//! checklist.
//!
//! The paper closes with concrete advice (Section 5) that later became
//! reporting norms: randomize every source of variation, use multiple
//! random splits instead of a fixed test set, pair comparisons, size the
//! experiment for the effect you claim, and decide with a variance-aware
//! criterion. [`audit`] checks a declared experimental protocol against
//! that advice and returns actionable findings.

use crate::sample_size::{noether_sample_size, RECOMMENDED_GAMMA};

/// Declarative description of a planned (or published) benchmark
/// comparison protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct Protocol {
    /// Number of runs per algorithm.
    pub runs_per_algorithm: usize,
    /// Whether the train/test split is re-randomized across runs.
    pub randomizes_splits: bool,
    /// Whether weight initialization varies across runs.
    pub randomizes_init: bool,
    /// Whether the remaining training stochasticity (data order,
    /// augmentation, dropout) varies across runs.
    pub randomizes_other_sources: bool,
    /// Whether hyperparameter optimization is rerun per algorithm (rather
    /// than reusing one tuning for all conclusions).
    pub tunes_each_algorithm: bool,
    /// Whether runs of the two algorithms are paired on shared seeds.
    pub paired: bool,
    /// The decision criterion used.
    pub criterion: Criterion,
}

/// The conclusion criterion a protocol uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// One run per algorithm, higher number wins.
    SinglePoint,
    /// Mean difference compared against an (implicit) threshold.
    AverageDifference,
    /// A significance test on the mean difference (t-test or similar).
    MeanTest,
    /// The paper's recommended `P(A > B) ≥ γ` test.
    ProbabilityOfOutperforming,
}

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Protocol will likely produce unreliable conclusions.
    Critical,
    /// Protocol loses power or inflates variance unnecessarily.
    Warning,
    /// Stylistic or minor improvement.
    Advice,
}

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How serious the issue is.
    pub severity: Severity,
    /// What is wrong and what to do, with the paper section it comes from.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = match self.severity {
            Severity::Critical => "CRITICAL",
            Severity::Warning => "WARNING",
            Severity::Advice => "advice",
        };
        write!(f, "[{tag}] {}", self.message)
    }
}

/// Audits a protocol against the paper's recommendations.
///
/// Returns findings ordered by severity (critical first). An empty result
/// means the protocol follows every recommendation.
///
/// # Example
///
/// ```
/// use varbench_core::checklist::{audit, Criterion, Protocol};
///
/// // The literature's default: a few seeds, fixed split, mean comparison.
/// let findings = audit(&Protocol {
///     runs_per_algorithm: 5,
///     randomizes_splits: false,
///     randomizes_init: true,
///     randomizes_other_sources: false,
///     tunes_each_algorithm: false,
///     paired: false,
///     criterion: Criterion::AverageDifference,
/// });
/// assert!(!findings.is_empty());
/// ```
pub fn audit(protocol: &Protocol) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |severity: Severity, message: String| {
        findings.push(Finding { severity, message });
    };

    if !protocol.randomizes_splits {
        push(
            Severity::Critical,
            "fixed train/test split: data sampling is the largest variance source \
             (Fig. 1); use multiple random splits, e.g. out-of-bootstrap (Sec. 5, App. B)"
                .into(),
        );
    }
    if !protocol.randomizes_init {
        push(
            Severity::Warning,
            "weight initialization held fixed: randomize it across runs (Sec. 5)".into(),
        );
    }
    if !protocol.randomizes_other_sources {
        push(
            Severity::Warning,
            "data order / augmentation / dropout seeds held fixed: randomizing them \
             decorrelates measures and improves the estimator at no cost (Sec. 3.3)"
                .into(),
        );
    }
    if !protocol.tunes_each_algorithm {
        push(
            Severity::Warning,
            "hyperparameters tuned once and reused: ignoring HOpt variance biases the \
             estimate (Sec. 3.2); at minimum report it as a caveat"
                .into(),
        );
    }
    if !protocol.paired && protocol.runs_per_algorithm > 1 {
        push(
            Severity::Advice,
            "runs not paired: sharing seeds between algorithms cancels common noise \
             and increases power (App. C.2)"
                .into(),
        );
    }

    match protocol.criterion {
        Criterion::SinglePoint => push(
            Severity::Critical,
            "single-point comparison: ~10% false positives and ~75% false negatives \
             (Fig. 6); use the P(A>B) test"
                .into(),
        ),
        Criterion::AverageDifference => push(
            Severity::Critical,
            "average comparison without a variance-based threshold: highly conservative \
             and threshold choice is arbitrary (Sec. 4.2); use the P(A>B) test"
                .into(),
        ),
        Criterion::MeanTest => push(
            Severity::Advice,
            "t-test on means controls errors but conflates significance with \
             meaningfulness; consider P(A>B) >= 0.75 (Sec. 4.1)"
                .into(),
        ),
        Criterion::ProbabilityOfOutperforming => {}
    }

    let needed = noether_sample_size(RECOMMENDED_GAMMA, 0.05, 0.05);
    if protocol.runs_per_algorithm < needed {
        push(
            Severity::Warning,
            format!(
                "{} runs per algorithm: below the {} needed to reliably detect \
                 P(A>B) > {} (App. C.3)",
                protocol.runs_per_algorithm, needed, RECOMMENDED_GAMMA
            ),
        );
    }

    findings.sort_by_key(|f| f.severity);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_protocol() -> Protocol {
        Protocol {
            runs_per_algorithm: 29,
            randomizes_splits: true,
            randomizes_init: true,
            randomizes_other_sources: true,
            tunes_each_algorithm: true,
            paired: true,
            criterion: Criterion::ProbabilityOfOutperforming,
        }
    }

    #[test]
    fn recommended_protocol_is_clean() {
        assert!(audit(&paper_protocol()).is_empty());
    }

    #[test]
    fn fixed_split_is_critical() {
        let p = Protocol {
            randomizes_splits: false,
            ..paper_protocol()
        };
        let findings = audit(&p);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Critical);
        assert!(findings[0].message.contains("out-of-bootstrap"));
    }

    #[test]
    fn literature_default_protocol_fails_hard() {
        let p = Protocol {
            runs_per_algorithm: 5,
            randomizes_splits: false,
            randomizes_init: true,
            randomizes_other_sources: false,
            tunes_each_algorithm: false,
            paired: false,
            criterion: Criterion::SinglePoint,
        };
        let findings = audit(&p);
        assert!(findings.len() >= 4, "{findings:?}");
        assert_eq!(findings[0].severity, Severity::Critical);
        // Ordered by severity.
        for w in findings.windows(2) {
            assert!(w[0].severity <= w[1].severity);
        }
    }

    #[test]
    fn sample_size_checked() {
        let p = Protocol {
            runs_per_algorithm: 10,
            ..paper_protocol()
        };
        let findings = audit(&p);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("29"));
    }

    #[test]
    fn t_test_gets_advice_only() {
        let p = Protocol {
            criterion: Criterion::MeanTest,
            ..paper_protocol()
        };
        let findings = audit(&p);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Advice);
    }

    #[test]
    fn display_includes_severity_tag() {
        let f = Finding {
            severity: Severity::Critical,
            message: "x".into(),
        };
        assert!(format!("{f}").starts_with("[CRITICAL]"));
    }
}
