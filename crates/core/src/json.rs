//! A minimal JSON value model and recursive-descent parser.
//!
//! The workspace is dependency-free, so the serve protocol parses its
//! request bodies with this module instead of serde. It is the *reading*
//! half only — writing stays with [`crate::report`]'s renderers
//! ([`crate::report::json_string`] and friends), which the protocol and
//! CLI already share.
//!
//! Scope: RFC 8259 minus two deliberate simplifications that cannot
//! affect the serve protocol's request grammar:
//!
//! * numbers are parsed as `f64` (the protocol's integers are small
//!   counts — seeds, budgets, ports — all exactly representable);
//! * `\uXXXX` escapes decode the Basic Multilingual Plane only; lone
//!   and paired surrogates are rejected rather than combined (workload
//!   names and source labels are ASCII).
//!
//! Objects preserve insertion order in a `Vec<(String, Json)>` — no hash
//! maps (varbench lint L001), and re-rendering is deterministic by
//! construction.

use std::fmt;

/// Maximum nesting depth [`Json::parse`] accepts; deeper documents are
/// a [`JsonError`], not a stack overflow. The serve protocol needs 2.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (see module docs: parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order. Duplicate keys are rejected at
    /// parse time, so lookup by first match is unambiguous.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer: `None` unless this
    /// is a number that is an exact unsigned integer (no fraction, no
    /// loss) — `3.5`, `-1` and `1e300` all return `None`.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= u64::MAX as f64 && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in document order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// A short name for this value's type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|e| JsonError {
                message: format!("object key: {}", e.message),
                offset: e.offset,
            })?;
            if fields.iter().any(|(k, _)| *k == key) {
                // A duplicate key means two contradictory settings in one
                // request; silently keeping either one would be a trap.
                return Err(self.err(format!("duplicate object key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest run of plain bytes in one slice.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // Always a char boundary: '"' and '\\' are ASCII and UTF-8
            // continuation bytes are >= 0x80.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is str"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hex = self
                    .bytes
                    .get(self.pos..self.pos + 4)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                    .ok_or_else(|| self.err("malformed \\u escape"))?;
                self.pos += 4;
                char::from_u32(hex).ok_or_else(|| self.err("surrogate \\u escape (unsupported)"))?
            }
            other => return Err(self.err(format!("unknown escape '\\{}'", other as char))),
        })
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Delegating validation entirely to f64::from_str would accept
        // non-JSON spellings ("inf", "1.", ".5"); check the grammar first.
        if !valid_number(text) {
            return Err(JsonError {
                message: format!("malformed number \"{text}\""),
                offset: start,
            });
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("unparseable number \"{text}\"")))
    }
}

/// JSON number grammar: `-? int frac? exp?` with no leading zeros.
fn valid_number(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s);
    let (int, rest) = match s.find(['.', 'e', 'E']) {
        Some(i) => s.split_at(i),
        None => (s, ""),
    };
    let int_ok = !int.is_empty()
        && int.bytes().all(|b| b.is_ascii_digit())
        && (int == "0" || !int.starts_with('0'));
    let frac_exp_ok = match rest.strip_prefix('.') {
        Some(after) => {
            let (frac, exp) = match after.find(['e', 'E']) {
                Some(i) => after.split_at(i),
                None => (after, ""),
            };
            !frac.is_empty() && frac.bytes().all(|b| b.is_ascii_digit()) && valid_exp(exp)
        }
        None => valid_exp(rest),
    };
    int_ok && frac_exp_ok
}

fn valid_exp(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    let digits = s
        .strip_prefix(['e', 'E'])
        .map(|d| d.strip_prefix(['+', '-']).unwrap_or(d));
    digits.is_some_and(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-0.5e2").unwrap(), Json::Num(-50.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn structures_and_accessors() {
        let doc = Json::parse(
            r#"{"workload": "synthetic-ridge", "seeds": 10, "gamma": 0.75,
                "sources": ["data_split", "weights_init"], "deep": {"a": null}}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("workload").unwrap().as_str(),
            Some("synthetic-ridge")
        );
        assert_eq!(doc.get("seeds").unwrap().as_u64(), Some(10));
        assert_eq!(doc.get("gamma").unwrap().as_f64(), Some(0.75));
        assert_eq!(doc.get("sources").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("deep").unwrap().get("a"), Some(&Json::Null));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.as_object().unwrap().len(), 5);
        assert_eq!(doc.type_name(), "object");
        // Accessors are type-checked, not coercing.
        assert_eq!(doc.get("seeds").unwrap().as_str(), None);
        assert_eq!(doc.get("workload").unwrap().as_f64(), None);
    }

    #[test]
    fn as_u64_requires_exact_unsigned_integers() {
        assert_eq!(Json::parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(Json::parse("3.0").unwrap().as_u64(), Some(3));
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn string_escapes() {
        let s = Json::parse(r#""a\"b\\c\n\tAé""#).unwrap();
        assert_eq!(s.as_str(), Some("a\"b\\c\n\tA\u{e9}"));
        assert!(Json::parse(r#""\ud800""#).is_err(), "lone surrogate");
        assert!(Json::parse(r#""\q""#).is_err(), "unknown escape");
        assert!(Json::parse("\"a\nb\"").is_err(), "raw control char");
    }

    #[test]
    fn unicode_passthrough() {
        let s = Json::parse("\"ξ_O and γ\"").unwrap();
        assert_eq!(s.as_str(), Some("ξ_O and γ"));
    }

    #[test]
    fn round_trips_report_json() {
        // The parser must read what report.rs writes — the serve client
        // round-trips envelopes through exactly this pair.
        let mut r = crate::report::Report::new("figx", "Figure X");
        r.text("header ξ\n");
        let mut t = crate::report::Table::new(vec!["source".into(), "std".into()]);
        t.add_row(vec!["weights \"init\"".into(), "0.0012".into()]);
        r.table(t);
        let doc = Json::parse(&r.to_json()).unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("figx"));
        let blocks = doc.get("blocks").unwrap().as_array().unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].get("text").unwrap().as_str(), Some("header ξ\n"));
        assert_eq!(
            blocks[1].get("rows").unwrap().as_array().unwrap()[0]
                .as_array()
                .unwrap()[0]
                .as_str(),
            Some("weights \"init\"")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "tru",
            "nul",
            "01",
            "1.",
            ".5",
            "+1",
            "1e",
            "--1",
            "\"unterminated",
            "{} extra",
            "{\"a\":1,}",
            "[1,]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = Json::parse(r#"{"seeds": 3, "seeds": 4}"#).unwrap_err();
        assert!(err.message.contains("duplicate object key"), "{err}");
    }

    #[test]
    fn depth_limit_is_an_error_not_an_overflow() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting deeper"), "{err}");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("at byte 4"));
    }
}
