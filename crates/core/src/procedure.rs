//! The complete recommended testing procedure of the paper's Appendix C,
//! as a single high-level API.
//!
//! [`ComparisonProcedure`] walks a user through the whole workflow:
//!
//! 1. **plan** the sample size with Noether's formula (C.3);
//! 2. **randomize** every variance source and **pair** the runs (C.1–C.2);
//! 3. **estimate** `P(A > B)` (C.4) with a percentile-bootstrap CI (C.5);
//! 4. **decide** with the three-zone criterion (C.6).

use crate::compare::{compare_paired_with, Decision, ProbOutperformTest};
use crate::ctx::RunContext;
use crate::sample_size::{
    noether_sample_size, RECOMMENDED_ALPHA, RECOMMENDED_BETA, RECOMMENDED_GAMMA,
};
use varbench_pipeline::{SeedAssignment, Workload};
use varbench_rng::Rng;
use varbench_stats::describe::Summary;

/// Builder for a paired, variance-accounting comparison of two
/// hyperparameter configurations of any [`Workload`].
///
/// # Example
///
/// ```
/// use varbench_core::procedure::ComparisonProcedure;
/// use varbench_pipeline::{CaseStudy, Scale};
///
/// let cs = CaseStudy::mhc_mlp(Scale::Test);
/// let a = vec![24.0, 1e-3];
/// let b = vec![4.0, 0.5]; // small net, crushing L2
/// let report = ComparisonProcedure::new(&cs)
///     .sample_size(8) // default: Noether-planned 29
///     .seed(7)
///     .run(&a, &b);
/// println!("{report}");
/// assert_eq!(report.a_measures.len(), 8);
/// ```
#[derive(Clone)]
pub struct ComparisonProcedure<'a> {
    workload: &'a dyn Workload,
    gamma: f64,
    alpha: f64,
    resamples: usize,
    sample_size: usize,
    seed: u64,
}

impl std::fmt::Debug for ComparisonProcedure<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComparisonProcedure")
            .field("workload", &self.workload.name())
            .field("gamma", &self.gamma)
            .field("alpha", &self.alpha)
            .field("resamples", &self.resamples)
            .field("sample_size", &self.sample_size)
            .field("seed", &self.seed)
            .finish()
    }
}

impl<'a> ComparisonProcedure<'a> {
    /// Starts a procedure on `workload` with the paper's recommended
    /// settings: γ = 0.75, α = 0.05, Noether-planned sample size (29).
    pub fn new(workload: &'a dyn Workload) -> Self {
        Self {
            workload,
            gamma: RECOMMENDED_GAMMA,
            alpha: RECOMMENDED_ALPHA,
            resamples: 1000,
            sample_size: noether_sample_size(
                RECOMMENDED_GAMMA,
                RECOMMENDED_ALPHA,
                RECOMMENDED_BETA,
            ),
            seed: 0,
        }
    }

    /// Sets the meaningfulness threshold γ and re-plans the sample size.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not in `(0.5, 1)`.
    pub fn gamma(mut self, gamma: f64) -> Self {
        assert!(gamma > 0.5 && gamma < 1.0, "gamma must be in (0.5, 1)");
        self.gamma = gamma;
        self.sample_size = noether_sample_size(gamma, self.alpha, RECOMMENDED_BETA);
        self
    }

    /// Overrides the number of paired runs (e.g. to reuse a smaller
    /// compute budget; the decision quality degrades accordingly).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least 2 paired runs");
        self.sample_size = n;
        self
    }

    /// Sets the bootstrap resample count.
    ///
    /// # Panics
    ///
    /// Panics if `resamples == 0`.
    pub fn resamples(mut self, resamples: usize) -> Self {
        assert!(resamples > 0, "resamples must be > 0");
        self.resamples = resamples;
        self
    }

    /// Sets the experiment seed (everything downstream derives from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the procedure: `sample_size` paired trainings of each
    /// configuration with every variance source randomized, then the
    /// `P(A>B)` test.
    ///
    /// # Panics
    ///
    /// Panics if parameter vectors do not match the workload's search
    /// space.
    pub fn run(&self, params_a: &[f64], params_b: &[f64]) -> ProcedureReport {
        self.run_with(params_a, params_b, &RunContext::serial())
    }

    /// [`ComparisonProcedure::run`] under an execution context: the
    /// `sample_size` paired trainings fan out across the context's cores
    /// (each pair is its own seed branch, so results are bit-identical
    /// to the serial loop for any thread count), and the bootstrap
    /// follows the context's [`crate::ctx::BootstrapMode`] — under the
    /// split mode the resample loop parallelizes too, the procedure's
    /// other multi-core axis.
    ///
    /// # Panics
    ///
    /// As [`ComparisonProcedure::run`].
    pub fn run_with(
        &self,
        params_a: &[f64],
        params_b: &[f64],
        ctx: &RunContext,
    ) -> ProcedureReport {
        // Pairing: identical seed assignment for both configurations
        // (Appendix C.2).
        let seeds: Vec<SeedAssignment> = (0..self.sample_size)
            .map(|i| SeedAssignment::all_random(self.seed, i as u64))
            .collect();
        let pairs = ctx.runner().map_seeds(&seeds, |_, s| {
            (
                self.workload.run_with_params(params_a, s),
                self.workload.run_with_params(params_b, s),
            )
        });
        let (a, b): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let mut rng = Rng::seed_from_u64(self.seed ^ 0xB007);
        let test = compare_paired_with(
            &a,
            &b,
            self.gamma,
            self.alpha,
            self.resamples,
            &mut rng,
            ctx,
        );
        ProcedureReport {
            task: self.workload.name().to_string(),
            metric: self.workload.metric_name().to_string(),
            a_summary: Summary::from_slice(&a),
            b_summary: Summary::from_slice(&b),
            test,
            a_measures: a,
            b_measures: b,
        }
    }
}

/// The output of a [`ComparisonProcedure`].
#[derive(Debug, Clone)]
pub struct ProcedureReport {
    /// Case-study name.
    pub task: String,
    /// Metric name.
    pub metric: String,
    /// Summary of A's measures.
    pub a_summary: Summary,
    /// Summary of B's measures.
    pub b_summary: Summary,
    /// The statistical test and decision.
    pub test: ProbOutperformTest,
    /// Raw paired measures of A.
    pub a_measures: Vec<f64>,
    /// Raw paired measures of B.
    pub b_measures: Vec<f64>,
}

impl ProcedureReport {
    /// Whether A should be adopted over B.
    pub fn adopt_a(&self) -> bool {
        self.test.decision == Decision::SignificantAndMeaningful
    }
}

impl std::fmt::Display for ProcedureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "comparison on {} ({} runs, metric: {})",
            self.task,
            self.a_measures.len(),
            self.metric
        )?;
        writeln!(f, "  A: {}", self.a_summary)?;
        writeln!(f, "  B: {}", self.b_summary)?;
        writeln!(f, "  {}", self.test)?;
        write!(
            f,
            "  conclusion: {}",
            if self.adopt_a() {
                "adopt A"
            } else {
                "insufficient evidence for A"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_pipeline::{CaseStudy, Scale};

    #[test]
    fn detects_crippled_baseline() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let a = cs.default_params().to_vec();
        let mut b = a.clone();
        b[0] = 0.001; // tiny learning rate
        let report = ComparisonProcedure::new(&cs)
            .sample_size(12)
            .resamples(300)
            .seed(3)
            .run(&a, &b);
        assert!(report.a_summary.mean > report.b_summary.mean);
        assert!(report.test.p_a_gt_b > 0.6, "{report}");
    }

    #[test]
    fn self_comparison_is_not_adopted() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let a = cs.default_params().to_vec();
        let report = ComparisonProcedure::new(&cs)
            .sample_size(8)
            .resamples(300)
            .seed(4)
            .run(&a, &a);
        // Identical configs with identical paired seeds → identical
        // measures → P(A>B) = 0 (ties are not wins) → not significant.
        assert!(!report.adopt_a(), "{report}");
        assert_eq!(report.test.decision, Decision::NotSignificant);
    }

    #[test]
    fn default_plan_is_noether_29() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let proc = ComparisonProcedure::new(&cs);
        assert_eq!(proc.sample_size, 29);
        let strict = ComparisonProcedure::new(&cs).gamma(0.9);
        assert!(strict.sample_size < 29, "larger effects need fewer runs");
    }

    #[test]
    fn display_is_informative() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let a = cs.default_params().to_vec();
        let report = ComparisonProcedure::new(&cs)
            .sample_size(4)
            .resamples(100)
            .seed(5)
            .run(&a, &a);
        let s = format!("{report}");
        assert!(s.contains("mhc-mlp"));
        assert!(s.contains("conclusion"));
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0.5, 1)")]
    fn invalid_gamma_rejected() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let _ = ComparisonProcedure::new(&cs).gamma(0.5);
    }
}
