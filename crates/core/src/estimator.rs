//! Estimators of expected pipeline performance: the paper's Algorithms 1
//! and 2, and the per-source variance study of Fig. 1 — generic over any
//! [`Workload`].
//!
//! Every estimator is a single function taking a [`RunContext`]: the
//! context's runner fans the independent seed branches across cores and
//! its cache memoizes the resulting score matrices. With the default
//! serial context ([`RunContext::serial`]) each function computes exactly
//! what the old plain serial path computed; scheduling and caching are
//! bit-invisible.

use crate::ctx::RunContext;
use varbench_pipeline::{
    hopt, run_pipeline, HpoAlgorithm, MeasureKind, SeedAssignment, VarianceSource, Workload,
};

/// Which subset of ξ_O a [`fix_hopt_estimator`] run randomizes between
/// samples (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Randomize {
    /// Only the weight initialization — "the predominant approach used in
    /// the literature today".
    Init,
    /// Only the data split (bootstrap).
    Data,
    /// Every ξ_O source (split, order, augmentation, init, dropout,
    /// numerical noise) — everything except HOpt.
    All,
}

impl Randomize {
    /// The sources this subset varies.
    pub fn sources(&self) -> &'static [VarianceSource] {
        match self {
            Randomize::Init => &[VarianceSource::WeightsInit],
            Randomize::Data => &[VarianceSource::DataSplit],
            Randomize::All => &VarianceSource::XI_O,
        }
    }

    /// Display name matching the paper's Fig. 5 legend.
    pub fn display_name(&self) -> &'static str {
        match self {
            Randomize::Init => "FixHOptEst(k, Init)",
            Randomize::Data => "FixHOptEst(k, Data)",
            Randomize::All => "FixHOptEst(k, All)",
        }
    }
}

/// The output of one estimator run: `k` performance measures and the
/// training cost it took to produce them.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorRun {
    /// The k performance measures `R̂_e` (metric scale, higher better).
    pub measures: Vec<f64>,
    /// Total number of model fits consumed — `O(kT)` for the ideal
    /// estimator, `O(k+T)` for the biased one (the paper's 51× cost gap).
    pub fits: usize,
}

impl EstimatorRun {
    /// Mean of the measures — µ̂(k) or µ̃(k).
    ///
    /// # Panics
    ///
    /// Panics if the run is empty.
    pub fn mean(&self) -> f64 {
        varbench_stats::describe::mean(&self.measures)
    }

    /// Sample standard deviation of the measures.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 measures.
    pub fn std(&self) -> f64 {
        varbench_stats::describe::std_dev(&self.measures)
    }
}

/// Algorithm 1, `IdealEst`: every sample randomizes *all* sources (ξ_O and
/// ξ_H) and pays for an independent hyperparameter optimization.
///
/// Cost: `k × (budget + 1)` fits. The `k` samples are independent seed
/// branches (`SeedAssignment::all_random(base_seed, i)`), fanned out on
/// the context's runner; the cached matrix holds two columns per sample —
/// `(test metric, fits)` — so both the measures and the cost accounting
/// replay exactly.
///
/// # Panics
///
/// Panics if `k == 0` or `budget == 0`.
pub fn ideal_estimator(
    w: &dyn Workload,
    k: usize,
    algo: HpoAlgorithm,
    budget: usize,
    base_seed: u64,
    ctx: &RunContext,
) -> EstimatorRun {
    assert!(k > 0, "k must be > 0");
    let key = ctx.measure_key(
        w,
        MeasureKind::IdealEstimator {
            algo: algo.display_name(),
            budget,
        },
        base_seed,
    );
    let flat = ctx.cache().matrix(&key, k, 2, |range| {
        let seeds: Vec<SeedAssignment> = range
            .map(|i| SeedAssignment::all_random(base_seed, i as u64))
            .collect();
        let results = ctx.runner().map_seeds(&seeds, |_, s| {
            let result = run_pipeline(w, s, algo, budget);
            (result.test_metric, result.fits)
        });
        results
            .into_iter()
            .flat_map(|(m, f)| [m, f as f64])
            .collect()
    });
    let measures = flat.iter().step_by(2).copied().collect();
    let fits = flat.iter().skip(1).step_by(2).map(|&f| f as usize).sum();
    EstimatorRun { measures, fits }
}

/// Algorithm 2, `FixHOptEst`: run hyperparameter optimization *once*, then
/// reuse λ̂* while randomizing the chosen ξ_O subset for each of the `k`
/// measures.
///
/// Cost: `budget + k` fits. Biased for `k > 1` (Eq. 8), but the paper shows
/// `FixHOptEst(k, All)` approaches the ideal estimator at a fraction of the
/// cost.
///
/// `repetition` selects the arbitrary fixed ξ (the paper runs 20
/// repetitions to measure `Var(µ̃(k) | ξ)`).
///
/// Two cache entries cooperate: the single HPO procedure is a *record*
/// addressed by the exact seed assignment it tunes under (see
/// [`hopt_record`]), and the `k` conditioned measures are a
/// prefix-extendable matrix keyed by `(algo, budget, repetition,
/// randomized subset)`.
///
/// # Panics
///
/// Panics if `k == 0` or `budget == 0`.
#[allow(clippy::too_many_arguments)]
pub fn fix_hopt_estimator(
    w: &dyn Workload,
    k: usize,
    algo: HpoAlgorithm,
    budget: usize,
    base_seed: u64,
    repetition: u64,
    randomize: Randomize,
    ctx: &RunContext,
) -> EstimatorRun {
    assert!(k > 0, "k must be > 0");
    let fixed = SeedAssignment::all_random(base_seed ^ 0xF1F0, repetition);
    let (best_params, hopt_fits) = hopt_record(w, &fixed, algo, budget, ctx);
    let key = ctx.measure_key(
        w,
        MeasureKind::FixHOptMeasures {
            algo: algo.display_name(),
            budget,
            repetition,
            randomize: randomize.display_name(),
        },
        base_seed,
    );
    let measures = ctx.cache().matrix(&key, k, 1, |range| {
        let seeds: Vec<SeedAssignment> = range
            .map(|i| {
                let variation = splitmix_like(base_seed, repetition, i as u64);
                fixed.with_varied_set(randomize.sources(), variation)
            })
            .collect();
        ctx.runner()
            .map_seeds(&seeds, |_, s| w.run_with_params(&best_params, s))
    });
    EstimatorRun {
        measures,
        fits: hopt_fits + k,
    }
}

/// One hyperparameter-optimization outcome through the context's cache:
/// returns `(best parameters, fits consumed)`, content-addressed by the
/// full seed assignment so any artifact tuning under the same seeds —
/// a biased-estimator repetition, the Table 8 tuned model — shares it.
///
/// # Panics
///
/// Panics if `budget == 0`.
pub fn hopt_record(
    w: &dyn Workload,
    fixed: &SeedAssignment,
    algo: HpoAlgorithm,
    budget: usize,
    ctx: &RunContext,
) -> (Vec<f64>, usize) {
    // Array map keeps the length tied to VarianceSource::ALL: adding an
    // 8th source fails to compile here instead of silently truncating
    // the key (which would alias distinct seed assignments).
    let seeds: [u64; 7] = VarianceSource::ALL.map(|source| fixed.seed_of(source));
    let key = ctx.measure_key(
        w,
        MeasureKind::HoptResult {
            algo: algo.display_name(),
            budget,
            seeds,
        },
        0,
    );
    ctx.cache().record(&key, || {
        let (best, history) = hopt(w, fixed, algo, budget);
        (best, history.len())
    })
}

/// Derives a per-(repetition, sample) variation value.
fn splitmix_like(base: u64, rep: u64, i: u64) -> u64 {
    let mut z = base
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(rep.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(i.wrapping_add(1).wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Measures the variance contributed by a single source (the Fig. 1
/// protocol): all other seeds held fixed, `n` trainings with `source`
/// re-seeded each time.
///
/// For ξ_O sources each training reuses the workload's default
/// hyperparameters; for [`VarianceSource::HyperOpt`] each sample runs an
/// independent HPO procedure with `algo`/`budget` and measures the test
/// performance of the tuned pipeline.
///
/// Cache key: `(workload, source, base_seed)` for ξ_O sources — the HPO
/// algorithm and budget cannot affect default-hyperparameter trainings
/// and are excluded so e.g. Fig. 1 and Fig. 2 share entries — plus
/// `(algo, budget)` for [`VarianceSource::HyperOpt`] studies.
///
/// # Panics
///
/// Panics if `n == 0`, or `budget == 0` when `source` is `HyperOpt`.
pub fn source_variance_study(
    w: &dyn Workload,
    source: VarianceSource,
    n: usize,
    algo: HpoAlgorithm,
    budget: usize,
    base_seed: u64,
    ctx: &RunContext,
) -> Vec<f64> {
    assert!(n > 0, "n must be > 0");
    let kind = if source.is_hyperopt() {
        MeasureKind::HyperOptStudy {
            algo: algo.display_name(),
            budget,
        }
    } else {
        MeasureKind::SourceStudy { source }
    };
    let key = ctx.measure_key(w, kind, base_seed);
    let fixed = SeedAssignment::all_fixed(base_seed);
    let params = w.default_params().to_vec();
    ctx.cache().matrix(&key, n, 1, |range| {
        let seeds: Vec<SeedAssignment> = range
            .map(|i| fixed.with_varied(source, splitmix_like(base_seed, 0xA11, i as u64)))
            .collect();
        ctx.runner().map_seeds(&seeds, |_, s| {
            if source.is_hyperopt() {
                run_pipeline(w, s, algo, budget).test_metric
            } else {
                w.run_with_params(&params, s)
            }
        })
    })
}

/// Measures the variance when a *set* of sources is randomized jointly
/// (all other seeds fixed), with default hyperparameters.
///
/// The paper cautions that "these different contributions to the variance
/// are not independent, the total variance cannot be obtained by simply
/// adding them up"; comparing [`source_variance_study`] sums against this
/// joint measurement quantifies the interaction (see the `interactions`
/// artifact).
///
/// The cache key's source set is normalized to the workload's active
/// sources, so studies over `ξ_O` and over the active subset share one
/// entry (their measures are bit-identical — inactive seeds never
/// matter).
///
/// # Panics
///
/// Panics if `n == 0`, `sources` is empty, or `sources` contains
/// [`VarianceSource::HyperOpt`].
pub fn joint_variance_study(
    w: &dyn Workload,
    sources: &[VarianceSource],
    n: usize,
    base_seed: u64,
    ctx: &RunContext,
) -> Vec<f64> {
    assert!(n > 0, "n must be > 0");
    assert!(!sources.is_empty(), "need at least one source");
    assert!(
        sources.iter().all(|s| !s.is_hyperopt()),
        "joint study covers xi_O sources; HyperOpt requires budget accounting"
    );
    let key = ctx.measure_key(
        w,
        MeasureKind::JointStudy {
            sources: sources.to_vec(),
        },
        base_seed,
    );
    let fixed = SeedAssignment::all_fixed(base_seed);
    let params = w.default_params().to_vec();
    let sources = sources.to_vec();
    ctx.cache().matrix(&key, n, 1, |range| {
        let seeds: Vec<SeedAssignment> = range
            .map(|i| fixed.with_varied_set(&sources, splitmix_like(base_seed, 0x70F, i as u64)))
            .collect();
        ctx.runner()
            .map_seeds(&seeds, |_, s| w.run_with_params(&params, s))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Runner;
    use varbench_pipeline::{CaseStudy, MeasureCache, Scale};
    use varbench_stats::describe::std_dev;

    fn cs() -> CaseStudy {
        CaseStudy::glue_rte_bert(Scale::Test)
    }

    fn ctx() -> RunContext {
        RunContext::serial()
    }

    #[test]
    fn ideal_estimator_cost_accounting() {
        let run = ideal_estimator(&cs(), 3, HpoAlgorithm::RandomSearch, 4, 1, &ctx());
        assert_eq!(run.measures.len(), 3);
        assert_eq!(run.fits, 3 * 5, "k(T+1) fits");
        assert!(run.measures.iter().all(|&m| m > 0.0 && m <= 1.0));
    }

    #[test]
    fn biased_estimator_cost_accounting() {
        let run = fix_hopt_estimator(
            &cs(),
            6,
            HpoAlgorithm::RandomSearch,
            4,
            1,
            0,
            Randomize::All,
            &ctx(),
        );
        assert_eq!(run.measures.len(), 6);
        assert_eq!(run.fits, 4 + 6, "T+k fits");
    }

    #[test]
    fn cost_ratio_matches_paper_claim_shape() {
        // With k = 100, T = 200 the paper reports 1070 h vs 21 h ≈ 51×.
        // Our accounting: ideal = k(T+1), biased = T+k → 20100/300 = 67x
        // in fit counts (the paper's 51× also amortizes evaluation time).
        let k = 100;
        let t = 200;
        let ideal = k * (t + 1);
        let biased = t + k;
        let ratio = ideal as f64 / biased as f64;
        assert!(ratio > 50.0, "cost ratio {ratio}");
    }

    #[test]
    fn ideal_measures_fluctuate() {
        let run = ideal_estimator(&cs(), 4, HpoAlgorithm::RandomSearch, 3, 2, &ctx());
        assert!(std_dev(&run.measures) > 0.0, "ideal estimator must vary");
    }

    #[test]
    fn fix_hopt_variants_randomize_expected_sources() {
        // Init-only randomization keeps the split fixed → all measures
        // share the same test set; Data randomization changes it.
        let run_init = fix_hopt_estimator(
            &cs(),
            4,
            HpoAlgorithm::RandomSearch,
            3,
            3,
            0,
            Randomize::Init,
            &ctx(),
        );
        let run_data = fix_hopt_estimator(
            &cs(),
            4,
            HpoAlgorithm::RandomSearch,
            3,
            3,
            0,
            Randomize::Data,
            &ctx(),
        );
        // Both yield valid measures; Data variant should fluctuate at least
        // as much (bootstrap is the dominant source, paper Fig. 1).
        let s_init = std_dev(&run_init.measures);
        let s_data = std_dev(&run_data.measures);
        assert!(s_init >= 0.0 && s_data >= 0.0);
        assert!(run_init.measures.len() == 4 && run_data.measures.len() == 4);
    }

    #[test]
    fn estimators_deterministic_given_seed() {
        let a = fix_hopt_estimator(
            &cs(),
            3,
            HpoAlgorithm::RandomSearch,
            3,
            7,
            1,
            Randomize::All,
            &ctx(),
        );
        let b = fix_hopt_estimator(
            &cs(),
            3,
            HpoAlgorithm::RandomSearch,
            3,
            7,
            1,
            Randomize::All,
            &ctx(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn repetitions_differ() {
        let a = fix_hopt_estimator(
            &cs(),
            3,
            HpoAlgorithm::RandomSearch,
            3,
            7,
            0,
            Randomize::All,
            &ctx(),
        );
        let b = fix_hopt_estimator(
            &cs(),
            3,
            HpoAlgorithm::RandomSearch,
            3,
            7,
            1,
            Randomize::All,
            &ctx(),
        );
        assert_ne!(a.measures, b.measures);
    }

    #[test]
    fn source_study_inactive_source_zero_variance() {
        // RTE has no augmentation: varying it must produce zero variance.
        let measures = source_variance_study(
            &cs(),
            VarianceSource::DataAugment,
            4,
            HpoAlgorithm::RandomSearch,
            2,
            5,
            &ctx(),
        );
        assert_eq!(std_dev(&measures), 0.0);
    }

    #[test]
    fn source_study_active_source_nonzero_variance() {
        let measures = source_variance_study(
            &cs(),
            VarianceSource::DataSplit,
            5,
            HpoAlgorithm::RandomSearch,
            2,
            5,
            &ctx(),
        );
        assert!(std_dev(&measures) > 0.0);
    }

    #[test]
    fn source_study_hyperopt_runs_hpo() {
        let measures = source_variance_study(
            &cs(),
            VarianceSource::HyperOpt,
            3,
            HpoAlgorithm::RandomSearch,
            3,
            6,
            &ctx(),
        );
        assert_eq!(measures.len(), 3);
        assert!(measures.iter().all(|&m| m > 0.0 && m <= 1.0));
    }

    #[test]
    fn joint_study_produces_valid_measures() {
        let measures = joint_variance_study(
            &cs(),
            &[VarianceSource::WeightsInit, VarianceSource::DataOrder],
            5,
            9,
            &ctx(),
        );
        assert_eq!(measures.len(), 5);
        assert!(measures.iter().all(|&m| (0.0..=1.0).contains(&m)));
        assert!(std_dev(&measures) > 0.0);
    }

    #[test]
    #[should_panic(expected = "joint study covers xi_O sources")]
    fn joint_study_rejects_hyperopt() {
        joint_variance_study(&cs(), &[VarianceSource::HyperOpt], 2, 1, &ctx());
    }

    #[test]
    fn parallel_estimators_bit_identical_to_serial() {
        let cs = cs();
        let serial = ctx();
        let parallel = RunContext::new(Runner::new(4), MeasureCache::disabled());
        assert_eq!(
            ideal_estimator(&cs, 4, HpoAlgorithm::RandomSearch, 3, 11, &serial),
            ideal_estimator(&cs, 4, HpoAlgorithm::RandomSearch, 3, 11, &parallel),
        );
        assert_eq!(
            fix_hopt_estimator(
                &cs,
                5,
                HpoAlgorithm::RandomSearch,
                3,
                11,
                2,
                Randomize::All,
                &serial
            ),
            fix_hopt_estimator(
                &cs,
                5,
                HpoAlgorithm::RandomSearch,
                3,
                11,
                2,
                Randomize::All,
                &parallel
            ),
        );
        assert_eq!(
            source_variance_study(
                &cs,
                VarianceSource::DataSplit,
                6,
                HpoAlgorithm::RandomSearch,
                2,
                5,
                &serial
            ),
            source_variance_study(
                &cs,
                VarianceSource::DataSplit,
                6,
                HpoAlgorithm::RandomSearch,
                2,
                5,
                &parallel
            ),
        );
    }

    #[test]
    fn cached_context_bit_identical_to_uncached() {
        let cs = cs();
        let uncached = ctx();
        let cached = RunContext::serial_cached();
        let algo = HpoAlgorithm::RandomSearch;

        let a = source_variance_study(&cs, VarianceSource::DataSplit, 5, algo, 2, 3, &uncached);
        let b = source_variance_study(&cs, VarianceSource::DataSplit, 5, algo, 2, 3, &cached);
        assert_eq!(a, b);

        let a = joint_variance_study(&cs, &VarianceSource::XI_O, 4, 3, &uncached);
        let b = joint_variance_study(&cs, &VarianceSource::XI_O, 4, 3, &cached);
        assert_eq!(a, b);

        let a = ideal_estimator(&cs, 3, algo, 3, 5, &uncached);
        let b = ideal_estimator(&cs, 3, algo, 3, 5, &cached);
        assert_eq!(a, b, "measures and fits must replay exactly");

        let a = fix_hopt_estimator(&cs, 4, algo, 3, 5, 1, Randomize::All, &uncached);
        let b = fix_hopt_estimator(&cs, 4, algo, 3, 5, 1, Randomize::All, &cached);
        assert_eq!(a, b);
    }

    #[test]
    fn cached_prefix_extension_matches_direct_computation() {
        // Ask for 3, then 6: the second call computes only rows 3..6 but
        // must return exactly what a direct 6-measure study returns.
        let cs = cs();
        let cached = RunContext::serial_cached();
        let algo = HpoAlgorithm::RandomSearch;
        let short = source_variance_study(&cs, VarianceSource::WeightsInit, 3, algo, 1, 7, &cached);
        let long = source_variance_study(&cs, VarianceSource::WeightsInit, 6, algo, 1, 7, &cached);
        assert_eq!(short, long[..3].to_vec());
        let direct = source_variance_study(&cs, VarianceSource::WeightsInit, 6, algo, 1, 7, &ctx());
        assert_eq!(long, direct);
        let stats = cached.cache().stats();
        assert_eq!(stats.rows_computed, 6, "no row computed twice");
        assert_eq!(stats.extensions, 1);
    }

    #[test]
    fn hopt_record_shared_across_callers() {
        let cs = cs();
        let cached = RunContext::serial_cached();
        // A biased-estimator run tunes under repetition 0's fixed seeds...
        let _ = fix_hopt_estimator(
            &cs,
            3,
            HpoAlgorithm::RandomSearch,
            3,
            9,
            0,
            Randomize::All,
            &cached,
        );
        let fits_after_first = cached.cache().stats().record_fits_computed;
        assert_eq!(fits_after_first, 3, "one HPO procedure of 3 trials");
        // ...and a direct hopt_record under the same seeds is free.
        let fixed = SeedAssignment::all_random(9 ^ 0xF1F0, 0);
        let (best, fits) = hopt_record(&cs, &fixed, HpoAlgorithm::RandomSearch, 3, &cached);
        assert_eq!(fits, 3);
        assert_eq!(best.len(), cs.search_space().len());
        assert_eq!(
            cached.cache().stats().record_fits_computed,
            fits_after_first
        );
        assert_eq!(cached.cache().stats().records_served, 1);
    }

    #[test]
    fn estimators_accept_non_mlp_workloads() {
        // The point of the trait: the same estimator stack runs a
        // closed-form workload end to end.
        let w = varbench_pipeline::SyntheticWorkload::new(Scale::Test);
        let run = ideal_estimator(&w, 3, HpoAlgorithm::RandomSearch, 2, 4, &ctx());
        assert_eq!(run.measures.len(), 3);
        assert!(run.measures.iter().all(|&m| m > 0.0 && m <= 1.0));
        let study = source_variance_study(
            &w,
            VarianceSource::DataSplit,
            5,
            HpoAlgorithm::RandomSearch,
            1,
            4,
            &ctx(),
        );
        assert!(std_dev(&study) > 0.0, "split variance must be live");
        let inert = source_variance_study(
            &w,
            VarianceSource::WeightsInit,
            4,
            HpoAlgorithm::RandomSearch,
            1,
            4,
            &ctx(),
        );
        assert_eq!(std_dev(&inert), 0.0, "closed-form fit has no init noise");
    }

    #[test]
    fn randomize_sources_mapping() {
        assert_eq!(Randomize::Init.sources(), &[VarianceSource::WeightsInit]);
        assert_eq!(Randomize::All.sources().len(), 6);
        assert_eq!(Randomize::Data.display_name(), "FixHOptEst(k, Data)");
    }
}
