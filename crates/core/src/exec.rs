//! Deterministic parallel execution of embarrassingly parallel seed maps.
//!
//! The paper's core loop — k × T pipeline fits per estimator sample
//! (Algorithms 1 and 2), repeated over 5 case studies, 20 repetitions and
//! a grid of simulated comparisons — is embarrassingly parallel across
//! *paired seeds*: every unit of work draws from its own
//! `SeedAssignment`/seed-tree branch, so no unit ever observes another's
//! RNG state. [`Runner`] exploits that: a std-only, scoped-thread
//! work-stealing executor whose [`Runner::map_seeds`] fans units out
//! across cores while guaranteeing **bit-identical, seed-ordered
//! results** for any thread count (results are collected by index, and
//! each unit's inputs are a pure function of its index).
//!
//! Scheduling: the index range is split into one contiguous block per
//! worker; each worker pops from the front of its own block and, when
//! empty, steals from the *back* of the other workers' blocks (a classic
//! work-stealing range deque, packed into one `AtomicU64` per worker so
//! the whole scheduler is lock-free and `#![forbid(unsafe_code)]`-clean).
//! Stealing only changes *which thread* computes a unit, never the unit's
//! seeds, so determinism is structural rather than incidental.
//!
//! ```
//! use varbench_core::exec::Runner;
//!
//! let serial = Runner::serial().map_seeds(&[1u64, 2, 3], |_, &s| s * 10);
//! let parallel = Runner::new(4).map_seeds(&[1u64, 2, 3], |_, &s| s * 10);
//! assert_eq!(serial, parallel); // bit-identical, seed-ordered
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable read by [`Runner::from_env`] to pick the thread
/// count (`0` or unset = all available cores, `1` = serial).
pub const THREADS_ENV: &str = "VARBENCH_THREADS";

/// One worker's remaining index range `[head, tail)`, packed into a single
/// atomic word: head in the high 32 bits, tail in the low 32 bits. The
/// owner pops from the front, thieves pop from the back; both sides go
/// through compare-exchange so a range is never handed out twice.
struct RangeDeque(AtomicU64);

fn pack(head: u32, tail: u32) -> u64 {
    (u64::from(head) << 32) | u64::from(tail)
}

fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

impl RangeDeque {
    fn new(head: u32, tail: u32) -> Self {
        RangeDeque(AtomicU64::new(pack(head, tail)))
    }

    /// Claims the front index, or `None` if the range is empty.
    fn pop_front(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(cur);
            if head >= tail {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(head + 1, tail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(head as usize),
                Err(observed) => cur = observed,
            }
        }
    }

    /// Steals the back index, or `None` if the range is empty.
    fn pop_back(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(cur);
            if head >= tail {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(head, tail - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((tail - 1) as usize),
                Err(observed) => cur = observed,
            }
        }
    }
}

/// A deterministic scoped-thread work-stealing executor.
///
/// `Runner` carries only a thread count; every map call spawns a fresh
/// scope of workers and joins them before returning, so there is no
/// global pool, no shutdown protocol, and panics in units propagate to
/// the caller like in serial code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    threads: usize,
}

impl Default for Runner {
    /// Same as [`Runner::from_env`].
    fn default() -> Self {
        Runner::from_env()
    }
}

impl Runner {
    /// A runner with an explicit thread count (`0` = all available cores).
    ///
    /// Explicit counts are clamped to 8× the available cores: the units
    /// are CPU-bound and work-stealing keeps every core busy, so extra
    /// workers are pure overhead — and an accidental
    /// `VARBENCH_THREADS=100000` must not exhaust OS thread limits.
    /// Results never depend on the thread count, so clamping is
    /// observable only in wall-clock time.
    pub fn new(threads: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let threads = if threads == 0 {
            cores
        } else {
            threads.min(cores.saturating_mul(8))
        };
        Runner { threads }
    }

    /// A single-threaded runner: maps run as a plain loop on the calling
    /// thread, with no scheduling machinery at all.
    pub fn serial() -> Self {
        Runner { threads: 1 }
    }

    /// Reads the thread count from [`THREADS_ENV`] (`VARBENCH_THREADS`);
    /// unset, unparsable, or `0` means all available cores.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        Runner::new(threads)
    }

    /// The number of worker threads map calls will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `0..n` in parallel, returning results in index order.
    ///
    /// `f` must be a pure function of its index (draw randomness from a
    /// seed derived from the index, not from shared state); under that
    /// contract the output is bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by any unit.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        assert!(
            u32::try_from(n).is_ok(),
            "map_indexed supports at most u32::MAX units"
        );

        // One contiguous block per worker; block w covers
        // [w*n/workers, (w+1)*n/workers).
        let deques: Vec<RangeDeque> = (0..workers)
            .map(|w| RangeDeque::new((w * n / workers) as u32, ((w + 1) * n / workers) as u32))
            .collect();
        let f = &f;
        let deques = &deques;

        let mut chunks: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut local: Vec<(usize, T)> = Vec::with_capacity(n / workers + 1);
                        // Drain our own block front-to-back.
                        while let Some(i) = deques[w].pop_front() {
                            local.push((i, f(i)));
                        }
                        // Then steal from the back of the others' blocks.
                        for victim in 1..workers {
                            let v = (w + victim) % workers;
                            while let Some(i) = deques[v].pop_back() {
                                local.push((i, f(i)));
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });

        // Reassemble in index order: scheduling decided *who* computed each
        // unit, the output must not reflect that.
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for chunk in &mut chunks {
            for (i, value) in chunk.drain(..) {
                debug_assert!(slots[i].is_none(), "unit {i} computed twice");
                slots[i] = Some(value);
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, v)| v.unwrap_or_else(|| panic!("unit {i} never computed")))
            .collect()
    }

    /// Maps `f` over seed units in parallel, preserving input order: the
    /// workhorse of estimator sampling (one unit per `SeedAssignment`),
    /// the §4.2 simulation grid (one unit per simulated comparison) and
    /// the figure configs (one unit per estimator run).
    ///
    /// `f` receives `(index, &seed)`; results come back in input order
    /// and are bit-identical for any thread count.
    pub fn map_seeds<S, T, F>(&self, seeds: &[S], f: F) -> Vec<T>
    where
        S: Sync,
        T: Send,
        F: Fn(usize, &S) -> T + Sync,
    {
        self.map_indexed(seeds.len(), |i| f(i, &seeds[i]))
    }
}

impl varbench_pipeline::measure::ParMap for Runner {
    fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        Runner::map_indexed(self, n, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: usize| {
            // Deterministic per-index pseudo-work.
            let mut rng = varbench_rng::Rng::seed_from_u64(i as u64);
            (0..100).map(|_| rng.next_f64()).sum::<f64>()
        };
        let serial = Runner::serial().map_indexed(257, work);
        for threads in [2, 3, 4, 8] {
            let parallel = Runner::new(threads).map_indexed(257, work);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn map_seeds_preserves_input_order() {
        let seeds: Vec<u64> = (0..100).map(|i| i * 7 + 1).collect();
        let out = Runner::new(4).map_seeds(&seeds, |i, &s| (i, s));
        for (i, &(idx, s)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(s, seeds[i]);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let r = Runner::new(8);
        assert_eq!(r.map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(r.map_indexed(1, |i| i * 2), vec![0]);
        assert_eq!(
            r.map_seeds::<u64, u64, _>(&[], |_, &s| s),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn more_threads_than_units() {
        let out = Runner::new(64).map_indexed(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_thread_request_means_available_cores() {
        assert!(Runner::new(0).threads() >= 1);
    }

    #[test]
    fn range_deque_hands_out_each_index_once() {
        let dq = RangeDeque::new(0, 10);
        let mut got = Vec::new();
        // Alternate owner pops and steals.
        while let Some(i) = if got.len() % 2 == 0 {
            dq.pop_front()
        } else {
            dq.pop_back()
        } {
            got.push(i);
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Runner::new(4).map_indexed(16, |i| {
                if i == 11 {
                    panic!("unit 11 exploded");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn par_map_trait_matches_inherent_map() {
        use varbench_pipeline::measure::ParMap;
        let via_trait = ParMap::map_indexed(&Runner::new(3), 20, |i| i * i);
        assert_eq!(via_trait, Runner::serial().map_indexed(20, |i| i * i));
    }
}
