//! The three benchmark conclusion criteria of the paper's Section 4, and
//! the recommended decision procedure of Appendix C.6.

use crate::ctx::{BootstrapMode, RunContext};
use varbench_rng::Rng;
use varbench_stats::bootstrap::{
    ci_from_replicates, paired_replicate, percentile_ci_paired, percentile_ci_prob_outperform,
    prob_outperform, prob_outperform_replicate, split_replicate_seeds, win_indicators,
};
use varbench_stats::describe::mean;
use varbench_stats::ConfidenceInterval;

/// Outcome of the paper's recommended statistical test (Appendix C.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// `CI_min ≤ 0.5`: the result could be noise alone; no conclusion.
    NotSignificant,
    /// Significant but `CI_max ≤ γ`: real but too small to be meaningful.
    SignificantNotMeaningful,
    /// `CI_min > 0.5 ∧ CI_max > γ`: A reliably outperforms B.
    SignificantAndMeaningful,
}

impl std::fmt::Display for Decision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Decision::NotSignificant => "not significant",
            Decision::SignificantNotMeaningful => "significant but not meaningful",
            Decision::SignificantAndMeaningful => "significant and meaningful",
        };
        f.write_str(s)
    }
}

/// Result of the probability-of-outperforming test.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbOutperformTest {
    /// Point estimate of `P(A > B)` (paper Eq. 9).
    pub p_a_gt_b: f64,
    /// Percentile-bootstrap confidence interval around it.
    pub ci: ConfidenceInterval,
    /// The meaningfulness threshold γ used.
    pub gamma: f64,
    /// The three-zone decision.
    pub decision: Decision,
}

impl ProbOutperformTest {
    /// `true` iff the decision is significant *and* meaningful.
    pub fn is_improvement(&self) -> bool {
        self.decision == Decision::SignificantAndMeaningful
    }
}

impl std::fmt::Display for ProbOutperformTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P(A>B) = {} (gamma = {:.2}): {}",
            self.ci, self.gamma, self.decision
        )
    }
}

/// Why a comparison request was rejected before any verdict was
/// computed. Returned by [`try_compare_paired`]; a silent verdict on
/// degenerate input (empty samples, NaN scores, a γ at the coin-flip
/// boundary) would be worse than no verdict at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompareError {
    /// One or both score vectors are empty.
    EmptySamples,
    /// The paired vectors have different lengths.
    MismatchedLengths(usize, usize),
    /// A score is NaN or infinite.
    NonFiniteMeasure,
    /// `gamma` outside `(0.5, 1)` — at exactly 0.5 "meaningful" would
    /// degenerate to "significant".
    InvalidGamma(f64),
    /// `alpha` outside `(0, 1)`.
    InvalidAlpha(f64),
    /// `resamples == 0`: no bootstrap distribution to build a CI from.
    ZeroResamples,
}

impl std::fmt::Display for CompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompareError::EmptySamples => f.write_str("score vectors must be non-empty"),
            CompareError::MismatchedLengths(a, b) => {
                write!(f, "paired score vectors differ in length ({a} vs {b})")
            }
            CompareError::NonFiniteMeasure => {
                f.write_str("score vectors must contain only finite values")
            }
            CompareError::InvalidGamma(g) => write!(f, "gamma must be in (0.5, 1), got {g}"),
            CompareError::InvalidAlpha(a) => write!(f, "alpha must be in (0, 1), got {a}"),
            CompareError::ZeroResamples => f.write_str("resamples must be > 0"),
        }
    }
}

impl std::error::Error for CompareError {}

/// The paper's recommended comparison: estimate `P(A > B)` from *paired*
/// performance measures, bound it with a percentile bootstrap, and apply
/// the three-zone decision of Appendix C.6.
///
/// * significant: `CI_min > 0.5`
/// * meaningful: `CI_max > γ` (γ = 0.75 recommended)
///
/// Returns an error (never a silent verdict) on empty or mismatched
/// samples, non-finite scores, γ outside `(0.5, 1)` — including the 0.5
/// boundary — `alpha` outside `(0, 1)`, or zero resamples. Ties are
/// valid input: a tie is not a win, so identical vectors yield
/// `P(A > B) = 0` and [`Decision::NotSignificant`].
pub fn try_compare_paired(
    a: &[f64],
    b: &[f64],
    gamma: f64,
    alpha: f64,
    resamples: usize,
    rng: &mut Rng,
) -> Result<ProbOutperformTest, CompareError> {
    validate_comparison(a, b, gamma, alpha, resamples)?;
    let ci = percentile_ci_prob_outperform(a, b, resamples, alpha, rng);
    Ok(verdict(a, b, ci, gamma))
}

/// [`try_compare_paired`] under an execution context: the bootstrap
/// randomization follows `ctx.bootstrap()`.
///
/// * [`BootstrapMode::Serial`] — byte-identical to
///   [`try_compare_paired`] (one generator threaded through every
///   replicate, the stream every committed artifact was produced with).
/// * [`BootstrapMode::SplitPerReplicate`] — one `Rng::split` child per
///   replicate, fanned across the context's [`crate::exec::Runner`] cores. Results
///   are bit-identical for any thread count (each replicate is a pure
///   function of its child seed and the precomputed win indicators, and
///   the executor collects by index), but the interval comes from a
///   *different* — equally valid — randomization than the serial
///   stream. Either way `rng` advances deterministically: `n·resamples`
///   index draws serial, `resamples` split draws otherwise.
pub fn try_compare_paired_with(
    a: &[f64],
    b: &[f64],
    gamma: f64,
    alpha: f64,
    resamples: usize,
    rng: &mut Rng,
    ctx: &RunContext,
) -> Result<ProbOutperformTest, CompareError> {
    validate_comparison(a, b, gamma, alpha, resamples)?;
    let ci = match ctx.bootstrap() {
        BootstrapMode::Serial => percentile_ci_prob_outperform(a, b, resamples, alpha, rng),
        BootstrapMode::SplitPerReplicate => {
            let estimate = prob_outperform(a, b);
            let wins = win_indicators(a, b);
            let seeds = split_replicate_seeds(rng, resamples);
            let stats = ctx
                .runner()
                .map_seeds(&seeds, |_, &s| prob_outperform_replicate(&wins, s));
            ci_from_replicates(estimate, stats, alpha)
        }
    };
    Ok(verdict(a, b, ci, gamma))
}

/// The generic paired percentile bootstrap under an execution context —
/// [`varbench_stats::bootstrap::percentile_ci_paired`] with the same
/// mode dispatch as [`try_compare_paired_with`]:
///
/// * [`BootstrapMode::Serial`] — byte-identical to
///   `percentile_ci_paired` (one generator threaded through every
///   replicate).
/// * [`BootstrapMode::SplitPerReplicate`] — one child generator per
///   replicate ([`paired_replicate`]), fanned across the context's
///   [`crate::exec::Runner`] cores; bit-identical for any thread count,
///   but a *different* — equally valid — randomization than the serial
///   stream (cache keys must carry the `|var=boot-split` variant, which
///   [`RunContext::measure_key`] stamps).
///
/// # Panics
///
/// As `percentile_ci_paired`: empty or mismatched samples, zero
/// resamples, or `alpha` outside `(0, 1)`.
pub fn percentile_ci_paired_with<S>(
    a: &[f64],
    b: &[f64],
    stat: S,
    resamples: usize,
    alpha: f64,
    rng: &mut Rng,
    ctx: &RunContext,
) -> ConfidenceInterval
where
    S: Fn(&[f64], &[f64]) -> f64 + Sync,
{
    match ctx.bootstrap() {
        BootstrapMode::Serial => percentile_ci_paired(a, b, stat, resamples, alpha, rng),
        BootstrapMode::SplitPerReplicate => {
            assert_eq!(a.len(), b.len(), "paired bootstrap requires equal lengths");
            assert!(!a.is_empty(), "bootstrap of empty sample");
            assert!(resamples > 0, "resamples must be > 0");
            let estimate = stat(a, b);
            let n = a.len();
            let seeds = split_replicate_seeds(rng, resamples);
            let stats = ctx.runner().map_seeds(&seeds, |_, &s| {
                let mut ra = vec![0.0; n];
                let mut rb = vec![0.0; n];
                paired_replicate(a, b, &stat, s, &mut ra, &mut rb)
            });
            ci_from_replicates(estimate, stats, alpha)
        }
    }
}

/// [`try_compare_paired_with`] for callers that treat invalid input as a
/// bug.
///
/// # Panics
///
/// As [`compare_paired`].
pub fn compare_paired_with(
    a: &[f64],
    b: &[f64],
    gamma: f64,
    alpha: f64,
    resamples: usize,
    rng: &mut Rng,
    ctx: &RunContext,
) -> ProbOutperformTest {
    match try_compare_paired_with(a, b, gamma, alpha, resamples, rng, ctx) {
        Ok(test) => test,
        Err(CompareError::InvalidGamma(_)) => panic!("gamma must be in (0.5, 1)"),
        Err(e) => panic!("compare_paired: {e}"),
    }
}

fn validate_comparison(
    a: &[f64],
    b: &[f64],
    gamma: f64,
    alpha: f64,
    resamples: usize,
) -> Result<(), CompareError> {
    if a.is_empty() || b.is_empty() {
        return Err(CompareError::EmptySamples);
    }
    if a.len() != b.len() {
        return Err(CompareError::MismatchedLengths(a.len(), b.len()));
    }
    if a.iter().chain(b).any(|v| !v.is_finite()) {
        return Err(CompareError::NonFiniteMeasure);
    }
    if !(gamma > 0.5 && gamma < 1.0) {
        return Err(CompareError::InvalidGamma(gamma));
    }
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(CompareError::InvalidAlpha(alpha));
    }
    if resamples == 0 {
        return Err(CompareError::ZeroResamples);
    }
    Ok(())
}

fn verdict(a: &[f64], b: &[f64], ci: ConfidenceInterval, gamma: f64) -> ProbOutperformTest {
    let significant = ci.lo > 0.5;
    let meaningful = ci.hi > gamma;
    let decision = match (significant, meaningful) {
        (false, _) => Decision::NotSignificant,
        (true, false) => Decision::SignificantNotMeaningful,
        (true, true) => Decision::SignificantAndMeaningful,
    };
    ProbOutperformTest {
        p_a_gt_b: prob_outperform(a, b),
        ci,
        gamma,
        decision,
    }
}

/// [`try_compare_paired`] for callers that treat invalid input as a bug.
///
/// # Panics
///
/// Panics on every [`CompareError`] condition: empty/mismatched samples,
/// non-finite scores, `gamma` not in `(0.5, 1)`, `alpha` not in `(0, 1)`,
/// or `resamples == 0`.
///
/// # Example
///
/// ```
/// use varbench_core::compare::{compare_paired, Decision};
/// use varbench_rng::Rng;
///
/// // A clearly better than B on 29 paired seeds.
/// let a: Vec<f64> = (0..29).map(|i| 0.80 + 0.002 * (i % 5) as f64).collect();
/// let b: Vec<f64> = (0..29).map(|i| 0.72 + 0.002 * (i % 7) as f64).collect();
/// let mut rng = Rng::seed_from_u64(1);
/// let t = compare_paired(&a, &b, 0.75, 0.05, 1000, &mut rng);
/// assert_eq!(t.decision, Decision::SignificantAndMeaningful);
/// ```
pub fn compare_paired(
    a: &[f64],
    b: &[f64],
    gamma: f64,
    alpha: f64,
    resamples: usize,
    rng: &mut Rng,
) -> ProbOutperformTest {
    match try_compare_paired(a, b, gamma, alpha, resamples, rng) {
        Ok(test) => test,
        Err(CompareError::InvalidGamma(_)) => panic!("gamma must be in (0.5, 1)"),
        Err(e) => panic!("compare_paired: {e}"),
    }
}

/// The naive single-point criterion: one run of each pipeline, `A` wins if
/// its single measure is higher. The paper shows this has both ~10% false
/// positives and ~75% false negatives (Fig. 6).
pub fn single_point_comparison(a: f64, b: f64) -> bool {
    a > b
}

/// The prevalent average criterion: `A` wins if its mean performance
/// exceeds `B`'s by more than `delta` (the paper calibrates
/// `δ = 1.9952 σ` to match published improvements).
///
/// # Panics
///
/// Panics if samples are empty or `delta < 0`.
pub fn average_comparison(a: &[f64], b: &[f64], delta: f64) -> bool {
    assert!(delta >= 0.0, "delta must be >= 0");
    mean(a) - mean(b) > delta
}

/// The δ multiplier calibrated by the paper against paperswithcode.com
/// (Section 4.2: "we set δ = 1.9952 σ ... set by linear regression so that
/// δ matches the average improvements").
pub const PAPER_DELTA_MULTIPLIER: f64 = 1.9952;

/// Adjusts the meaningfulness threshold γ for `m` simultaneous comparisons
/// with a Bonferroni-style correction on the significance level of the
/// accompanying test (Section 6: competitions with many contestants).
///
/// Returns the corrected per-comparison `alpha`.
///
/// # Panics
///
/// Panics if `m == 0` or `alpha` not in `(0, 1)`.
pub fn bonferroni_alpha(alpha: f64, m: usize) -> f64 {
    assert!(m > 0, "m must be > 0");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    alpha / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(42)
    }

    #[test]
    fn clear_improvement_detected() {
        let a: Vec<f64> = (0..30).map(|i| 0.9 + 0.001 * (i % 3) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 0.7 + 0.001 * (i % 4) as f64).collect();
        let t = compare_paired(&a, &b, 0.75, 0.05, 1000, &mut rng());
        assert_eq!(t.decision, Decision::SignificantAndMeaningful);
        assert!(t.is_improvement());
        assert_eq!(t.p_a_gt_b, 1.0);
    }

    #[test]
    fn identical_distributions_not_significant() {
        let mut g = Rng::seed_from_u64(7);
        let a: Vec<f64> = (0..40).map(|_| g.normal(0.5, 0.02)).collect();
        let b: Vec<f64> = (0..40).map(|_| g.normal(0.5, 0.02)).collect();
        let t = compare_paired(&a, &b, 0.75, 0.05, 2000, &mut rng());
        assert_eq!(t.decision, Decision::NotSignificant);
        assert!(!t.is_improvement());
    }

    #[test]
    fn small_consistent_edge_is_significant_not_meaningful() {
        // A beats B slightly more often than not — reliably detectable but
        // below the γ = 0.75 bar with a tight CI (needs many pairs).
        let mut g = Rng::seed_from_u64(8);
        let n = 2000;
        let a: Vec<f64> = (0..n).map(|_| g.normal(0.503, 0.02)).collect();
        let b: Vec<f64> = (0..n).map(|_| g.normal(0.500, 0.02)).collect();
        let t = compare_paired(&a, &b, 0.75, 0.05, 1000, &mut rng());
        assert_eq!(t.decision, Decision::SignificantNotMeaningful, "{t}");
    }

    #[test]
    fn false_positive_rate_controlled_under_null() {
        // Repeated null comparisons: significant-and-meaningful conclusions
        // must be rare.
        let mut wrong = 0;
        let trials = 100;
        for s in 0..trials {
            let mut g = Rng::seed_from_u64(100 + s);
            let a: Vec<f64> = (0..30).map(|_| g.normal(0.8, 0.01)).collect();
            let b: Vec<f64> = (0..30).map(|_| g.normal(0.8, 0.01)).collect();
            let mut r = Rng::seed_from_u64(5000 + s);
            if compare_paired(&a, &b, 0.75, 0.05, 500, &mut r).is_improvement() {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / trials as f64;
        assert!(rate <= 0.08, "false positive rate {rate}");
    }

    #[test]
    fn single_point_is_a_coin_flip_under_null() {
        let mut g = Rng::seed_from_u64(9);
        let mut wins = 0;
        let n = 2000;
        for _ in 0..n {
            if single_point_comparison(g.normal(0.0, 1.0), g.normal(0.0, 1.0)) {
                wins += 1;
            }
        }
        let rate = wins as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn average_comparison_threshold() {
        let a = [0.85, 0.86, 0.84];
        let b = [0.80, 0.81, 0.79];
        assert!(average_comparison(&a, &b, 0.02));
        assert!(!average_comparison(&a, &b, 0.10));
    }

    #[test]
    fn bonferroni_divides() {
        assert!((bonferroni_alpha(0.05, 5) - 0.01).abs() < 1e-15);
        assert_eq!(bonferroni_alpha(0.05, 1), 0.05);
    }

    #[test]
    fn serial_ctx_compare_is_byte_identical_to_plain_compare() {
        let mut g = Rng::seed_from_u64(60);
        let a: Vec<f64> = (0..40).map(|_| g.normal(0.76, 0.02)).collect();
        let b: Vec<f64> = (0..40).map(|_| g.normal(0.74, 0.02)).collect();
        let plain = compare_paired(&a, &b, 0.75, 0.05, 800, &mut rng());
        let via_ctx =
            compare_paired_with(&a, &b, 0.75, 0.05, 800, &mut rng(), &RunContext::serial());
        assert_eq!(plain, via_ctx);
    }

    #[test]
    fn split_ctx_compare_detects_the_same_clear_winner() {
        let a: Vec<f64> = (0..30).map(|i| 0.9 + 0.001 * (i % 3) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 0.7 + 0.001 * (i % 4) as f64).collect();
        let ctx = RunContext::serial().with_bootstrap(BootstrapMode::SplitPerReplicate);
        let t = compare_paired_with(&a, &b, 0.75, 0.05, 1000, &mut rng(), &ctx);
        assert_eq!(t.decision, Decision::SignificantAndMeaningful);
        assert_eq!(t.p_a_gt_b, 1.0);
    }

    #[test]
    fn split_ctx_compare_validates_like_the_serial_path() {
        let ctx = RunContext::serial().with_bootstrap(BootstrapMode::SplitPerReplicate);
        let good = [0.8, 0.9];
        assert_eq!(
            try_compare_paired_with(&[], &[], 0.75, 0.05, 100, &mut rng(), &ctx).unwrap_err(),
            CompareError::EmptySamples
        );
        assert_eq!(
            try_compare_paired_with(&good, &good, 0.5, 0.05, 100, &mut rng(), &ctx).unwrap_err(),
            CompareError::InvalidGamma(0.5)
        );
        assert_eq!(
            try_compare_paired_with(&good, &good, 0.75, 0.05, 0, &mut rng(), &ctx).unwrap_err(),
            CompareError::ZeroResamples
        );
    }

    #[test]
    fn paired_ci_with_serial_ctx_matches_plain_driver() {
        let mut g = Rng::seed_from_u64(70);
        let a: Vec<f64> = (0..35).map(|_| g.normal(0.8, 0.05)).collect();
        let b: Vec<f64> = (0..35).map(|_| g.normal(0.78, 0.05)).collect();
        let stat = |x: &[f64], y: &[f64]| {
            x.iter().zip(y).map(|(p, q)| p - q).sum::<f64>() / x.len() as f64
        };
        let plain = varbench_stats::bootstrap::percentile_ci_paired(
            &a,
            &b,
            stat,
            600,
            0.05,
            &mut Rng::seed_from_u64(71),
        );
        let via_ctx = percentile_ci_paired_with(
            &a,
            &b,
            stat,
            600,
            0.05,
            &mut Rng::seed_from_u64(71),
            &RunContext::serial(),
        );
        assert_eq!(plain, via_ctx);
    }

    #[test]
    fn paired_ci_with_split_ctx_matches_serial_split_driver_for_any_threads() {
        use crate::exec::Runner;
        use varbench_pipeline::MeasureCache;
        let mut g = Rng::seed_from_u64(72);
        let a: Vec<f64> = (0..31).map(|_| g.normal(0.8, 0.05)).collect();
        let b: Vec<f64> = (0..31).map(|_| g.normal(0.78, 0.05)).collect();
        let stat = |x: &[f64], y: &[f64]| {
            x.iter().zip(y).map(|(p, q)| p - q).sum::<f64>() / x.len() as f64
        };
        // Reference: the serial driver of the split stream in
        // varbench-stats.
        let reference = varbench_stats::bootstrap::percentile_ci_paired_split(
            &a,
            &b,
            stat,
            500,
            0.05,
            &mut Rng::seed_from_u64(73),
        );
        // One thread and all cores must both reproduce it bit for bit.
        for runner in [Runner::serial(), Runner::new(0)] {
            let ctx = RunContext::new(runner, MeasureCache::disabled())
                .with_bootstrap(BootstrapMode::SplitPerReplicate);
            let got = percentile_ci_paired_with(
                &a,
                &b,
                stat,
                500,
                0.05,
                &mut Rng::seed_from_u64(73),
                &ctx,
            );
            assert_eq!(reference, got);
        }
        // And the split stream is a genuinely different randomization than
        // the serial one (distinctness guard for the cache-key firewall).
        let serial = varbench_stats::bootstrap::percentile_ci_paired(
            &a,
            &b,
            stat,
            500,
            0.05,
            &mut Rng::seed_from_u64(73),
        );
        assert_eq!(reference.estimate, serial.estimate);
        assert_ne!((reference.lo, reference.hi), (serial.lo, serial.hi));
    }

    #[test]
    fn display_impls() {
        assert_eq!(
            Decision::SignificantAndMeaningful.to_string(),
            "significant and meaningful"
        );
        let a: Vec<f64> = (0..10).map(|i| 0.9 + 0.001 * i as f64).collect();
        let b: Vec<f64> = (0..10).map(|i| 0.7 + 0.001 * i as f64).collect();
        let t = compare_paired(&a, &b, 0.75, 0.05, 100, &mut rng());
        assert!(format!("{t}").contains("P(A>B)"));
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0.5, 1)")]
    fn bad_gamma_rejected() {
        compare_paired(&[1.0, 2.0], &[0.0, 1.0], 0.4, 0.05, 10, &mut rng());
    }

    #[test]
    fn gamma_at_half_boundary_is_an_error() {
        // γ = 0.5 exactly: "meaningful" would collapse into "significant";
        // the boundary must be rejected, not silently accepted.
        let a = [0.8, 0.9, 0.85];
        let b = [0.7, 0.75, 0.72];
        let err = try_compare_paired(&a, &b, 0.5, 0.05, 100, &mut rng()).unwrap_err();
        assert_eq!(err, CompareError::InvalidGamma(0.5));
        let err = try_compare_paired(&a, &b, 1.0, 0.05, 100, &mut rng()).unwrap_err();
        assert_eq!(err, CompareError::InvalidGamma(1.0));
        // Just inside the interval is fine.
        assert!(try_compare_paired(&a, &b, 0.5001, 0.05, 100, &mut rng()).is_ok());
    }

    #[test]
    fn ties_are_not_wins() {
        // Identical paired vectors: every comparison is a tie, so
        // P(A > B) = 0 and the verdict is NotSignificant — never an error,
        // never an improvement.
        let a = [0.8, 0.82, 0.84, 0.86];
        let t = try_compare_paired(&a, &a, 0.75, 0.05, 500, &mut rng()).unwrap();
        assert_eq!(t.p_a_gt_b, 0.0);
        assert_eq!(t.decision, Decision::NotSignificant);
    }

    #[test]
    fn nan_and_empty_inputs_are_errors_not_verdicts() {
        let good = [0.8, 0.9];
        let with_nan = [0.8, f64::NAN];
        let with_inf = [0.8, f64::INFINITY];
        assert_eq!(
            try_compare_paired(&good, &with_nan, 0.75, 0.05, 100, &mut rng()).unwrap_err(),
            CompareError::NonFiniteMeasure
        );
        assert_eq!(
            try_compare_paired(&with_inf, &good, 0.75, 0.05, 100, &mut rng()).unwrap_err(),
            CompareError::NonFiniteMeasure
        );
        assert_eq!(
            try_compare_paired(&[], &[], 0.75, 0.05, 100, &mut rng()).unwrap_err(),
            CompareError::EmptySamples
        );
        assert_eq!(
            try_compare_paired(&good, &[0.7], 0.75, 0.05, 100, &mut rng()).unwrap_err(),
            CompareError::MismatchedLengths(2, 1)
        );
        assert_eq!(
            try_compare_paired(&good, &good, 0.75, 0.0, 100, &mut rng()).unwrap_err(),
            CompareError::InvalidAlpha(0.0)
        );
        assert_eq!(
            try_compare_paired(&good, &good, 0.75, 0.05, 0, &mut rng()).unwrap_err(),
            CompareError::ZeroResamples
        );
        // Errors render a reason a caller can surface.
        let msg = CompareError::NonFiniteMeasure.to_string();
        assert!(msg.contains("finite"), "{msg}");
    }
}
