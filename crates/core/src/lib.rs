//! Variance-aware benchmark estimators and decision criteria — the primary
//! contribution of *Accounting for Variance in Machine Learning Benchmarks*
//! (Bouthillier et al., MLSys 2021), as a reusable library.
//!
//! # What this crate provides
//!
//! * [`estimator`] — Algorithm 1 (`IdealEst`: re-run hyperparameter
//!   optimization for every sample, O(kT) fits) and Algorithm 2
//!   (`FixHOptEst`: tune once, then randomize a ξ_O subset, O(k+T) fits),
//!   with the `Init` / `Data` / `All` randomization variants compared in
//!   the paper's Fig. 5, plus the per-source variance study of Fig. 1;
//! * [`decompose`] — the bias / variance / correlation-ρ / MSE
//!   decomposition of Eqs. 6–8 (Fig. H.5);
//! * [`compare`] — the three decision criteria of Section 4: single-point
//!   comparison, average comparison with threshold δ, and the recommended
//!   *probability of outperforming* `P(A > B) ≥ γ` tested with
//!   percentile-bootstrap confidence intervals (Appendix C);
//! * [`simulation`] — the calibrated two-stage normal simulation of §4.2
//!   used to characterize the error rates of those criteria (Figs. 6 and
//!   I.6);
//! * [`ctx`] — [`RunContext`], the one execution environment every
//!   estimator takes (executor + measurement cache; serial + no-op cache
//!   by default);
//! * [`study`] — the fluent [`Study`] builder: from any
//!   `varbench_pipeline::Workload` to a finished variance report;
//! * [`sample_size`] — Noether planning for `P(A > B)` tests (Fig. C.1);
//! * [`retry`] — the bounded exponential-backoff [`retry::RetryPolicy`]
//!   shared by the worker-fleet dispatch driver and the `query` client
//!   (pure `Duration` schedule; no wallclock reads);
//! * [`json`] — a dependency-free JSON value model and parser (the
//!   reading half of the serve protocol; [`report`] is the writing half);
//! * [`report`] — structured experiment reports (text/JSON/CSV) and the
//!   aligned-table formatter behind them;
//! * [`exec`] — a deterministic scoped-thread work-stealing runner
//!   ([`exec::Runner::map_seeds`]) that fans estimator sampling, the
//!   simulation grid and the figure configs out across cores with
//!   bit-identical, seed-ordered results.
//!
//! # The paper's recommended workflow
//!
//! ```
//! use varbench_core::compare::{compare_paired, Decision};
//! use varbench_pipeline::{CaseStudy, Scale, SeedAssignment};
//! use varbench_rng::Rng;
//!
//! let cs = CaseStudy::glue_rte_bert(Scale::Test);
//! // Candidate A: default hyperparameters; candidate B: smaller init std.
//! let a_params = cs.default_params().to_vec();
//! let mut b_params = a_params.clone();
//! b_params[2] = 0.05;
//!
//! // Paired runs over k seeds (every variation source randomized — the
//! // paper's recommendation 1).
//! let k = 5; // use sample_size::recommended() in real studies
//! let (mut a, mut b) = (Vec::new(), Vec::new());
//! for i in 0..k {
//!     let seeds = SeedAssignment::all_random(42, i);
//!     a.push(cs.run_with_params(&a_params, &seeds));
//!     b.push(cs.run_with_params(&b_params, &seeds));
//! }
//! let mut rng = Rng::seed_from_u64(7);
//! let test = compare_paired(&a, &b, 0.75, 0.05, 200, &mut rng);
//! assert!(matches!(
//!     test.decision,
//!     Decision::NotSignificant | Decision::SignificantNotMeaningful | Decision::SignificantAndMeaningful
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checklist;
pub mod compare;
pub mod ctx;
pub mod decompose;
pub mod estimator;
pub mod exec;
pub mod json;
pub mod multiple_datasets;
pub mod procedure;
pub mod report;
pub mod retry;
pub mod sample_size;
pub mod simulation;
pub mod study;

pub use ctx::RunContext;
pub use study::Study;
