//! Structured experiment reports: aligned text tables plus a [`Report`]
//! container with text, JSON and CSV renderers.
//!
//! The bench harness regenerates every figure/table of the paper as a
//! [`Report`] — an ordered sequence of prose blocks and [`Table`]s. The
//! text rendering concatenates the blocks verbatim (so it is byte-for-byte
//! what the pre-registry harness printed), while the JSON and CSV
//! renderings expose the same tables machine-readably for downstream
//! plotting and cross-run comparison.

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use varbench_core::report::Table;
/// let mut t = Table::new(vec!["source".into(), "std".into()]);
/// t.add_row(vec!["weights init".into(), "0.0012".into()]);
/// let s = t.render();
/// assert!(s.contains("weights init"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the headers.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (RFC-4180 quoting for cells containing
    /// commas, quotes, or newlines) for downstream plotting.
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let emit = |row: &[String], out: &mut String| {
            let cells: Vec<String> = row.iter().map(|c| quote(c)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// One element of a [`Report`]: either verbatim prose or a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Block {
    /// Verbatim text, rendered as-is (including its own newlines).
    Text(String),
    /// An aligned table, rendered with [`Table::render`].
    Table(Table),
}

/// A structured experiment report: named, titled, and composed of ordered
/// [`Block`]s.
///
/// Built by the figure artifacts and rendered by the `varbench` CLI in
/// three formats: [`Report::render_text`] reproduces the classic
/// plain-text report byte-for-byte, [`Report::to_json`] and
/// [`Report::to_csv`] expose the same content machine-readably.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    name: String,
    title: String,
    blocks: Vec<Block>,
}

impl Report {
    /// Creates an empty report with an artifact `name` (e.g. `fig1`) and
    /// a display `title` (e.g. `Figure 1`).
    pub fn new(name: impl Into<String>, title: impl Into<String>) -> Report {
        Report {
            name: name.into(),
            title: title.into(),
            blocks: Vec::new(),
        }
    }

    /// The artifact name (registry key, e.g. `fig5`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The display title (e.g. `Figure 5 / H.4`).
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The ordered blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Appends a verbatim text block.
    pub fn text(&mut self, s: impl Into<String>) {
        self.blocks.push(Block::Text(s.into()));
    }

    /// Appends a table block.
    pub fn table(&mut self, t: Table) {
        self.blocks.push(Block::Table(t));
    }

    /// Renders the report as plain text: text blocks verbatim, tables via
    /// [`Table::render`], concatenated in order.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for b in &self.blocks {
            match b {
                Block::Text(s) => out.push_str(s),
                Block::Table(t) => out.push_str(&t.render()),
            }
        }
        out
    }

    /// Renders the report as a self-contained JSON object
    /// (`{"name", "title", "blocks": [...]}`; tables carry `headers` and
    /// `rows` arrays). Hand-rolled serialization — the workspace has no
    /// serde — with full string escaping.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"name\":");
        out.push_str(&json_string(&self.name));
        out.push_str(",\"title\":");
        out.push_str(&json_string(&self.title));
        out.push_str(",\"blocks\":[");
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match b {
                Block::Text(s) => {
                    out.push_str("{\"type\":\"text\",\"text\":");
                    out.push_str(&json_string(s));
                    out.push('}');
                }
                Block::Table(t) => {
                    out.push_str("{\"type\":\"table\",\"headers\":");
                    out.push_str(&json_string_array(t.headers()));
                    out.push_str(",\"rows\":[");
                    for (j, row) in t.rows().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&json_string_array(row));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Renders every table of the report as CSV, each preceded by a
    /// `# <report name> table <index>` comment line (text blocks are
    /// prose, not data, and are omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut idx = 0;
        for b in &self.blocks {
            if let Block::Table(t) = b {
                if idx > 0 {
                    out.push('\n');
                }
                out.push_str(&format!("# {} table {idx}\n", self.name));
                out.push_str(&t.to_csv());
                idx += 1;
            }
        }
        out
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    format!("[{}]", cells.join(","))
}

/// Formats a float with `prec` decimal places.
pub fn num(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Renders a horizontal ASCII bar of `value` relative to `max` with the
/// given `width` — used for the Fig. 1-style variance charts.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.add_row(vec!["xxx".into(), "1".into()]);
        t.add_row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_export_quotes_correctly() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.add_row(vec!["plain".into(), "1.0".into()]);
        t.add_row(vec!["with, comma".into(), "quote \" inside".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1.0");
        assert_eq!(lines[2], "\"with, comma\",\"quote \"\" inside\"");
    }

    #[test]
    fn num_and_pct() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(pct(0.054), "5.4%");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0, 1.0, 10).len(), 10);
        assert_eq!(bar(0.5, 1.0, 10).len(), 5);
        assert_eq!(bar(0.0, 1.0, 10), "");
        assert_eq!(bar(2.0, 1.0, 10).len(), 10, "clamped to width");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
    }

    fn sample_report() -> Report {
        let mut r = Report::new("figx", "Figure X");
        r.text("Figure X: header\n\n");
        let mut t = Table::new(vec!["source".into(), "std".into()]);
        t.add_row(vec!["weights \"init\"".into(), "0.0012".into()]);
        r.table(t);
        r.text("\nfootnote\n");
        r
    }

    #[test]
    fn report_text_is_block_concatenation() {
        let r = sample_report();
        let text = r.render_text();
        assert!(text.starts_with("Figure X: header\n\n"));
        assert!(text.contains("source"));
        assert!(text.ends_with("\nfootnote\n"));
        // Exactly the old hand-built string: header + table.render() + foot.
        let mut expect = String::from("Figure X: header\n\n");
        if let Block::Table(t) = &r.blocks()[1] {
            expect.push_str(&t.render());
        }
        expect.push_str("\nfootnote\n");
        assert_eq!(text, expect);
    }

    #[test]
    fn report_json_escapes_and_structures() {
        let j = sample_report().to_json();
        assert!(j.starts_with("{\"name\":\"figx\",\"title\":\"Figure X\""));
        assert!(j.contains("{\"type\":\"text\",\"text\":\"Figure X: header\\n\\n\"}"));
        assert!(j.contains("\"headers\":[\"source\",\"std\"]"));
        assert!(j.contains("weights \\\"init\\\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn report_csv_emits_each_table_with_marker() {
        let mut r = sample_report();
        let mut t2 = Table::new(vec!["k".into()]);
        t2.add_row(vec!["1".into()]);
        r.table(t2);
        let csv = r.to_csv();
        assert!(csv.contains("# figx table 0\n"));
        assert!(csv.contains("# figx table 1\n"));
        assert!(csv.contains("source,std"));
        assert!(!csv.contains("footnote"), "prose omitted from CSV");
    }

    #[test]
    fn json_string_control_chars() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
    }
}
