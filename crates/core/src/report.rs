//! Plain-text tables for experiment reports.
//!
//! The bench harness regenerates every figure/table of the paper as
//! aligned text; this module is the shared formatter.

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use varbench_core::report::Table;
/// let mut t = Table::new(vec!["source".into(), "std".into()]);
/// t.add_row(vec!["weights init".into(), "0.0012".into()]);
/// let s = t.render();
/// assert!(s.contains("weights init"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the headers.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (RFC-4180 quoting for cells containing
    /// commas, quotes, or newlines) for downstream plotting.
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let emit = |row: &[String], out: &mut String| {
            let cells: Vec<String> = row.iter().map(|c| quote(c)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with `prec` decimal places.
pub fn num(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Renders a horizontal ASCII bar of `value` relative to `max` with the
/// given `width` — used for the Fig. 1-style variance charts.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.add_row(vec!["xxx".into(), "1".into()]);
        t.add_row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_export_quotes_correctly() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.add_row(vec!["plain".into(), "1.0".into()]);
        t.add_row(vec!["with, comma".into(), "quote \" inside".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1.0");
        assert_eq!(lines[2], "\"with, comma\",\"quote \"\" inside\"");
    }

    #[test]
    fn num_and_pct() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(pct(0.054), "5.4%");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0, 1.0, 10).len(), 10);
        assert_eq!(bar(0.5, 1.0, 10).len(), 5);
        assert_eq!(bar(0.0, 1.0, 10), "");
        assert_eq!(bar(2.0, 1.0, 10).len(), 10, "clamped to width");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
    }
}
