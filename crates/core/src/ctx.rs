//! The execution context every measurement function runs in.
//!
//! PR 2 left the measurement API as a combinatorial surface: every
//! estimator had a plain serial form, a `*_with(runner)` form and a
//! `*_cached(runner, cache)` form. [`RunContext`] collapses that to one
//! form — *function(workload, parameters, `&RunContext`)* — by bundling
//! the two pieces of environment a measurement needs:
//!
//! * an [`exec::Runner`](crate::exec::Runner) that fans independent seed
//!   branches across cores (bit-identical results for any thread count);
//! * a [`MeasureCache`] that memoizes workload score matrices
//!   (bit-identical results whether it hits or misses).
//!
//! [`RunContext::serial`] is the zero-configuration default — a serial
//! runner plus a no-op cache — and reproduces exactly what the old plain
//! serial functions computed. Scheduling and caching never change a
//! value, only who computes it and when.

#![deny(missing_docs)]

use crate::exec::Runner;
use varbench_pipeline::cache::{MeasureKey, MeasureKind};
use varbench_pipeline::{MeasureCache, Workload};

/// Environment variable read by [`BootstrapMode::from_env`]: set to `1`
/// (or `true`) to select the split-stream parallel bootstrap.
pub const PAR_BOOTSTRAP_ENV: &str = "VARBENCH_PAR_BOOTSTRAP";

/// How bootstrap confidence intervals consume randomness — a property of
/// the execution environment, carried by [`RunContext`] so every
/// comparison in a run agrees on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BootstrapMode {
    /// The historical stream: one generator threaded sequentially
    /// through every replicate. This is what every committed artifact
    /// was produced with, so it is the default — and the only mode whose
    /// bytes match them.
    #[default]
    Serial,
    /// One [`varbench_rng::Rng::split`] child per replicate, split off
    /// up front in replicate order. Replicates become independent units
    /// the [`Runner`] fans across cores with bit-identical results for
    /// any thread count — at the price of a *different* (equally valid)
    /// randomization than [`BootstrapMode::Serial`]. Anything cached
    /// downstream is quarantined under its own key variant (see
    /// [`RunContext::measure_key`]).
    SplitPerReplicate,
}

impl BootstrapMode {
    /// Reads [`PAR_BOOTSTRAP_ENV`]; unset or anything other than
    /// `1`/`true` means [`BootstrapMode::Serial`].
    pub fn from_env() -> BootstrapMode {
        match std::env::var(PAR_BOOTSTRAP_ENV).as_deref() {
            Ok("1") | Ok("true") => BootstrapMode::SplitPerReplicate,
            _ => BootstrapMode::Serial,
        }
    }

    /// Short display label (`serial` / `split`).
    pub fn label(self) -> &'static str {
        match self {
            BootstrapMode::Serial => "serial",
            BootstrapMode::SplitPerReplicate => "split",
        }
    }

    /// The cache-key variant tag this mode quarantines measurements
    /// under: empty for the default serial path (existing records keep
    /// their addresses), `boot-split` for the split-stream path.
    pub fn cache_variant(self) -> &'static str {
        match self {
            BootstrapMode::Serial => "",
            BootstrapMode::SplitPerReplicate => "boot-split",
        }
    }
}

/// Everything a measurement needs from its environment: an executor, a
/// measurement cache, and the statistical execution mode (bootstrap
/// randomization). Pure configuration stays in the per-call parameters
/// and per-artifact `Config` types.
pub struct RunContext {
    runner: Runner,
    cache: MeasureCache,
    bootstrap: BootstrapMode,
}

impl RunContext {
    /// Bundles an executor and a cache (serial bootstrap — the default
    /// statistical mode).
    pub fn new(runner: Runner, cache: MeasureCache) -> RunContext {
        RunContext {
            runner,
            cache,
            bootstrap: BootstrapMode::Serial,
        }
    }

    /// The default context: serial execution, no caching — the behaviour
    /// of the old plain serial measurement functions.
    pub fn serial() -> RunContext {
        RunContext::new(Runner::serial(), MeasureCache::disabled())
    }

    /// A serial context with a fresh in-memory cache (useful in tests
    /// that assert on cache accounting).
    pub fn serial_cached() -> RunContext {
        RunContext::new(Runner::serial(), MeasureCache::new())
    }

    /// The environment-driven context: thread count from
    /// `VARBENCH_THREADS` (all cores if unset), a cache persisted under
    /// `VARBENCH_CACHE_DIR` when that is set, and the bootstrap mode
    /// from `VARBENCH_PAR_BOOTSTRAP`.
    pub fn from_env() -> RunContext {
        RunContext::new(Runner::from_env(), MeasureCache::from_env())
            .with_bootstrap(BootstrapMode::from_env())
    }

    /// Replaces the bootstrap mode (builder-style).
    pub fn with_bootstrap(mut self, mode: BootstrapMode) -> RunContext {
        self.bootstrap = mode;
        self
    }

    /// The executor.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// The measurement cache.
    pub fn cache(&self) -> &MeasureCache {
        &self.cache
    }

    /// The bootstrap randomization mode.
    pub fn bootstrap(&self) -> BootstrapMode {
        self.bootstrap
    }

    /// Builds the cache key for a measurement performed under this
    /// context, stamping the context's execution variant.
    ///
    /// Under the default serial mode this is exactly
    /// `MeasureKey::new(...)` — same canonical form, same on-disk record
    /// addresses. Under a non-default mode the key carries the mode's
    /// variant tag, so records produced there live in their own key
    /// space and can never be served into (or from) the default path.
    /// That firewall is deliberately conservative: today's cached score
    /// matrices do not depend on the bootstrap mode at all, but the
    /// guarantee "a non-default statistical mode can never silently leak
    /// bytes into the default artifacts" is worth the lost reuse.
    pub fn measure_key(&self, w: &dyn Workload, kind: MeasureKind, base_seed: u64) -> MeasureKey {
        MeasureKey::with_variant(w, kind, base_seed, self.bootstrap.cache_variant())
    }
}

impl Default for RunContext {
    /// Same as [`RunContext::serial`].
    fn default() -> Self {
        RunContext::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_default_is_uncached_single_thread() {
        let ctx = RunContext::default();
        assert_eq!(ctx.runner().threads(), 1);
        assert!(ctx.cache().is_disabled());
        assert_eq!(ctx.bootstrap(), BootstrapMode::Serial);
        let cached = RunContext::serial_cached();
        assert!(!cached.cache().is_disabled());
    }

    #[test]
    fn measure_key_stamps_the_bootstrap_variant() {
        use varbench_pipeline::cache::{MeasureKey, MeasureKind};
        use varbench_pipeline::{CaseStudy, Scale, VarianceSource};

        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let kind = || MeasureKind::SourceStudy {
            source: VarianceSource::DataSplit,
        };
        let serial = RunContext::serial();
        let split = RunContext::serial().with_bootstrap(BootstrapMode::SplitPerReplicate);
        // Serial-mode keys are the plain keys — byte-identical canon, so
        // every existing record keeps its address.
        assert_eq!(
            serial.measure_key(&cs, kind(), 3).canon(),
            MeasureKey::new(&cs, kind(), 3).canon()
        );
        // Split-mode keys live in their own space.
        let sk = split.measure_key(&cs, kind(), 3);
        assert_ne!(sk.canon(), MeasureKey::new(&cs, kind(), 3).canon());
        assert!(sk.canon().ends_with("|var=boot-split"));
    }
}
