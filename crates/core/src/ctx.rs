//! The execution context every measurement function runs in.
//!
//! PR 2 left the measurement API as a combinatorial surface: every
//! estimator had a plain serial form, a `*_with(runner)` form and a
//! `*_cached(runner, cache)` form. [`RunContext`] collapses that to one
//! form — *function(workload, parameters, `&RunContext`)* — by bundling
//! the two pieces of environment a measurement needs:
//!
//! * an [`exec::Runner`](crate::exec::Runner) that fans independent seed
//!   branches across cores (bit-identical results for any thread count);
//! * a [`MeasureCache`] that memoizes workload score matrices
//!   (bit-identical results whether it hits or misses).
//!
//! [`RunContext::serial`] is the zero-configuration default — a serial
//! runner plus a no-op cache — and reproduces exactly what the old plain
//! serial functions computed. Scheduling and caching never change a
//! value, only who computes it and when.

#![deny(missing_docs)]

use crate::exec::Runner;
use varbench_pipeline::MeasureCache;

/// Everything a measurement needs from its environment: an executor and
/// a measurement cache. Pure configuration stays in the per-call
/// parameters and per-artifact `Config` types.
pub struct RunContext {
    runner: Runner,
    cache: MeasureCache,
}

impl RunContext {
    /// Bundles an executor and a cache.
    pub fn new(runner: Runner, cache: MeasureCache) -> RunContext {
        RunContext { runner, cache }
    }

    /// The default context: serial execution, no caching — the behaviour
    /// of the old plain serial measurement functions.
    pub fn serial() -> RunContext {
        RunContext {
            runner: Runner::serial(),
            cache: MeasureCache::disabled(),
        }
    }

    /// A serial context with a fresh in-memory cache (useful in tests
    /// that assert on cache accounting).
    pub fn serial_cached() -> RunContext {
        RunContext {
            runner: Runner::serial(),
            cache: MeasureCache::new(),
        }
    }

    /// The environment-driven context: thread count from
    /// `VARBENCH_THREADS` (all cores if unset) and a cache persisted
    /// under `VARBENCH_CACHE_DIR` when that is set.
    pub fn from_env() -> RunContext {
        RunContext {
            runner: Runner::from_env(),
            cache: MeasureCache::from_env(),
        }
    }

    /// The executor.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// The measurement cache.
    pub fn cache(&self) -> &MeasureCache {
        &self.cache
    }
}

impl Default for RunContext {
    /// Same as [`RunContext::serial`].
    fn default() -> Self {
        RunContext::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_default_is_uncached_single_thread() {
        let ctx = RunContext::default();
        assert_eq!(ctx.runner().threads(), 1);
        assert!(ctx.cache().is_disabled());
        let cached = RunContext::serial_cached();
        assert!(!cached.cache().is_disabled());
    }
}
