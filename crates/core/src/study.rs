//! The fluent study builder: one entry point from *any* workload to a
//! finished variance report.
//!
//! ```
//! use varbench_core::ctx::RunContext;
//! use varbench_core::study::Study;
//! use varbench_pipeline::{Scale, SyntheticWorkload};
//!
//! let w = SyntheticWorkload::new(Scale::Test);
//! let report = Study::new(&w).seeds(4).budget(2).run(&RunContext::serial());
//! assert!(report.render_text().contains("synthetic-ridge"));
//! ```

#![deny(missing_docs)]

use crate::ctx::RunContext;
use crate::estimator::{joint_variance_study, source_variance_study};
use crate::report::{bar, num, Report, Table};
use varbench_pipeline::{HpoAlgorithm, MeasureKind, VarianceSource, Workload};
use varbench_stats::describe::{mean, std_dev};
use varbench_stats::power::noether_sample_size;

/// One row-group of a study's measurement matrix — which randomization
/// a [`PlannedMeasurement`] re-seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StudyUnit {
    /// One ξ_O source re-seeded per row, default hyperparameters.
    Source(VarianceSource),
    /// The chosen ξ_O set re-seeded jointly, default hyperparameters.
    Joint(Vec<VarianceSource>),
    /// Per-row independent HPO procedures (the ξ_H row).
    HyperOpt,
}

/// One independently computable measurement of a study: exactly one call
/// to [`source_variance_study`] or [`joint_variance_study`].
///
/// [`Study::plan`] enumerates these and [`Study::run`] *consumes* the
/// plan — so anything that executes every planned unit against a shared
/// cache (the `varbench worker` fleet) pre-computes precisely the
/// records `run` will then read. Byte-identity of sharded and
/// single-process studies holds by construction, not by parallel
/// bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedMeasurement {
    /// What is randomized.
    pub unit: StudyUnit,
    /// Rows (re-seeded measurements) in this unit's matrix.
    pub seeds: usize,
    /// HPO algorithm (only exercised by the [`StudyUnit::HyperOpt`] row;
    /// carried uniformly so a unit serializes without special cases).
    pub algo: HpoAlgorithm,
    /// Effective HPO budget passed to the measurement call.
    pub budget: usize,
    /// Effective base seed (the ξ_H row's `^ 0xB0B0` already applied).
    pub base_seed: u64,
}

impl PlannedMeasurement {
    /// Runs this unit through `ctx`, returning its measurement column
    /// (and publishing it to `ctx`'s cache like any other measurement).
    pub fn execute(&self, w: &dyn Workload, ctx: &RunContext) -> Vec<f64> {
        match &self.unit {
            StudyUnit::Source(src) => source_variance_study(
                w,
                *src,
                self.seeds,
                self.algo,
                self.budget,
                self.base_seed,
                ctx,
            ),
            StudyUnit::Joint(sources) => {
                joint_variance_study(w, sources, self.seeds, self.base_seed, ctx)
            }
            StudyUnit::HyperOpt => source_variance_study(
                w,
                VarianceSource::HyperOpt,
                self.seeds,
                self.algo,
                self.budget,
                self.base_seed,
                ctx,
            ),
        }
    }

    /// The [`MeasureKind`] the execution addresses its cache entry with —
    /// what a dispatch driver combines with [`RunContext::measure_key`]
    /// and [`PlannedMeasurement::base_seed`] to watch for the published
    /// record.
    pub fn measure_kind(&self) -> MeasureKind {
        match &self.unit {
            StudyUnit::Source(src) => MeasureKind::SourceStudy { source: *src },
            StudyUnit::Joint(sources) => MeasureKind::JointStudy {
                sources: sources.clone(),
            },
            StudyUnit::HyperOpt => MeasureKind::HyperOptStudy {
                algo: self.algo.display_name(),
                budget: self.budget,
            },
        }
    }

    /// The report row label for this unit.
    pub fn label(&self) -> String {
        match &self.unit {
            StudyUnit::Source(src) => src.display_name().to_string(),
            StudyUnit::Joint(_) => "Altogether (joint)".to_string(),
            StudyUnit::HyperOpt => {
                format!("HyperOpt ({}, T={})", self.algo.display_name(), self.budget)
            }
        }
    }
}

/// Builds and runs a per-source variance study of one [`Workload`] —
/// the paper's Fig. 1 protocol as a reusable, fluent API.
///
/// Defaults: randomize every active ξ_O source, 10 seeds per source,
/// random search, no ξ_H row (enable it with [`Study::budget`]).
pub struct Study<'w> {
    workload: &'w dyn Workload,
    sources: Option<Vec<VarianceSource>>,
    n_seeds: usize,
    base_seed: u64,
    algo: HpoAlgorithm,
    budget: usize,
    gamma: Option<f64>,
    report_name: Option<String>,
}

impl<'w> Study<'w> {
    /// Starts a study of `workload` with the defaults above.
    pub fn new(workload: &'w dyn Workload) -> Study<'w> {
        Study {
            workload,
            sources: None,
            n_seeds: 10,
            base_seed: 0xA11D,
            algo: HpoAlgorithm::RandomSearch,
            budget: 0,
            gamma: None,
            report_name: None,
        }
    }

    /// Restricts the study to `sources` (intersected with the workload's
    /// active ξ_O sources; [`VarianceSource::HyperOpt`] is controlled by
    /// [`Study::budget`] instead).
    pub fn randomize(mut self, sources: &[VarianceSource]) -> Study<'w> {
        self.sources = Some(sources.to_vec());
        self
    }

    /// Sets the number of re-seeded measurements per source.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (a variance needs at least two measures).
    pub fn seeds(mut self, n: usize) -> Study<'w> {
        assert!(n >= 2, "a variance study needs at least 2 seeds");
        self.n_seeds = n;
        self
    }

    /// Sets the base seed every measurement derives from.
    pub fn base_seed(mut self, seed: u64) -> Study<'w> {
        self.base_seed = seed;
        self
    }

    /// Enables the ξ_H (hyperparameter-optimization) row: `budget` trials
    /// per independent tuning procedure. `0` (the default) skips it.
    pub fn budget(mut self, budget: usize) -> Study<'w> {
        self.budget = budget;
        self
    }

    /// Selects the HPO algorithm for the ξ_H row.
    pub fn algorithm(mut self, algo: HpoAlgorithm) -> Study<'w> {
        self.algo = algo;
        self
    }

    /// Adds a comparison-planning block: the Noether sample size needed
    /// to reliably detect `P(A > B) > gamma` at α = β = 0.05 (paper
    /// Appendix C.3), so the report says how many paired runs a
    /// conclusion drawn *from* this study's variance would need.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `(0, 1)` or equal to `0.5` (the
    /// sample-size formula diverges: no effect to detect).
    pub fn gamma(mut self, gamma: f64) -> Study<'w> {
        // Validate eagerly: a bad gamma should fail at the builder, not
        // after the measurements have been paid for.
        let _ = noether_sample_size(gamma, 0.05, 0.05);
        self.gamma = Some(gamma);
        self
    }

    /// Overrides the report's registry name (default `study-<workload>`).
    pub fn named(mut self, name: impl Into<String>) -> Study<'w> {
        self.report_name = Some(name.into());
        self
    }

    /// The ξ_O sources this study will randomize: the workload's active
    /// sources intersected with any [`Study::randomize`] restriction.
    ///
    /// # Panics
    ///
    /// Panics if the selection leaves nothing to randomize.
    pub fn chosen_sources(&self) -> Vec<VarianceSource> {
        let w = self.workload;
        let active_xi_o: Vec<VarianceSource> = w
            .active_sources()
            .iter()
            .copied()
            .filter(|s| !s.is_hyperopt())
            .collect();
        let chosen: Vec<VarianceSource> = match &self.sources {
            Some(requested) => active_xi_o
                .iter()
                .copied()
                .filter(|s| requested.contains(s))
                .collect(),
            None => active_xi_o,
        };
        assert!(
            !chosen.is_empty(),
            "study of {} has no active source to randomize",
            w.name()
        );
        chosen
    }

    /// Enumerates the study's measurement plan: one
    /// [`PlannedMeasurement`] per per-source row (in active-source
    /// order), then the joint row when more than one source is chosen
    /// (a single-source joint study IS that source's marginal study),
    /// then the ξ_H row when a budget is set. [`Study::run`] executes
    /// exactly this plan, in this order.
    ///
    /// # Panics
    ///
    /// Panics if the source selection leaves nothing to randomize.
    pub fn plan(&self) -> Vec<PlannedMeasurement> {
        let chosen = self.chosen_sources();
        let unit = |u: StudyUnit, budget: usize, base_seed: u64| PlannedMeasurement {
            unit: u,
            seeds: self.n_seeds,
            algo: self.algo,
            budget,
            base_seed,
        };
        let mut plan: Vec<PlannedMeasurement> = chosen
            .iter()
            .map(|&src| {
                // budget.max(1): irrelevant to a default-hyperparameter
                // row but must satisfy the study function's budget > 0
                // assertion uniformly.
                unit(StudyUnit::Source(src), self.budget.max(1), self.base_seed)
            })
            .collect();
        if chosen.len() > 1 {
            plan.push(unit(
                StudyUnit::Joint(chosen.clone()),
                self.budget.max(1),
                self.base_seed,
            ));
        }
        if self.budget > 0 {
            plan.push(unit(
                StudyUnit::HyperOpt,
                self.budget,
                self.base_seed ^ 0xB0B0,
            ));
        }
        plan
    }

    /// Runs every measurement through `ctx` and renders the variance
    /// profile.
    ///
    /// # Panics
    ///
    /// Panics if the source selection leaves nothing to randomize.
    pub fn run(&self, ctx: &RunContext) -> Report {
        let w = self.workload;
        let chosen = self.chosen_sources();

        let name = self
            .report_name
            .clone()
            .unwrap_or_else(|| format!("study-{}", w.name()));
        let mut r = Report::new(name, format!("Study: {}", w.name()));
        r.text(format!(
            "variance profile of {} ({}, metric: {}, {} search dims)\n",
            w.name(),
            w.cache_id(),
            w.metric_name(),
            w.search_space().len()
        ));
        r.text(format!(
            "(n = {} seeds per source, base seed = {:#x})\n\n",
            self.n_seeds, self.base_seed
        ));

        // Execute the plan: per-source rows in active-source order, the
        // joint row (absent for a single source — its joint study IS the
        // marginal study, so the marginal matrix is reused instead of
        // paying n more measurements), then the optional ξ_H row.
        let mut rows: Vec<(String, f64)> = Vec::new();
        let mut first_marginal: Option<Vec<f64>> = None;
        let mut joint_measures: Option<Vec<f64>> = None;
        for pm in self.plan() {
            let measures = pm.execute(w, ctx);
            rows.push((pm.label(), std_dev(&measures)));
            match pm.unit {
                StudyUnit::Source(_) => {
                    first_marginal.get_or_insert(measures);
                }
                StudyUnit::Joint(_) => joint_measures = Some(measures),
                StudyUnit::HyperOpt => {}
            }
        }
        let joint = joint_measures
            .or(first_marginal)
            .expect("chosen is non-empty");

        // The ratio column is relative to the bootstrap row when the
        // study includes it, otherwise to the first chosen source — and
        // the header says which.
        let (ref_header, reference) = rows
            .iter()
            .find(|(l, _)| l == VarianceSource::DataSplit.display_name())
            .map(|(_, s)| ("ratio/bootstrap".to_string(), *s))
            .or_else(|| {
                rows.first()
                    .map(|(l, s)| (format!("ratio/{}", l.to_lowercase()), *s))
            })
            .unwrap_or(("ratio".to_string(), f64::NAN));
        let mut t = Table::new(vec!["source".into(), "std".into(), ref_header, "".into()]);
        for (label, sd) in &rows {
            let ratio = if reference > 0.0 {
                sd / reference
            } else {
                f64::NAN
            };
            t.add_row(vec![
                label.clone(),
                num(*sd, 5),
                num(ratio, 2),
                bar(ratio, 2.0, 24),
            ]);
        }
        r.table(t);
        let summary_label = if chosen.len() > 1 {
            "joint randomization"
        } else {
            "randomized source"
        };
        r.text(format!(
            "\n{summary_label}: mean {} = {}, std = {}\n",
            w.metric_name(),
            num(mean(&joint), 5),
            num(std_dev(&joint), 5)
        ));
        if let Some(gamma) = self.gamma {
            let n = noether_sample_size(gamma, 0.05, 0.05);
            r.text(format!(
                "comparison planning: detecting P(A > B) > {} (alpha = beta = 0.05) \
                 needs >= {n} paired runs (Noether)\n",
                num(gamma, 2)
            ));
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_pipeline::{CaseStudy, LinearWorkload, Scale, SyntheticWorkload};

    #[test]
    fn study_profiles_a_case_study() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let report = Study::new(&cs).seeds(4).run(&RunContext::serial());
        let text = report.render_text();
        assert!(text.contains("glue-rte-bert"));
        assert!(text.contains("Data (bootstrap)"));
        assert!(text.contains("Altogether (joint)"));
        assert!(!text.contains("HyperOpt"), "no budget, no xi_H row");
    }

    #[test]
    fn study_budget_adds_hopt_row() {
        let w = SyntheticWorkload::new(Scale::Test);
        let report = Study::new(&w).seeds(3).budget(2).run(&RunContext::serial());
        assert!(report
            .render_text()
            .contains("HyperOpt (Random Search, T=2)"));
    }

    #[test]
    fn study_randomize_restricts_sources() {
        let w = LinearWorkload::new(Scale::Test);
        let report = Study::new(&w)
            .randomize(&[VarianceSource::WeightsInit])
            .seeds(3)
            .run(&RunContext::serial());
        let text = report.render_text();
        assert!(text.contains("Weights init"));
        assert!(!text.contains("Data (bootstrap)"));
        // No bootstrap row: the ratio column must say what it is relative
        // to, and a single-source study has no separate joint row.
        assert!(text.contains("ratio/weights init"), "{text}");
        assert!(!text.contains("ratio/bootstrap"));
        assert!(!text.contains("Altogether (joint)"));
        assert!(text.contains("randomized source: mean"));
    }

    #[test]
    fn single_source_study_reuses_the_marginal_matrix() {
        // SyntheticWorkload's only xi_O source is the data split: the
        // summary must come from the marginal matrix, not a second
        // (redundant) joint measurement.
        let w = SyntheticWorkload::new(Scale::Test);
        let ctx = RunContext::serial_cached();
        let _ = Study::new(&w).seeds(4).run(&ctx);
        assert_eq!(
            ctx.cache().stats().rows_computed,
            4,
            "exactly one 4-row matrix measured"
        );
    }

    #[test]
    fn study_is_deterministic_and_cache_invariant() {
        let w = LinearWorkload::new(Scale::Test);
        let a = Study::new(&w).seeds(3).run(&RunContext::serial());
        let b = Study::new(&w).seeds(3).run(&RunContext::serial_cached());
        assert_eq!(a.render_text(), b.render_text());
    }

    #[test]
    fn plan_enumerates_sources_joint_and_hopt_rows() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let study = Study::new(&cs).seeds(3).budget(2);
        let plan = study.plan();
        let chosen = study.chosen_sources();
        assert!(chosen.len() > 1);
        assert_eq!(plan.len(), chosen.len() + 2, "sources + joint + xi_H");
        for (pm, src) in plan.iter().zip(&chosen) {
            assert_eq!(pm.unit, StudyUnit::Source(*src));
            assert_eq!(pm.base_seed, 0xA11D);
        }
        assert_eq!(plan[chosen.len()].unit, StudyUnit::Joint(chosen.clone()));
        let hopt = plan.last().unwrap();
        assert_eq!(hopt.unit, StudyUnit::HyperOpt);
        assert_eq!(hopt.base_seed, 0xA11D ^ 0xB0B0);
        assert_eq!(hopt.budget, 2);
        // Single source, no budget: the plan is exactly one marginal.
        let w = SyntheticWorkload::new(Scale::Test);
        let single = Study::new(&w).seeds(3).plan();
        assert_eq!(single.len(), 1);
        assert!(matches!(single[0].unit, StudyUnit::Source(_)));
    }

    #[test]
    fn executing_the_plan_precomputes_everything_run_reads() {
        // The worker-fleet invariant: a fleet that executes every
        // planned unit against a shared cache leaves `run` nothing to
        // compute, and the assembled report matches a cold run
        // byte-for-byte.
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let build = |w| Study::new(w).seeds(3).budget(2);
        let warm = RunContext::serial_cached();
        for pm in build(&cs).plan() {
            let measures = pm.execute(&cs, &warm);
            assert_eq!(measures.len(), 3);
            // The advertised key addresses the record just published.
            let key = warm.measure_key(&cs, pm.measure_kind(), pm.base_seed);
            assert_eq!(warm.cache().probe_rows(&key), 3, "{}", pm.label());
        }
        let computed = warm.cache().stats().rows_computed;
        let report = build(&cs).run(&warm);
        assert_eq!(
            warm.cache().stats().rows_computed,
            computed,
            "run computes nothing after the plan executed"
        );
        let cold = build(&cs).run(&RunContext::serial_cached());
        assert_eq!(report.render_text(), cold.render_text());
    }

    #[test]
    fn gamma_adds_planning_row() {
        let w = SyntheticWorkload::new(Scale::Test);
        let report = Study::new(&w)
            .seeds(2)
            .gamma(0.75)
            .run(&RunContext::serial());
        let text = report.render_text();
        assert!(
            text.contains("P(A > B) > 0.75") && text.contains(">= 29 paired runs"),
            "{text}"
        );
        // Without gamma the block is absent.
        let plain = Study::new(&w).seeds(2).run(&RunContext::serial());
        assert!(!plain.render_text().contains("comparison planning"));
    }

    #[test]
    #[should_panic(expected = "gamma must differ from 0.5")]
    fn gamma_half_rejected_at_builder() {
        let w = SyntheticWorkload::new(Scale::Test);
        let _ = Study::new(&w).gamma(0.5);
    }

    #[test]
    fn named_overrides_report_name() {
        let w = SyntheticWorkload::new(Scale::Test);
        let report = Study::new(&w)
            .named("workload-synth")
            .seeds(2)
            .run(&RunContext::serial());
        assert_eq!(report.name(), "workload-synth");
    }

    #[test]
    #[should_panic(expected = "no active source")]
    fn empty_selection_rejected() {
        let w = SyntheticWorkload::new(Scale::Test);
        // Weight init is inert for the closed-form workload.
        let _ = Study::new(&w)
            .randomize(&[VarianceSource::WeightsInit])
            .run(&RunContext::serial());
    }
}
