//! Comparisons across multiple datasets (paper Section 6).
//!
//! The paper discusses two families of recommendations for accumulating
//! evidence over several datasets:
//!
//! * **Demšar (2006)** — rank-based tests (Wilcoxon signed-rank across
//!   per-dataset scores). Statistically principled but powerless for the
//!   3–5 datasets of a typical ML paper (the datasets *are* the sample).
//! * **Dror et al. (2017)** — accept a method when it improves on *every*
//!   dataset, with a partial-conjunction / Bonferroni-style control over
//!   the per-dataset tests. Works at small dataset counts; grows stringent
//!   as the count rises.
//!
//! Both are provided so users can follow the paper's guidance: Dror for
//! few datasets, Demšar for many.

use crate::compare::{bonferroni_alpha, compare_paired, Decision};
use varbench_rng::Rng;
use varbench_stats::tests::wilcoxon::wilcoxon_signed_rank;
use varbench_stats::tests::Alternative;

/// Result of the Demšar-style rank test across datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemsarResult {
    /// Wilcoxon signed-rank statistic over the per-dataset score pairs.
    pub w_plus: f64,
    /// One-sided p-value for "A outperforms B across datasets".
    pub p_value: f64,
    /// Number of datasets with non-tied scores.
    pub n_datasets: usize,
}

/// Demšar's recommendation: Wilcoxon signed-rank over per-dataset scores.
///
/// `a_scores[i]` / `b_scores[i]` are the two algorithms' (aggregate)
/// performances on dataset `i`.
///
/// # Panics
///
/// Panics if lengths differ or all scores tie.
pub fn demsar_wilcoxon(a_scores: &[f64], b_scores: &[f64]) -> DemsarResult {
    let r = wilcoxon_signed_rank(a_scores, b_scores, Alternative::Greater);
    DemsarResult {
        w_plus: r.w_plus,
        p_value: r.p_value,
        n_datasets: r.n_used,
    }
}

/// Per-dataset paired measures for a cross-dataset comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMeasures {
    /// Dataset label.
    pub name: String,
    /// Paired measures of algorithm A.
    pub a: Vec<f64>,
    /// Paired measures of algorithm B.
    pub b: Vec<f64>,
}

/// Result of the Dror et al. all-datasets rule.
#[derive(Debug, Clone, PartialEq)]
pub struct DrorResult {
    /// Per-dataset decisions at the Bonferroni-corrected α.
    pub per_dataset: Vec<(String, Decision)>,
    /// The corrected per-dataset significance level used.
    pub corrected_alpha: f64,
    /// `true` iff A improved significantly-and-meaningfully on *every*
    /// dataset.
    pub accept: bool,
}

/// Dror et al. (2017)-style acceptance: run the paper's `P(A>B)` test on
/// each dataset at a Bonferroni-corrected significance level and accept
/// only if every dataset shows a significant, meaningful improvement.
///
/// # Panics
///
/// Panics if `measures` is empty, or as [`compare_paired`].
pub fn dror_all_datasets(
    measures: &[DatasetMeasures],
    gamma: f64,
    alpha: f64,
    resamples: usize,
    rng: &mut Rng,
) -> DrorResult {
    assert!(!measures.is_empty(), "need at least one dataset");
    let corrected = bonferroni_alpha(alpha, measures.len());
    let per_dataset: Vec<(String, Decision)> = measures
        .iter()
        .map(|m| {
            let t = compare_paired(&m.a, &m.b, gamma, corrected, resamples, rng);
            (m.name.clone(), t.decision)
        })
        .collect();
    let accept = per_dataset
        .iter()
        .all(|(_, d)| *d == Decision::SignificantAndMeaningful);
    DrorResult {
        per_dataset,
        corrected_alpha: corrected,
        accept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn winning_measures(n_datasets: usize, k: usize, edge: f64, seed: u64) -> Vec<DatasetMeasures> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n_datasets)
            .map(|d| {
                let base = 0.7 + 0.02 * d as f64;
                let a: Vec<f64> = (0..k).map(|_| rng.normal(base + edge, 0.01)).collect();
                let b: Vec<f64> = (0..k).map(|_| rng.normal(base, 0.01)).collect();
                DatasetMeasures {
                    name: format!("dataset-{d}"),
                    a,
                    b,
                }
            })
            .collect()
    }

    #[test]
    fn demsar_detects_consistent_wins_with_enough_datasets() {
        // 12 datasets, A consistently slightly better.
        let mut rng = Rng::seed_from_u64(1);
        let a: Vec<f64> = (0..12).map(|i| 0.7 + 0.01 * i as f64 + 0.005).collect();
        let b: Vec<f64> = (0..12).map(|i| 0.7 + 0.01 * i as f64).collect();
        let r = demsar_wilcoxon(&a, &b);
        assert!(r.p_value < 0.05, "p = {}", r.p_value);
        assert_eq!(r.n_datasets, 12);
        let _ = &mut rng;
    }

    #[test]
    fn demsar_powerless_at_three_datasets() {
        // The paper's §6 point: with 3 datasets even consistent wins are
        // not significant (the minimum possible one-sided p for n = 3 with
        // the normal approximation stays above 0.05).
        let a = [0.8, 0.9, 0.7];
        let b = [0.75, 0.85, 0.65];
        let r = demsar_wilcoxon(&a, &b);
        assert!(r.p_value > 0.05, "p = {} should be underpowered", r.p_value);
    }

    #[test]
    fn dror_accepts_consistent_improvement() {
        let measures = winning_measures(3, 30, 0.05, 2);
        let mut rng = Rng::seed_from_u64(3);
        let r = dror_all_datasets(&measures, 0.75, 0.05, 500, &mut rng);
        assert!(r.accept, "{r:?}");
        assert!((r.corrected_alpha - 0.05 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dror_rejects_when_one_dataset_fails() {
        let mut measures = winning_measures(3, 30, 0.05, 4);
        // Sabotage the last dataset: no effect there.
        let mut rng = Rng::seed_from_u64(5);
        measures[2].a = (0..30).map(|_| rng.normal(0.7, 0.01)).collect();
        measures[2].b = (0..30).map(|_| rng.normal(0.7, 0.01)).collect();
        let r = dror_all_datasets(&measures, 0.75, 0.05, 500, &mut rng);
        assert!(!r.accept);
        // The two healthy datasets still individually pass.
        assert_eq!(r.per_dataset[0].1, Decision::SignificantAndMeaningful);
    }

    #[test]
    fn dror_correction_grows_with_datasets() {
        let m3 = winning_measures(3, 20, 0.05, 6);
        let m10 = winning_measures(10, 20, 0.05, 6);
        let mut rng = Rng::seed_from_u64(7);
        let r3 = dror_all_datasets(&m3, 0.75, 0.05, 200, &mut rng);
        let r10 = dror_all_datasets(&m10, 0.75, 0.05, 200, &mut rng);
        assert!(r10.corrected_alpha < r3.corrected_alpha);
    }
}
