//! Sample-size planning for benchmark comparisons (paper Appendix C.3).

pub use varbench_stats::power::{noether_curve, noether_sample_size};

/// The meaningfulness threshold the paper recommends after its simulation
/// study: γ = 0.75 "gives empirically a criterion that separates well
/// benchmarking fluctuations from published improvements over the 5 case
/// studies".
pub const RECOMMENDED_GAMMA: f64 = 0.75;

/// The paper's recommended error rates: α = 0.05 and β = 0.05 ("we
/// recommend β = 0.05 for a strong statistical power").
pub const RECOMMENDED_ALPHA: f64 = 0.05;
/// See [`RECOMMENDED_ALPHA`].
pub const RECOMMENDED_BETA: f64 = 0.05;

/// The number of paired trainings the paper recommends: Noether's formula
/// at γ = 0.75, α = β = 0.05 → **29**.
///
/// # Example
///
/// ```
/// assert_eq!(varbench_core::sample_size::recommended(), 29);
/// ```
pub fn recommended() -> usize {
    noether_sample_size(RECOMMENDED_GAMMA, RECOMMENDED_ALPHA, RECOMMENDED_BETA)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommendation_is_29() {
        assert_eq!(recommended(), 29);
    }

    #[test]
    fn curve_passes_through_recommendation() {
        let curve = noether_curve(0.95, 90, RECOMMENDED_ALPHA, RECOMMENDED_BETA);
        let at_075 = curve
            .iter()
            .find(|(g, _)| (g - 0.75).abs() < 1e-9)
            .expect("0.75 on the grid");
        assert_eq!(at_075.1, 29);
    }
}
