//! The calibrated simulation study of the paper's Section 4.2: simulate
//! algorithm performances from variance parameters measured on the real
//! case studies, then characterize each conclusion criterion's detection
//! rates as the true `P(A > B)` sweeps from "no difference" to "large
//! difference" (Figs. 6 and I.6).

use crate::compare::{average_comparison, compare_paired_with, single_point_comparison};
use crate::ctx::RunContext;
use varbench_rng::{Rng, SeedTree};
use varbench_stats::standard_normal_quantile;
use varbench_stats::Normal;

/// Variance parameters of one simulated task, measured from estimator runs
/// on a case study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedTask {
    /// Std of a single ideal-estimator measure, `σ = sqrt(Var(R̂_e))`.
    pub sigma: f64,
    /// Std of the biased estimator's per-ξ offset,
    /// `sqrt(Var(µ̃(k)|ξ))` (the "bias" sampling stage of §4.2).
    pub bias_std: f64,
    /// Std of a conditioned measure, `sqrt(Var(R̂_e|ξ))`.
    pub measure_std: f64,
}

impl SimulatedTask {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if any std is negative or `sigma == 0`.
    pub fn new(sigma: f64, bias_std: f64, measure_std: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be > 0");
        assert!(bias_std >= 0.0 && measure_std >= 0.0, "stds must be >= 0");
        Self {
            sigma,
            bias_std,
            measure_std,
        }
    }

    /// The mean-performance gap that makes the true probability of
    /// outperforming equal `p` for ideal measures:
    /// `d = √2 σ Φ⁻¹(p)`.
    ///
    /// `p` is clamped to `[1e-9, 1 − 1e-9]` so the boundary values 0 and 1
    /// map to very large finite gaps (the paper's sweep includes
    /// `P(A>B) = 1`).
    pub fn gap_for_probability(&self, p: f64) -> f64 {
        let p = p.clamp(1e-9, 1.0 - 1e-9);
        std::f64::consts::SQRT_2 * self.sigma * standard_normal_quantile(p)
    }
}

/// Which estimator's sampling process the simulation mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimEstimator {
    /// Ideal: every measure i.i.d. `N(µ, σ²)`.
    Ideal,
    /// Biased: one shared offset `N(0, Var(µ̃|ξ))` per run, measures
    /// `N(µ + offset, Var(R̂|ξ))` — the two-stage process of §4.2.
    Biased,
}

/// Draws `k` simulated performance measures for one algorithm.
pub fn simulate_measures(
    task: &SimulatedTask,
    estimator: SimEstimator,
    mu: f64,
    k: usize,
    rng: &mut Rng,
) -> Vec<f64> {
    match estimator {
        SimEstimator::Ideal => (0..k).map(|_| rng.normal(mu, task.sigma)).collect(),
        SimEstimator::Biased => {
            let offset = rng.normal(0.0, task.bias_std);
            (0..k)
                .map(|_| rng.normal(mu + offset, task.measure_std))
                .collect()
        }
    }
}

/// Configuration of a detection-rate study.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionConfig {
    /// Number of paired measures per simulated comparison (paper: 50).
    pub k: usize,
    /// Simulated comparisons per point.
    pub n_simulations: usize,
    /// Meaningfulness threshold γ (paper recommendation: 0.75).
    pub gamma: f64,
    /// Threshold δ of the average criterion (paper: 1.9952 σ).
    pub delta: f64,
    /// Significance level.
    pub alpha: f64,
    /// Bootstrap resamples per test.
    pub resamples: usize,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        Self {
            k: 50,
            n_simulations: 200,
            gamma: 0.75,
            delta: 0.0, // callers set 1.9952·σ
            alpha: 0.05,
            resamples: 200,
        }
    }
}

/// Detection rates of every criterion at one true `P(A > B)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionRow {
    /// The true probability of outperforming.
    pub p_true: f64,
    /// Analytic power of the optimal oracle (known variances).
    pub oracle: f64,
    /// Single-point comparison detection rate.
    pub single_point: f64,
    /// Average-threshold criterion, ideal-estimator measures.
    pub average_ideal: f64,
    /// Average-threshold criterion, biased-estimator measures.
    pub average_biased: f64,
    /// `P(A>B)` test, ideal-estimator measures.
    pub prob_out_ideal: f64,
    /// `P(A>B)` test, biased-estimator measures.
    pub prob_out_biased: f64,
}

/// Outcome of one simulated comparison: did each criterion conclude that
/// A improves on B?
#[derive(Debug, Clone, Copy)]
struct SimOutcome {
    single: bool,
    avg_ideal: bool,
    avg_biased: bool,
    po_ideal: bool,
    po_biased: bool,
}

/// Runs one simulated comparison from its own RNG branch.
///
/// `unit_ctx` must be a *serial* context: this function already runs
/// inside one executor unit, so its bootstraps must not spawn a nested
/// worker scope — the context exists to carry the bootstrap mode.
fn simulate_one(
    task: &SimulatedTask,
    config: &DetectionConfig,
    mu_a: f64,
    mu_b: f64,
    rng: &mut Rng,
    unit_ctx: &RunContext,
) -> SimOutcome {
    let cmp = |a: &[f64], b: &[f64], rng: &mut Rng| {
        compare_paired_with(
            a,
            b,
            config.gamma,
            config.alpha,
            config.resamples,
            rng,
            unit_ctx,
        )
        .is_improvement()
    };
    // Ideal measures.
    let a = simulate_measures(task, SimEstimator::Ideal, mu_a, config.k, rng);
    let b = simulate_measures(task, SimEstimator::Ideal, mu_b, config.k, rng);
    let single = single_point_comparison(a[0], b[0]);
    let avg_ideal = average_comparison(&a, &b, config.delta);
    let po_ideal = cmp(&a, &b, rng);
    // Biased measures.
    let a = simulate_measures(task, SimEstimator::Biased, mu_a, config.k, rng);
    let b = simulate_measures(task, SimEstimator::Biased, mu_b, config.k, rng);
    let avg_biased = average_comparison(&a, &b, config.delta);
    let po_biased = cmp(&a, &b, rng);
    SimOutcome {
        single,
        avg_ideal,
        avg_biased,
        po_ideal,
        po_biased,
    }
}

/// Runs the detection-rate study across a sweep of true `P(A > B)` values.
///
/// Each simulated comparison draws from its own seed-tree branch
/// (`seed → point index → simulation index`), so the grid is a pure map
/// over independent units — see [`detection_study_with`] for the parallel
/// version, which produces bit-identical rows.
///
/// # Panics
///
/// Panics if `p_values` is empty or config fields are degenerate.
pub fn detection_study(
    task: &SimulatedTask,
    p_values: &[f64],
    config: &DetectionConfig,
    seed: u64,
) -> Vec<DetectionRow> {
    detection_study_with(task, p_values, config, seed, &RunContext::serial())
}

/// [`detection_study`] under an execution context: the
/// `p_values × n_simulations` grid fans out across the context's cores,
/// one unit per simulated comparison, with bit-identical results for any
/// thread count; the bootstraps inside each unit follow the context's
/// [`crate::ctx::BootstrapMode`] (each unit runs them serially on its own
/// thread — the grid is already the parallel axis).
///
/// # Panics
///
/// Panics if `p_values` is empty or config fields are degenerate.
pub fn detection_study_with(
    task: &SimulatedTask,
    p_values: &[f64],
    config: &DetectionConfig,
    seed: u64,
    ctx: &RunContext,
) -> Vec<DetectionRow> {
    assert!(!p_values.is_empty(), "need probability points");
    assert!(config.k >= 2, "k must be >= 2");
    assert!(config.n_simulations > 0, "need simulations");
    let tree = SeedTree::new(seed);
    let bootstrap = ctx.bootstrap();
    let units: Vec<(usize, usize)> = (0..p_values.len())
        .flat_map(|pi| (0..config.n_simulations).map(move |si| (pi, si)))
        .collect();
    let outcomes = ctx.runner().map_seeds(&units, |_, &(pi, si)| {
        let gap = task.gap_for_probability(p_values[pi]);
        let mu_b = 0.5; // arbitrary base performance
        let mu_a = mu_b + gap;
        let mut rng = tree
            .subtree_indexed("point", pi as u64)
            .rng_indexed("sim", si as u64);
        let unit_ctx = RunContext::serial().with_bootstrap(bootstrap);
        simulate_one(task, config, mu_a, mu_b, &mut rng, &unit_ctx)
    });
    let n = config.n_simulations as f64;
    p_values
        .iter()
        .enumerate()
        .map(|(pi, &p)| {
            let rows = &outcomes[pi * config.n_simulations..(pi + 1) * config.n_simulations];
            let count = |f: fn(&SimOutcome) -> bool| rows.iter().filter(|o| f(o)).count() as f64;
            DetectionRow {
                p_true: p,
                oracle: oracle_power(p, config.k, config.alpha),
                single_point: count(|o| o.single) / n,
                average_ideal: count(|o| o.avg_ideal) / n,
                average_biased: count(|o| o.avg_biased) / n,
                prob_out_ideal: count(|o| o.po_ideal) / n,
                prob_out_biased: count(|o| o.po_biased) / n,
            }
        })
        .collect()
}

/// Analytic power of the optimal test with perfect variance knowledge: a
/// z-test on the mean difference with known σ has non-centrality
/// `√k Φ⁻¹(p)`, so power `Φ(√k Φ⁻¹(p) − z_{1−α})`.
pub fn oracle_power(p_true: f64, k: usize, alpha: f64) -> f64 {
    let p_true = p_true.clamp(1e-9, 1.0 - 1e-9);
    let z_crit = standard_normal_quantile(1.0 - alpha);
    let effect = (k as f64).sqrt() * standard_normal_quantile(p_true);
    Normal::standard().cdf(effect - z_crit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> SimulatedTask {
        // Calibrated like a typical case study: bias and measure variance
        // splitting the total roughly evenly.
        SimulatedTask::new(0.02, 0.012, 0.016)
    }

    fn config() -> DetectionConfig {
        DetectionConfig {
            k: 50,
            n_simulations: 60,
            gamma: 0.75,
            delta: 1.9952 * 0.02,
            alpha: 0.05,
            resamples: 100,
        }
    }

    #[test]
    fn gap_mapping_is_monotone_and_signed() {
        let t = task();
        assert!(t.gap_for_probability(0.5).abs() < 1e-12);
        assert!(t.gap_for_probability(0.8) > 0.0);
        assert!(t.gap_for_probability(0.4) < 0.0);
        assert!(t.gap_for_probability(0.9) > t.gap_for_probability(0.8));
    }

    #[test]
    fn gap_recovers_probability() {
        // P(A>B) for N(d, σ²) vs N(0, σ²) = Φ(d/(√2σ)); invert and check.
        let t = task();
        let d = t.gap_for_probability(0.77);
        let p = Normal::standard().cdf(d / (std::f64::consts::SQRT_2 * t.sigma));
        assert!((p - 0.77).abs() < 1e-12);
    }

    #[test]
    fn oracle_power_boundaries() {
        assert!((oracle_power(0.5, 50, 0.05) - 0.05).abs() < 1e-10);
        assert!(oracle_power(0.9, 50, 0.05) > 0.99);
        assert!(oracle_power(0.4, 50, 0.05) < 0.01);
    }

    #[test]
    fn simulated_measures_have_requested_moments() {
        let t = task();
        let mut rng = Rng::seed_from_u64(1);
        let xs = simulate_measures(&t, SimEstimator::Ideal, 0.8, 20_000, &mut rng);
        let mean = varbench_stats::describe::mean(&xs);
        let std = varbench_stats::describe::std_dev(&xs);
        assert!((mean - 0.8).abs() < 0.001, "mean {mean}");
        assert!((std - 0.02).abs() < 0.001, "std {std}");
    }

    #[test]
    fn biased_measures_share_offset_within_run() {
        let t = SimulatedTask::new(0.02, 0.05, 0.001);
        let mut rng = Rng::seed_from_u64(2);
        let xs = simulate_measures(&t, SimEstimator::Biased, 0.0, 50, &mut rng);
        // Within one run, the large shared offset dominates: measures
        // cluster tightly around a common value that is itself far from 0.
        let m = varbench_stats::describe::mean(&xs);
        let s = varbench_stats::describe::std_dev(&xs);
        assert!(s < 0.01, "within-run spread {s}");
        // Across runs the offsets differ.
        let ys = simulate_measures(&t, SimEstimator::Biased, 0.0, 50, &mut rng);
        let m2 = varbench_stats::describe::mean(&ys);
        assert!((m - m2).abs() > 1e-4);
    }

    #[test]
    fn detection_rates_ordered_sensibly() {
        let rows = detection_study(&task(), &[0.5, 0.95], &config(), 3);
        assert_eq!(rows.len(), 2);
        let null = &rows[0];
        let strong = &rows[1];
        // Under H0 every criterion should rarely conclude improvement
        // (single-point is a coin flip by construction, ~50%).
        assert!(null.prob_out_ideal <= 0.10, "po {}", null.prob_out_ideal);
        assert!(null.average_ideal <= 0.10, "avg {}", null.average_ideal);
        assert!((null.single_point - 0.5).abs() < 0.2);
        // With a big effect the P(A>B) test detects much more often.
        assert!(strong.prob_out_ideal > 0.8, "po {}", strong.prob_out_ideal);
        assert!(strong.oracle > 0.99);
        // And detection grows with the effect.
        assert!(strong.prob_out_ideal > null.prob_out_ideal);
    }

    #[test]
    fn average_criterion_is_conservative() {
        // The paper's headline: the average criterion has very high false
        // negatives even for meaningful effects.
        let rows = detection_study(&task(), &[0.85], &config(), 4);
        let row = &rows[0];
        assert!(
            row.average_ideal <= row.prob_out_ideal + 0.15,
            "average {} vs P(A>B) {}",
            row.average_ideal,
            row.prob_out_ideal
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = detection_study(&task(), &[0.7], &config(), 5);
        let b = detection_study(&task(), &[0.7], &config(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_study_bit_identical_to_serial() {
        use crate::exec::Runner;
        use varbench_pipeline::MeasureCache;

        let serial = detection_study(&task(), &[0.6, 0.8], &config(), 6);
        for threads in [2, 4, 8] {
            let ctx = RunContext::new(Runner::new(threads), MeasureCache::disabled());
            let par = detection_study_with(&task(), &[0.6, 0.8], &config(), 6, &ctx);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn split_bootstrap_study_thread_count_invariant_but_new_stream() {
        use crate::ctx::BootstrapMode;
        use crate::exec::Runner;
        use varbench_pipeline::MeasureCache;

        let split_serial = detection_study_with(
            &task(),
            &[0.7],
            &config(),
            7,
            &RunContext::serial().with_bootstrap(BootstrapMode::SplitPerReplicate),
        );
        let split_par = detection_study_with(
            &task(),
            &[0.7],
            &config(),
            7,
            &RunContext::new(Runner::new(4), MeasureCache::disabled())
                .with_bootstrap(BootstrapMode::SplitPerReplicate),
        );
        assert_eq!(split_serial, split_par, "split mode must be 1-vs-N stable");
        // The split stream is a different randomization than the serial
        // stream — detection rates are estimates of the same quantities
        // but need not match bitwise (documented, not a bug).
        let serial = detection_study(&task(), &[0.7], &config(), 7);
        assert_eq!(split_serial.len(), serial.len());
    }

    #[test]
    #[should_panic(expected = "sigma must be > 0")]
    fn zero_sigma_rejected() {
        SimulatedTask::new(0.0, 0.1, 0.1);
    }
}
