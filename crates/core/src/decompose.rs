//! Bias / variance / correlation / MSE decomposition of estimators
//! (paper Eqs. 6–8, Fig. H.5) and standard-error curves (Fig. 5 / H.4).

use varbench_stats::correlation::average_pairwise_correlation;
use varbench_stats::describe::{mean, std_dev, variance};

/// The decomposition of a biased estimator's mean-squared error
/// (paper Eq. 8):
///
/// `E[(µ̃(k) − µ)²] = Var(µ̃(k)|ξ) + (E[µ̃(k)|ξ] − µ)²`
///
/// with `Var(µ̃(k)|ξ)` driven by the average correlation ρ among the
/// conditioned measures (Eq. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decomposition {
    /// `E[µ̃(k)|ξ] − µ`: the estimator's bias.
    pub bias: f64,
    /// `Var(µ̃(k)|ξ)`: variance of the estimator across realizations of
    /// the fixed ξ.
    pub variance: f64,
    /// Average pairwise correlation ρ among measures induced by
    /// conditioning on ξ (Eq. 7).
    pub rho: f64,
    /// Mean squared error `variance + bias²`.
    pub mse: f64,
    /// Average within-group variance `Var(R̂_e|ξ)`.
    pub measure_variance: f64,
}

/// Decomposes estimator quality from repeated runs.
///
/// `groups[r]` holds the k measures of repetition `r` (one arbitrary fixed
/// ξ each — the paper uses 20 repetitions); `mu` is the reference expected
/// performance (estimated with the ideal estimator).
///
/// # Panics
///
/// Panics if fewer than 2 groups, ragged groups, or groups shorter than 2.
pub fn decompose(groups: &[Vec<f64>], mu: f64) -> Decomposition {
    assert!(groups.len() >= 2, "need at least 2 repetitions");
    let k = groups[0].len();
    assert!(k >= 2, "need at least 2 measures per repetition");
    for g in groups {
        assert_eq!(g.len(), k, "ragged repetition groups");
    }
    let group_means: Vec<f64> = groups.iter().map(|g| mean(g)).collect();
    let bias = mean(&group_means) - mu;
    let est_variance = variance(&group_means, 1);
    let rho = average_pairwise_correlation(groups);
    let measure_variance = groups.iter().map(|g| variance(g, 1)).sum::<f64>() / groups.len() as f64;
    Decomposition {
        bias,
        variance: est_variance,
        rho,
        mse: est_variance + bias * bias,
        measure_variance,
    }
}

/// Predicted estimator variance from Eq. 7:
/// `Var(µ̃(k)|ξ) = Var(R̂|ξ)/k + (k−1)/k · ρ · Var(R̂|ξ)`.
///
/// With ρ > 0 the variance floors at `ρ·Var(R̂|ξ)` no matter how large `k`
/// gets — the reason more seeds cannot rescue a biased estimator.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn biased_variance_formula(measure_variance: f64, rho: f64, k: usize) -> f64 {
    assert!(k > 0, "k must be > 0");
    let kf = k as f64;
    measure_variance / kf + (kf - 1.0) / kf * rho * measure_variance
}

/// Empirical standard error of an estimator at each budget `k = 1..=k_max`:
/// the standard deviation, across repetition groups, of the mean of each
/// group's first `k` measures. These are the curves of Fig. 5 / Fig. H.4.
///
/// # Panics
///
/// Panics if fewer than 2 groups or `k_max` exceeds a group's length.
pub fn std_err_curve(groups: &[Vec<f64>], k_max: usize) -> Vec<f64> {
    assert!(groups.len() >= 2, "need at least 2 repetitions");
    for g in groups {
        assert!(g.len() >= k_max, "groups shorter than k_max");
    }
    (1..=k_max)
        .map(|k| {
            let means: Vec<f64> = groups.iter().map(|g| mean(&g[..k])).collect();
            if means.len() >= 2 {
                std_dev(&means)
            } else {
                0.0
            }
        })
        .collect()
}

/// Analytic standard error of the *ideal* estimator at each `k`:
/// `σ/√k`, with `sigma` measured from one ideal-estimator run.
///
/// # Panics
///
/// Panics if `sigma < 0` or `k_max == 0`.
pub fn ideal_std_err_curve(sigma: f64, k_max: usize) -> Vec<f64> {
    assert!(sigma >= 0.0, "sigma must be >= 0");
    assert!(k_max > 0, "k_max must be > 0");
    (1..=k_max).map(|k| sigma / (k as f64).sqrt()).collect()
}

/// The equivalent ideal-estimator budget of a biased estimator: the
/// smallest `k_ideal` such that `σ_ideal/√k_ideal ≤ se`; `None` if even
/// `k_limit` ideal samples cannot match it. The paper reports e.g.
/// "FixHOptEst(k=100, Init) converges to the equivalent of µ̂(k=2)".
pub fn equivalent_ideal_k(sigma_ideal: f64, se: f64, k_limit: usize) -> Option<usize> {
    (1..=k_limit).find(|&k| sigma_ideal / (k as f64).sqrt() <= se)
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_rng::Rng;

    /// Synthesizes biased-estimator groups with a known correlation
    /// structure: measure = mu + group_bias + shared·common + noise.
    fn synthetic_groups(
        reps: usize,
        k: usize,
        mu: f64,
        bias_std: f64,
        noise_std: f64,
        seed: u64,
    ) -> Vec<Vec<f64>> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..reps)
            .map(|_| {
                let b = rng.normal(0.0, bias_std);
                (0..k)
                    .map(|_| mu + b + rng.normal(0.0, noise_std))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn unbiased_groups_have_small_bias() {
        let groups = synthetic_groups(40, 30, 0.8, 0.0, 0.05, 1);
        let d = decompose(&groups, 0.8);
        assert!(d.bias.abs() < 0.01, "bias {}", d.bias);
        assert!(d.rho.abs() < 0.15, "rho {}", d.rho);
    }

    #[test]
    fn group_bias_appears_as_variance_and_rho() {
        // Per-group offsets create both estimator variance and positive
        // correlation between measure positions.
        let groups = synthetic_groups(40, 30, 0.8, 0.05, 0.05, 2);
        let d = decompose(&groups, 0.8);
        assert!(d.rho > 0.3, "rho {}", d.rho);
        assert!(
            d.variance > 0.05f64.powi(2) / 2.0,
            "variance {}",
            d.variance
        );
        // MSE consistency.
        assert!((d.mse - (d.variance + d.bias * d.bias)).abs() < 1e-15);
    }

    #[test]
    fn formula_matches_empirical_variance() {
        let groups = synthetic_groups(200, 20, 0.5, 0.04, 0.06, 3);
        let d = decompose(&groups, 0.5);
        let predicted = biased_variance_formula(d.measure_variance, d.rho, 20);
        // Within a factor ~1.5 (both sides are noisy estimates).
        assert!(
            (predicted / d.variance).abs() > 0.5 && (predicted / d.variance).abs() < 2.0,
            "predicted {predicted} vs empirical {}",
            d.variance
        );
    }

    #[test]
    fn formula_floors_at_rho_variance() {
        let v = biased_variance_formula(1.0, 0.5, 1_000_000);
        assert!((v - 0.5).abs() < 1e-3, "floor {v}");
        // And equals full variance at k = 1.
        assert_eq!(biased_variance_formula(1.0, 0.5, 1), 1.0);
    }

    #[test]
    fn std_err_curve_decreases_for_independent_measures() {
        let groups = synthetic_groups(60, 50, 0.0, 0.0, 1.0, 4);
        let curve = std_err_curve(&groups, 50);
        assert_eq!(curve.len(), 50);
        // σ/√k shape: k=49 ≈ 1/7 of k=1.
        let ratio = curve[0] / curve[48];
        assert!(ratio > 4.0, "ratio {ratio}");
    }

    #[test]
    fn std_err_curve_floors_for_correlated_measures() {
        let groups = synthetic_groups(60, 50, 0.0, 1.0, 0.1, 5);
        let curve = std_err_curve(&groups, 50);
        // The shared group offset dominates: no 1/√k decay.
        let ratio = curve[0] / curve[49];
        assert!(
            ratio < 2.0,
            "correlated curve should flatten: ratio {ratio}"
        );
    }

    #[test]
    fn ideal_curve_shape() {
        let curve = ideal_std_err_curve(2.0, 4);
        assert_eq!(curve.len(), 4);
        assert!((curve[0] - 2.0).abs() < 1e-15);
        assert!((curve[3] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn equivalent_k_examples() {
        // se equal to sigma → k = 1; se = sigma/10 → k = 100.
        assert_eq!(equivalent_ideal_k(1.0, 1.0, 1000), Some(1));
        assert_eq!(equivalent_ideal_k(1.0, 0.1, 1000), Some(100));
        assert_eq!(equivalent_ideal_k(1.0, 1e-6, 100), None);
    }

    #[test]
    #[should_panic(expected = "ragged repetition groups")]
    fn ragged_groups_rejected() {
        decompose(&[vec![1.0, 2.0], vec![1.0]], 0.0);
    }
}
