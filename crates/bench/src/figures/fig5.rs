//! **Fig. 5 / Fig. H.4** — standard error of the ideal and biased
//! estimators as a function of the number of samples k.
//!
//! `IdealEst(k)` re-runs hyperparameter optimization for every sample;
//! `FixHOptEst(k, ·)` tunes once and randomizes a ξ_O subset. The paper's
//! headline: randomizing *more* sources brings the cheap biased estimator
//! close to the ideal one ("for no additional computational cost"), while
//! `FixHOptEst(k, Init)` — the literature's default — stalls at the
//! equivalent of µ̂(k≈2).

use crate::args::Effort;
use crate::figures::ESTIMATOR_SEED;
use crate::registry::RunContext;
use varbench_core::decompose::{equivalent_ideal_k, ideal_std_err_curve, std_err_curve};
use varbench_core::estimator::{fix_hopt_estimator, ideal_estimator, Randomize};
use varbench_core::report::{num, Report, Table};
use varbench_pipeline::{CaseStudy, HpoAlgorithm};
use varbench_stats::describe::{std_dev, std_of_std};

/// Configuration of the Fig. 5 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Case-study effort preset.
    pub effort: Effort,
    /// Maximum estimator budget k (paper: 100).
    pub k_max: usize,
    /// Repetitions of each biased estimator (paper: 20).
    pub reps: usize,
    /// Ideal-estimator samples used to estimate σ.
    pub k_ideal: usize,
    /// HPO budget per procedure (paper: 200).
    pub budget: usize,
}

impl Config {
    /// Smoke-test preset.
    pub fn test() -> Self {
        Self {
            effort: Effort::Test,
            k_max: 4,
            reps: 3,
            k_ideal: 3,
            budget: 3,
        }
    }

    /// Default preset.
    pub fn quick() -> Self {
        Self {
            effort: Effort::Quick,
            k_max: 20,
            reps: 8,
            k_ideal: 12,
            budget: 15,
        }
    }

    /// Paper-faithful preset.
    pub fn full() -> Self {
        Self {
            effort: Effort::Full,
            k_max: 100,
            reps: 20,
            k_ideal: 100,
            budget: 200,
        }
    }

    /// Preset for an effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Test => Self::test(),
            Effort::Quick => Self::quick(),
            Effort::Full => Self::full(),
        }
    }
}

/// Standard-error curves of every estimator on one case study.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorCurves {
    /// Case-study name.
    pub task: &'static str,
    /// σ of a single ideal measure.
    pub sigma_ideal: f64,
    /// Ideal `σ/√k` curve, k = 1..=k_max.
    pub ideal: Vec<f64>,
    /// `(variant, empirical std-err curve, fits per run)` for each
    /// FixHOptEst variant.
    pub biased: Vec<(Randomize, Vec<f64>, usize)>,
    /// Fits consumed by one ideal-estimator run of k_max samples.
    pub ideal_fits: usize,
}

/// Runs the estimator study on one case study: the ideal estimator's
/// samples and each biased repetition's `k` measures are independent seed
/// branches that fan out on the context's runner, and every matrix is
/// memoized in the measurement cache (Fig. 6's calibration and Fig. H.5's
/// decomposition reuse them). The curves are bit-identical to the serial
/// uncached path for any thread count.
pub fn study_case(cs: &CaseStudy, config: &Config, seed: u64, ctx: &RunContext) -> EstimatorCurves {
    let algo = HpoAlgorithm::RandomSearch;
    let ideal_run = ideal_estimator(cs, config.k_ideal, algo, config.budget, seed, ctx);
    let sigma = std_dev(&ideal_run.measures);
    let ideal_fits_per_kmax = config.k_max * (config.budget + 1);

    // One biased-estimator run per (variant, repetition) pair; the
    // parallelism lives inside each run's k measures.
    let variants = [Randomize::Init, Randomize::Data, Randomize::All];
    let groups: Vec<Vec<f64>> = variants
        .iter()
        .flat_map(|&v| (0..config.reps).map(move |r| (v, r as u64)))
        .map(|(variant, r)| {
            fix_hopt_estimator(cs, config.k_max, algo, config.budget, seed, r, variant, ctx)
                .measures
        })
        .collect();

    let biased = variants
        .iter()
        .enumerate()
        .map(|(vi, &variant)| {
            let group = groups[vi * config.reps..(vi + 1) * config.reps].to_vec();
            let curve = std_err_curve(&group, config.k_max);
            (variant, curve, config.budget + config.k_max)
        })
        .collect();
    EstimatorCurves {
        task: cs.name(),
        sigma_ideal: sigma,
        ideal: ideal_std_err_curve(sigma, config.k_max),
        biased,
        ideal_fits: ideal_fits_per_kmax,
    }
}

/// Builds the full Fig. 5 / H.4 report.
pub fn report_with(config: &Config, ctx: &RunContext) -> Report {
    let mut r = Report::new("fig5", "Figure 5 / H.4");
    r.text("Figure 5 / H.4: standard error of estimators vs number of samples k\n");
    r.text(format!(
        "(k_max = {}, reps = {}, budget = {})\n\n",
        config.k_max, config.reps, config.budget
    ));
    let checkpoints: Vec<usize> = [1usize, 2, 5, 10, 20, 50, 100]
        .iter()
        .copied()
        .filter(|&k| k <= config.k_max)
        .collect();

    for cs in CaseStudy::all(config.effort.scale()) {
        let curves = study_case(&cs, config, ESTIMATOR_SEED, ctx);
        r.text(format!(
            "== {} (sigma_ideal = {}, +/- band = sigma/sqrt(2(k-1)) ) ==\n",
            curves.task,
            num(curves.sigma_ideal, 5)
        ));
        let mut t = Table::new(
            std::iter::once("estimator".to_string())
                .chain(checkpoints.iter().map(|k| format!("k={k}")))
                .chain(["fits".to_string(), "equiv. ideal k".to_string()])
                .collect(),
        );
        let mut row = vec!["IdealEst".to_string()];
        for &k in &checkpoints {
            row.push(num(curves.ideal[k - 1], 5));
        }
        row.push(curves.ideal_fits.to_string());
        row.push("-".into());
        t.add_row(row);
        for (variant, curve, fits) in &curves.biased {
            let mut row = vec![variant.display_name().to_string()];
            for &k in &checkpoints {
                row.push(num(curve[k - 1], 5));
            }
            row.push(fits.to_string());
            let eq = equivalent_ideal_k(
                curves.sigma_ideal,
                *curve.last().expect("non-empty curve"),
                10_000,
            );
            row.push(eq.map_or("-".into(), |k| k.to_string()));
            t.add_row(row);
        }
        r.table(t);
        let band = std_of_std(curves.sigma_ideal, config.k_max.max(2));
        r.text(format!(
            "uncertainty band at k_max: +/- {}\n\n",
            num(band, 5)
        ));
    }
    r.text(
        "Expected shape (paper): FixHOptEst(k, All) closest to IdealEst;\n\
         FixHOptEst(k, Init) flattens early (equivalent of ideal k ~ 2);\n\
         biased estimators cost O(k+T) fits vs O(kT) for the ideal (~51x).\n",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_pipeline::Scale;

    #[test]
    fn curves_have_expected_shapes() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let c = study_case(&cs, &Config::test(), 1, &RunContext::serial());
        assert_eq!(c.ideal.len(), 4);
        assert_eq!(c.biased.len(), 3);
        for (variant, curve, fits) in &c.biased {
            assert_eq!(curve.len(), 4, "{variant:?}");
            assert!(curve.iter().all(|s| s.is_finite() && *s >= 0.0));
            assert_eq!(*fits, 3 + 4);
        }
        // Ideal curve strictly decreasing.
        assert!(c.ideal[0] > c.ideal[3]);
        // Cost gap: ideal k_max fits far above biased.
        assert!(c.ideal_fits > c.biased[0].2);
    }

    #[test]
    fn report_renders_estimators() {
        let r = report_with(&Config::test(), &RunContext::serial()).render_text();
        assert!(r.contains("IdealEst"));
        assert!(r.contains("FixHOptEst(k, Init)"));
        assert!(r.contains("FixHOptEst(k, All)"));
        assert!(r.contains("glue-sst2-bert"));
    }
}
