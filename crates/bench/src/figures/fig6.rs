//! **Fig. 6** — rate of detections of the three comparison methods, on
//! simulations calibrated against the case studies.
//!
//! The x-axis sweeps the true `P(A > B)` from 0.4 (B better) through 0.5
//! (no difference, H0) past γ = 0.75 (meaningful improvement, H1). The
//! paper's findings: single-point comparison has ~10% false positives and
//! ~75% false negatives; the average-with-δ criterion is extremely
//! conservative; the `P(A>B)` test balances both and degrades gracefully
//! with the biased estimator.

use crate::args::Effort;
use crate::calibrate::calibrate;
use crate::figures::ESTIMATOR_SEED;
use crate::registry::RunContext;
use varbench_core::compare::PAPER_DELTA_MULTIPLIER;
use varbench_core::report::{num, pct, Report, Table};
use varbench_core::simulation::{detection_study_with, DetectionConfig, SimulatedTask};
use varbench_pipeline::{CaseStudy, HpoAlgorithm};

/// Configuration of the Fig. 6 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Case-study effort preset (drives calibration cost).
    pub effort: Effort,
    /// Paired measures per simulated comparison (paper: 50).
    pub k: usize,
    /// Simulations per sweep point (paper: ~1000).
    pub n_simulations: usize,
    /// Bootstrap resamples inside each test.
    pub resamples: usize,
    /// Calibration: ideal samples / biased k / repetitions / HPO budget.
    pub calib: (usize, usize, usize, usize),
}

impl Config {
    /// Smoke-test preset.
    pub fn test() -> Self {
        Self {
            effort: Effort::Test,
            k: 20,
            n_simulations: 30,
            resamples: 100,
            calib: (3, 4, 3, 3),
        }
    }

    /// Default preset. Calibration must run at Quick scale: at Test scale
    /// the tiny test sets inflate `Var(µ̃|ξ)` to the level of `Var(R̂|ξ)`,
    /// which exaggerates the biased estimator's degradation. The
    /// calibration budget matches Fig. 5's Quick budget so the two
    /// figures share estimator matrices through the measurement cache.
    pub fn quick() -> Self {
        Self {
            effort: Effort::Quick,
            k: 50,
            n_simulations: 300,
            resamples: 200,
            calib: (10, 12, 6, 15),
        }
    }

    /// Paper-faithful preset.
    pub fn full() -> Self {
        Self {
            effort: Effort::Quick,
            k: 50,
            n_simulations: 1000,
            resamples: 1000,
            calib: (20, 30, 12, 30),
        }
    }

    /// Preset for an effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Test => Self::test(),
            Effort::Quick => Self::quick(),
            Effort::Full => Self::full(),
        }
    }
}

/// The sweep of true P(A > B) values used by the paper (0.4 → 1.0).
pub fn probability_sweep() -> Vec<f64> {
    (0..=12).map(|i| 0.4 + 0.05 * i as f64).collect()
}

/// Builds the full Fig. 6 report: calibrate on one representative case
/// study (estimator matrices shared with Fig. 5 through the cache), then
/// run the detection-rate simulation.
pub fn report_with(config: &Config, ctx: &RunContext) -> Report {
    let mut r = Report::new("fig6", "Figure 6");
    r.text("Figure 6: detection rates of comparison methods (calibrated simulation)\n\n");

    // Calibrate on the RTE analog (the paper's most variance-dominated
    // task); the qualitative picture is task-independent.
    let cs = CaseStudy::glue_rte_bert(config.effort.scale());
    let (k_ideal, k_cal, reps, budget) = config.calib;
    let cal = calibrate(
        &cs,
        k_ideal,
        k_cal,
        reps,
        HpoAlgorithm::RandomSearch,
        budget,
        ESTIMATOR_SEED,
        ctx,
    );
    let task: SimulatedTask = cal.task;
    r.text(format!(
        "calibration ({}): sigma = {}, bias_std = {}, measure_std = {}\n\n",
        cs.name(),
        num(task.sigma, 5),
        num(task.bias_std, 5),
        num(task.measure_std, 5)
    ));

    let det = DetectionConfig {
        k: config.k,
        n_simulations: config.n_simulations,
        gamma: 0.75,
        delta: PAPER_DELTA_MULTIPLIER * task.sigma,
        alpha: 0.05,
        resamples: config.resamples,
    };
    let rows = detection_study_with(&task, &probability_sweep(), &det, 0xF1660, ctx);

    let mut t = Table::new(vec![
        "P(A>B)".into(),
        "oracle".into(),
        "single-point".into(),
        "avg (ideal)".into(),
        "avg (biased)".into(),
        "P(A>B) test (ideal)".into(),
        "P(A>B) test (biased)".into(),
    ]);
    for row in &rows {
        t.add_row(vec![
            num(row.p_true, 2),
            pct(row.oracle),
            pct(row.single_point),
            pct(row.average_ideal),
            pct(row.average_biased),
            pct(row.prob_out_ideal),
            pct(row.prob_out_biased),
        ]);
    }
    r.table(t);
    r.text(format!(
        "\n(k = {}, {} simulations/point, gamma = 0.75, delta = 1.9952 sigma)\n",
        config.k, config.n_simulations
    ));
    r.text(
        "Expected shape (paper): single-point ~ coin flip everywhere; average\n\
         criterion conservative (<5% FP but ~90% FN at H1); P(A>B) test ~5% FP\n\
         and much lower FN, approaching the oracle with the ideal estimator.\n",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_paper_range() {
        let s = probability_sweep();
        assert!((s[0] - 0.4).abs() < 1e-12);
        assert!((s.last().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(s.len(), 13);
    }

    #[test]
    fn report_runs_and_orders_criteria() {
        let r = report_with(&Config::test(), &RunContext::serial()).render_text();
        assert!(r.contains("calibration"));
        assert!(r.contains("oracle"));
        assert!(r.contains("single-point"));
    }
}
