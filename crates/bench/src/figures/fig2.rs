//! **Fig. 2** — error due to data sampling: the binomial model of test-set
//! noise versus the standard deviation observed when bootstrapping the
//! data.
//!
//! The theoretical curve is `σ(acc) = sqrt(τ(1−τ)/n′)`; the crosses are
//! the empirical stds of the test metric across random data splits of the
//! classification case studies.

use crate::args::Effort;
use crate::figures::SOURCE_STUDY_SEED;
use crate::registry::RunContext;
use varbench_core::estimator::source_variance_study;
use varbench_core::report::{num, Report, Table};
use varbench_pipeline::{CaseStudy, HpoAlgorithm, VarianceSource};
use varbench_stats::describe::{mean, std_dev};
use varbench_stats::Binomial;

/// Configuration of the Fig. 2 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Case-study effort preset.
    pub effort: Effort,
    /// Number of random splits per empirical point.
    pub n_splits: usize,
}

impl Config {
    /// Smoke-test preset.
    pub fn test() -> Self {
        Self {
            effort: Effort::Test,
            n_splits: 5,
        }
    }

    /// Default preset.
    pub fn quick() -> Self {
        Self {
            effort: Effort::Quick,
            n_splits: 40,
        }
    }

    /// Paper-faithful preset.
    pub fn full() -> Self {
        Self {
            effort: Effort::Full,
            n_splits: 200,
        }
    }

    /// Preset for an effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Test => Self::test(),
            Effort::Quick => Self::quick(),
            Effort::Full => Self::full(),
        }
    }
}

/// One empirical point: a task's observed split-to-split std vs the
/// binomial prediction at its test size and accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalPoint {
    /// Case-study name.
    pub task: &'static str,
    /// Test-set size n′.
    pub n_test: usize,
    /// Mean accuracy τ across splits.
    pub tau: f64,
    /// Observed std across random splits.
    pub observed_std: f64,
    /// Binomial-model std `sqrt(τ(1−τ)/n′)`.
    pub binomial_std: f64,
}

/// Measures the empirical point for one classification case study: the
/// bootstrap score matrix is shared with Fig. 1's `Data (bootstrap)` row
/// through the context's measurement cache.
pub fn empirical_point(
    cs: &CaseStudy,
    config: &Config,
    seed: u64,
    ctx: &RunContext,
) -> EmpiricalPoint {
    let measures = source_variance_study(
        cs,
        VarianceSource::DataSplit,
        config.n_splits,
        HpoAlgorithm::RandomSearch,
        1,
        seed,
        ctx,
    );
    let tau = mean(&measures);
    let n_test = match cs.split_spec() {
        varbench_pipeline::SplitSpec::Stratified { per_class_test, .. } => {
            per_class_test * cs.pool().num_classes()
        }
        varbench_pipeline::SplitSpec::Plain { n_test, .. } => n_test,
    };
    EmpiricalPoint {
        task: cs.name(),
        n_test,
        tau,
        observed_std: std_dev(&measures),
        binomial_std: Binomial::accuracy_std(n_test as u64, tau.clamp(0.01, 0.99)),
    }
}

/// The paper's theoretical curves: σ(acc) for the three case-study
/// accuracies across test-set sizes 10²…10⁶.
pub fn theoretical_curves() -> Vec<(f64, Vec<(u64, f64)>)> {
    let taus = [0.66, 0.91, 0.95];
    taus.iter()
        .map(|&tau| {
            let pts = (2..=6)
                .map(|e| {
                    let n = 10u64.pow(e);
                    (n, Binomial::accuracy_std(n, tau))
                })
                .collect();
            (tau, pts)
        })
        .collect()
}

/// Builds the full Fig. 2 report.
pub fn report_with(config: &Config, ctx: &RunContext) -> Report {
    let mut r = Report::new("fig2", "Figure 2");
    r.text("Figure 2: test-set sampling noise — binomial model vs bootstrap\n\n");

    r.text("Theory: sigma(accuracy) = sqrt(tau(1-tau)/n'), in % accuracy\n");
    let mut t = Table::new(vec![
        "tau".into(),
        "n=100".into(),
        "n=1e3".into(),
        "n=1e4".into(),
        "n=1e5".into(),
        "n=1e6".into(),
    ]);
    for (tau, pts) in theoretical_curves() {
        let mut row = vec![num(tau, 2)];
        for (_, sd) in pts {
            row.push(num(100.0 * sd, 3));
        }
        t.add_row(row);
    }
    r.table(t);
    r.text("\n");

    r.text("Practice: observed std across random splits (classification tasks)\n");
    let mut t = Table::new(vec![
        "task".into(),
        "n'".into(),
        "tau".into(),
        "observed std%".into(),
        "binomial std%".into(),
        "ratio".into(),
    ]);
    let scale = config.effort.scale();
    let tasks = [
        CaseStudy::glue_rte_bert(scale),
        CaseStudy::glue_sst2_bert(scale),
        CaseStudy::cifar10_vgg11(scale),
    ];
    for cs in &tasks {
        let p = empirical_point(cs, config, SOURCE_STUDY_SEED, ctx);
        t.add_row(vec![
            p.task.to_string(),
            p.n_test.to_string(),
            num(p.tau, 3),
            num(100.0 * p.observed_std, 3),
            num(100.0 * p.binomial_std, 3),
            num(p.observed_std / p.binomial_std, 2),
        ]);
    }
    r.table(t);
    r.text(
        "\nExpected shape (paper): observed std within ~2x of the binomial model,\n\
         confirming data-sampling variance is explained by test-set size.\n",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_pipeline::Scale;

    #[test]
    fn theory_matches_closed_form() {
        let curves = theoretical_curves();
        assert_eq!(curves.len(), 3);
        // τ=0.66, n=277-ish range: check the n=100 value.
        let (tau, pts) = &curves[0];
        assert_eq!(*tau, 0.66);
        let (n, sd) = pts[0];
        assert_eq!(n, 100);
        assert!((sd - (0.66f64 * 0.34 / 100.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empirical_point_is_same_order_as_binomial() {
        let cs = CaseStudy::glue_sst2_bert(Scale::Test);
        let p = empirical_point(&cs, &Config::test(), 1, &RunContext::serial());
        assert!(p.observed_std > 0.0);
        // Within an order of magnitude at tiny scale.
        let ratio = p.observed_std / p.binomial_std;
        assert!(ratio > 0.2 && ratio < 12.0, "ratio {ratio}");
    }

    #[test]
    fn report_contains_tables() {
        let r = report_with(&Config::test(), &RunContext::serial()).render_text();
        assert!(r.contains("binomial"));
        assert!(r.contains("glue-rte-bert"));
        assert!(r.contains("cifar10-vgg11"));
    }
}
