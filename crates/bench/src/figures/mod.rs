//! One module per paper artifact; each exposes a `Config` with presets and
//! a `run` function returning the rendered report.

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod figc1;
pub mod figf2;
pub mod figg3;
pub mod figh5;
pub mod figi6;
pub mod interactions;
pub mod tables;
