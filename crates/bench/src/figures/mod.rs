//! One module per paper artifact; each exposes a `Config` with
//! `test`/`quick`/`full` presets (selected uniformly via `for_effort`)
//! and a single `report_with(config, &RunContext)` entry point returning
//! a structured [`varbench_core::report::Report`] — the context's runner
//! and measurement cache are the only execution knobs
//! (`RunContext::serial()` reproduces the classic serial uncached path).
//! The registry in [`crate::registry`] wires all of them to the
//! `varbench` CLI.
//!
//! # Shared measurement seeds
//!
//! Artifacts that measure the *same* quantity use the *same* base seed,
//! so the measurement cache can serve one artifact's score matrices to
//! another (matrices extend by prefix — see
//! `varbench_pipeline::cache`):
//!
//! * [`SOURCE_STUDY_SEED`] roots every default-hyperparameter variance
//!   study — Fig. 1's per-source rows, Fig. 2's bootstrap points,
//!   Fig. G.3's normality panels, the interaction study's marginals and
//!   joint matrices, and the ablation budget sweep (via
//!   [`hopt_study_seed`]);
//! * [`ESTIMATOR_SEED`] roots every estimator run — Fig. 5's curves,
//!   Fig. 6's calibration, Fig. H.5's decomposition, and the Table 8
//!   tuned model's hyperparameter search.

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod figc1;
pub mod figf2;
pub mod figg3;
pub mod figh5;
pub mod figi6;
pub mod interactions;
pub mod tables;

/// Base seed of every default-hyperparameter variance study (per-source
/// and joint score matrices).
pub const SOURCE_STUDY_SEED: u64 = 0xF161;

/// Base seed of every estimator measurement (ideal samples, biased
/// repetitions, and their tuning procedures).
pub const ESTIMATOR_SEED: u64 = 0xF165;

/// Base seed of the ξ_H (independent-HPO) variance studies — Fig. 1's
/// HPO-algorithm rows and the ablation budget sweep.
pub const fn hopt_study_seed() -> u64 {
    SOURCE_STUDY_SEED ^ 0xB0B0
}
