//! **Fig. F.2** — hyperparameter-optimization curves: best-so-far
//! validation objective (and final test performance) for Bayesian
//! optimization, noisy grid search, and random search, across independent
//! ξ_H seeds.
//!
//! The paper's two observations: (1) typical search spaces are well
//! optimized by all three algorithms; (2) the across-seed standard
//! deviation stabilizes early, so larger HPO budgets would not shrink ξ_H
//! variance.

use crate::args::Effort;
use crate::registry::RunContext;
use varbench_core::report::{num, Report, Table};
use varbench_pipeline::{CaseStudy, HpoAlgorithm, SeedAssignment, VarianceSource};
use varbench_stats::describe::{mean, std_dev};

/// Configuration of the Fig. F.2 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Case-study effort preset.
    pub effort: Effort,
    /// Independent HPO executions per algorithm (paper: 20).
    pub reps: usize,
    /// Trials per execution (paper: 200).
    pub budget: usize,
}

impl Config {
    /// Smoke-test preset.
    pub fn test() -> Self {
        Self {
            effort: Effort::Test,
            reps: 2,
            budget: 5,
        }
    }

    /// Default preset.
    pub fn quick() -> Self {
        Self {
            effort: Effort::Quick,
            reps: 6,
            budget: 25,
        }
    }

    /// Paper-faithful preset.
    pub fn full() -> Self {
        Self {
            effort: Effort::Full,
            reps: 20,
            budget: 200,
        }
    }

    /// Preset for an effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Test => Self::test(),
            Effort::Quick => Self::quick(),
            Effort::Full => Self::full(),
        }
    }
}

/// Mean ± std of the best-so-far curves of one algorithm on one task.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveSummary {
    /// The HPO algorithm.
    pub algo: HpoAlgorithm,
    /// `(trial index, mean best-so-far objective, std)` at checkpoints.
    pub checkpoints: Vec<(usize, f64, f64)>,
    /// Mean and std of the final test metric across repetitions.
    pub test: (f64, f64),
}

/// Runs the study for one case study.
pub fn study_case(cs: &CaseStudy, config: &Config, seed: u64) -> Vec<CurveSummary> {
    let marks: Vec<usize> = [1usize, 2, 5, 10, 25, 50, 100, 200]
        .iter()
        .copied()
        .filter(|&m| m <= config.budget)
        .collect();
    HpoAlgorithm::STUDIED
        .iter()
        .map(|&algo| {
            let mut curves: Vec<Vec<f64>> = Vec::new();
            let mut tests = Vec::new();
            for r in 0..config.reps {
                let seeds = SeedAssignment::all_fixed(seed)
                    .with_varied(VarianceSource::HyperOpt, r as u64 + 1);
                let result = cs.run_pipeline(&seeds, algo, config.budget);
                curves.push(result.history.best_so_far());
                tests.push(result.test_metric);
            }
            let checkpoints = marks
                .iter()
                .map(|&m| {
                    let at: Vec<f64> = curves.iter().map(|c| c[m - 1]).collect();
                    let sd = if at.len() >= 2 { std_dev(&at) } else { 0.0 };
                    (m, mean(&at), sd)
                })
                .collect();
            let test_sd = if tests.len() >= 2 {
                std_dev(&tests)
            } else {
                0.0
            };
            CurveSummary {
                algo,
                checkpoints,
                test: (mean(&tests), test_sd),
            }
        })
        .collect()
}

/// Builds the full Fig. F.2 report.
///
/// The optimization *curves* need whole `History` objects, not score
/// matrices, so this artifact does not use the measurement cache; the
/// context is accepted for registry uniformity.
pub fn report_with(config: &Config, _ctx: &RunContext) -> Report {
    let mut r = Report::new("figf2", "Figure F.2");
    r.text("Figure F.2: HPO best-so-far validation objective (mean +/- std)\n");
    r.text(format!(
        "({} seeds, budget {})\n\n",
        config.reps, config.budget
    ));
    for cs in CaseStudy::all(config.effort.scale()) {
        r.text(format!("== {} ==\n", cs.name()));
        let summaries = study_case(&cs, config, 0xF16F);
        let marks: Vec<usize> = summaries[0]
            .checkpoints
            .iter()
            .map(|(m, _, _)| *m)
            .collect();
        let mut t = Table::new(
            std::iter::once("algorithm".to_string())
                .chain(marks.iter().map(|m| format!("t={m}")))
                .chain(["test metric".to_string()])
                .collect(),
        );
        for s in &summaries {
            let mut row = vec![s.algo.display_name().to_string()];
            for (_, m, sd) in &s.checkpoints {
                row.push(format!("{}+/-{}", num(*m, 4), num(*sd, 4)));
            }
            row.push(format!("{}+/-{}", num(s.test.0, 4), num(s.test.1, 4)));
            t.add_row(row);
        }
        r.table(t);
        r.text("\n");
    }
    r.text(
        "Expected shape (paper): all algorithms converge on these spaces; the\n\
         across-seed std stabilizes well before the full budget.\n",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_pipeline::Scale;

    #[test]
    fn curves_are_monotone_nonincreasing() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let summaries = study_case(&cs, &Config::test(), 1);
        assert_eq!(summaries.len(), 3);
        for s in &summaries {
            let means: Vec<f64> = s.checkpoints.iter().map(|(_, m, _)| *m).collect();
            for w in means.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "{:?} not monotone: {means:?}", s.algo);
            }
            assert!(s.test.0 > 0.0 && s.test.0 <= 1.0);
        }
    }

    #[test]
    fn report_lists_algorithms() {
        let r = report_with(&Config::test(), &RunContext::serial()).render_text();
        assert!(r.contains("Random Search"));
        assert!(r.contains("Noisy Grid Search"));
        assert!(r.contains("Bayes Opt"));
    }
}
