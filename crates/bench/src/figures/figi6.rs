//! **Fig. I.6** — robustness of the comparison methods to the sample size
//! and to the threshold γ.
//!
//! Two sweeps, each at four true `P(A > B)` levels (0.5, 0.6, 0.7, 0.8):
//! detection rate vs sample size N (top row of the paper's figure) and vs
//! γ (bottom row). Criteria: average comparison with δ = Φ⁻¹(γ)·σ·√2
//! (the paper's conversion), the `P(A>B)` test, and a Welch t-test.

use crate::args::Effort;
use crate::registry::RunContext;
use varbench_core::compare::{average_comparison, compare_paired_with};
use varbench_core::report::{num, pct, Report, Table};
use varbench_core::simulation::{simulate_measures, SimEstimator, SimulatedTask};
use varbench_rng::SeedTree;
use varbench_stats::standard_normal_quantile;
use varbench_stats::tests::{parametric::t_test_welch, Alternative};

/// Configuration of the Fig. I.6 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Simulations per grid point.
    pub n_simulations: usize,
    /// Bootstrap resamples inside each `P(A>B)` test.
    pub resamples: usize,
    /// σ of the simulated ideal measures.
    pub sigma: f64,
}

impl Config {
    /// Smoke-test preset.
    pub fn test() -> Self {
        Self {
            n_simulations: 20,
            resamples: 80,
            sigma: 0.02,
        }
    }

    /// Default preset.
    pub fn quick() -> Self {
        Self {
            n_simulations: 200,
            resamples: 200,
            sigma: 0.02,
        }
    }

    /// Paper-faithful preset.
    pub fn full() -> Self {
        Self {
            n_simulations: 1000,
            resamples: 1000,
            sigma: 0.02,
        }
    }

    /// Preset for an effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Test => Self::test(),
            Effort::Quick => Self::quick(),
            Effort::Full => Self::full(),
        }
    }
}

/// Detection rates of the three criteria at one grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePoint {
    /// Average-comparison detection rate.
    pub average: f64,
    /// `P(A>B)`-test detection rate.
    pub prob_outperform: f64,
    /// Welch t-test detection rate.
    pub t_test: f64,
}

/// Measures detection rates at sample size `n`, threshold `gamma`, true
/// probability `p_true`: each simulated comparison draws from its own
/// seed-tree branch, so the `n_simulations` units fan out across the
/// context's cores with bit-identical rates for any thread count.
pub fn rates_at(
    config: &Config,
    n: usize,
    gamma: f64,
    p_true: f64,
    seed: u64,
    ctx: &RunContext,
) -> RatePoint {
    let task = SimulatedTask::new(config.sigma, config.sigma / 2.0, config.sigma);
    let gap = task.gap_for_probability(p_true);
    // The paper converts gamma to an average threshold via
    // delta = Phi^-1(gamma) * sigma (Appendix I).
    let delta = standard_normal_quantile(gamma) * config.sigma;
    let tree = SeedTree::new(seed);
    let bootstrap = ctx.bootstrap();
    let outcomes = ctx.runner().map_indexed(config.n_simulations, |si| {
        let mut rng = tree.rng_indexed("sim", si as u64);
        let a = simulate_measures(&task, SimEstimator::Ideal, 0.5 + gap, n, &mut rng);
        let b = simulate_measures(&task, SimEstimator::Ideal, 0.5, n, &mut rng);
        let avg = average_comparison(&a, &b, delta);
        // Serial per-unit context inheriting the bootstrap mode: this
        // closure already runs inside an executor unit, so its bootstrap
        // must not spawn a nested worker scope.
        let unit_ctx = RunContext::serial().with_bootstrap(bootstrap);
        let po = compare_paired_with(&a, &b, gamma, 0.05, config.resamples, &mut rng, &unit_ctx)
            .is_improvement();
        let tt = t_test_welch(&a, &b, Alternative::Greater).p_value < 0.05;
        (avg, po, tt)
    });
    let nf = config.n_simulations as f64;
    RatePoint {
        average: outcomes.iter().filter(|o| o.0).count() as f64 / nf,
        prob_outperform: outcomes.iter().filter(|o| o.1).count() as f64 / nf,
        t_test: outcomes.iter().filter(|o| o.2).count() as f64 / nf,
    }
}

/// The four true-probability panels of the paper's figure.
pub const P_LEVELS: [f64; 4] = [0.5, 0.6, 0.7, 0.8];

/// Builds the full Fig. I.6 report (pure simulation — the context's
/// runner drives the grid; no case-study measurements to cache).
pub fn report_with(config: &Config, ctx: &RunContext) -> Report {
    let mut report = Report::new("figi6", "Figure I.6");
    report.text("Figure I.6: robustness of comparison methods\n\n");

    report.text("-- detection rate vs sample size (gamma = 0.75) --\n");
    let sizes = [5usize, 10, 20, 50, 100];
    for &p in &P_LEVELS {
        report.text(format!("true P(A>B) = {p}\n"));
        let mut t = Table::new(vec![
            "N".into(),
            "average".into(),
            "P(A>B) test".into(),
            "t-test".into(),
        ]);
        for &n in &sizes {
            let r = rates_at(config, n, 0.75, p, 0xF1166 + n as u64, ctx);
            t.add_row(vec![
                n.to_string(),
                pct(r.average),
                pct(r.prob_outperform),
                pct(r.t_test),
            ]);
        }
        report.table(t);
        report.text("\n");
    }

    report.text("-- detection rate vs gamma (N = 50) --\n");
    let gammas = [0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9];
    for &p in &P_LEVELS {
        report.text(format!("true P(A>B) = {p}\n"));
        let mut t = Table::new(vec![
            "gamma".into(),
            "average".into(),
            "P(A>B) test".into(),
            "t-test".into(),
        ]);
        for &g in &gammas {
            let r = rates_at(config, 50, g, p, 0xF1266 + (g * 100.0) as u64, ctx);
            t.add_row(vec![
                num(g, 2),
                pct(r.average),
                pct(r.prob_outperform),
                pct(r.t_test),
            ]);
        }
        report.table(t);
        report.text("\n");
    }
    report.text(
        "Expected shape (paper): at P=0.5 all criteria hold low false positives\n\
         (t-test nominal 5%); detection of true effects grows with N; raising\n\
         gamma makes the P(A>B) test more conservative.\n",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_rates_controlled() {
        let r = rates_at(&Config::test(), 50, 0.75, 0.5, 1, &RunContext::serial());
        assert!(r.prob_outperform <= 0.15, "po {}", r.prob_outperform);
        assert!(r.t_test <= 0.2, "tt {}", r.t_test);
    }

    #[test]
    fn detection_grows_with_n() {
        let ctx = RunContext::serial();
        let small = rates_at(&Config::test(), 5, 0.75, 0.8, 2, &ctx);
        let large = rates_at(&Config::test(), 100, 0.75, 0.8, 2, &ctx);
        assert!(large.t_test >= small.t_test);
    }

    #[test]
    fn report_renders_grids() {
        let cfg = Config {
            n_simulations: 5,
            resamples: 50,
            sigma: 0.02,
        };
        let r = report_with(&cfg, &RunContext::serial()).render_text();
        assert!(r.contains("vs sample size"));
        assert!(r.contains("vs gamma"));
        assert!(r.contains("true P(A>B) = 0.8"));
    }
}
