//! **Fig. C.1** — Noether's minimal sample size for reliably detecting
//! `P(A > B) > γ`, as a function of γ.

use varbench_core::report::{num, Table};
use varbench_core::sample_size::{noether_curve, recommended, RECOMMENDED_GAMMA};

/// Runs the Fig. C.1 reproduction.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Figure C.1: minimum sample size to detect P(A>B) > gamma\n");
    out.push_str("(alpha = 0.05, beta = 0.05)\n\n");
    let mut t = Table::new(vec![
        "gamma".into(),
        "min sample size".into(),
        "note".into(),
    ]);
    for (gamma, n) in noether_curve(0.95, 18, 0.05, 0.05) {
        let note = if (gamma - RECOMMENDED_GAMMA).abs() < 1e-9 {
            "* recommended"
        } else {
            ""
        };
        t.add_row(vec![num(gamma, 3), n.to_string(), note.into()]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nRecommended threshold gamma = {RECOMMENDED_GAMMA} -> N = {} trainings\n",
        recommended()
    ));
    out.push_str(
        "Expected shape (paper): below gamma ~ 0.6 sample sizes explode (>500);\n\
         at gamma = 0.75 a reasonable N = 29 suffices.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_recommendation() {
        let r = run();
        assert!(r.contains("N = 29"));
        assert!(r.contains("recommended"));
    }

    #[test]
    fn report_shows_explosion_at_small_gamma() {
        let r = run();
        // The first sweep points (gamma near 0.525) need hundreds of
        // samples; check a 3-digit-plus number appears.
        let big_n = r
            .lines()
            .filter_map(|l| l.split_whitespace().nth(1))
            .filter_map(|w| w.parse::<usize>().ok())
            .max()
            .unwrap_or(0);
        assert!(big_n > 400, "max N in table: {big_n}");
    }
}
