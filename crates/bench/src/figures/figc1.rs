//! **Fig. C.1** — Noether's minimal sample size for reliably detecting
//! `P(A > B) > γ`, as a function of γ.

use crate::args::Effort;
use crate::registry::RunContext;
use varbench_core::report::{num, Report, Table};
use varbench_core::sample_size::{noether_curve, recommended, RECOMMENDED_GAMMA};

/// Configuration of the Fig. C.1 sweep (pure computation — no training).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Sweep points between γ = 0.5 and 0.95. Must be a multiple of 9 so
    /// the recommended γ = 0.75 lands exactly on a sweep point.
    pub points: usize,
    /// Type-I error rate of the planned test.
    pub alpha: f64,
    /// Type-II error rate of the planned test.
    pub beta: f64,
}

impl Config {
    /// Smoke-test preset: a coarse sweep.
    pub fn test() -> Self {
        Self {
            points: 9,
            alpha: 0.05,
            beta: 0.05,
        }
    }

    /// Default preset (the paper's resolution).
    pub fn quick() -> Self {
        Self {
            points: 18,
            alpha: 0.05,
            beta: 0.05,
        }
    }

    /// Fine-sweep preset.
    pub fn full() -> Self {
        Self {
            points: 36,
            alpha: 0.05,
            beta: 0.05,
        }
    }

    /// Preset for an effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Test => Self::test(),
            Effort::Quick => Self::quick(),
            Effort::Full => Self::full(),
        }
    }
}

/// Builds the full Fig. C.1 report. The context is accepted for registry
/// uniformity; this artifact is pure closed-form computation.
pub fn report_with(config: &Config, _ctx: &RunContext) -> Report {
    let mut r = Report::new("figc1", "Figure C.1");
    r.text("Figure C.1: minimum sample size to detect P(A>B) > gamma\n");
    r.text(format!(
        "(alpha = {}, beta = {})\n\n",
        config.alpha, config.beta
    ));
    let mut t = Table::new(vec![
        "gamma".into(),
        "min sample size".into(),
        "note".into(),
    ]);
    for (gamma, n) in noether_curve(0.95, config.points, config.alpha, config.beta) {
        let note = if (gamma - RECOMMENDED_GAMMA).abs() < 1e-9 {
            "* recommended"
        } else {
            ""
        };
        t.add_row(vec![num(gamma, 3), n.to_string(), note.into()]);
    }
    r.table(t);
    r.text(format!(
        "\nRecommended threshold gamma = {RECOMMENDED_GAMMA} -> N = {} trainings\n",
        recommended()
    ));
    r.text(
        "Expected shape (paper): below gamma ~ 0.6 sample sizes explode (>500);\n\
         at gamma = 0.75 a reasonable N = 29 suffices.\n",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_recommendation_at_every_preset() {
        for config in [Config::test(), Config::quick(), Config::full()] {
            let r = report_with(&config, &RunContext::serial()).render_text();
            assert!(r.contains("N = 29"), "{config:?}");
            assert!(r.contains("recommended"), "{config:?}");
        }
    }

    #[test]
    fn report_shows_explosion_at_small_gamma() {
        let r = report_with(&Config::test(), &RunContext::serial()).render_text();
        // The first sweep points (gamma near the coin flip) need hundreds
        // of samples; check a 3-digit-plus number appears.
        let big_n = r
            .lines()
            .filter_map(|l| l.split_whitespace().nth(1))
            .filter_map(|w| w.parse::<usize>().ok())
            .max()
            .unwrap_or(0);
        assert!(big_n > 400, "max N in table: {big_n}");
    }

    #[test]
    fn preset_resolutions_scale() {
        assert!(Config::test().points < Config::quick().points);
        assert!(Config::quick().points < Config::full().points);
        for c in [Config::test(), Config::quick(), Config::full()] {
            assert_eq!(c.points % 9, 0, "0.75 must land on a sweep point");
        }
    }
}
