//! **Extension ablations** backing two of the paper's textual claims.
//!
//! 1. **HPO budget vs ξ_H variance** — "the standard deviation stabilizes
//!    early ... larger budgets for hyperparameter optimization would not
//!    reduce the variability of the results in similar search spaces"
//!    (Fig. F.2 discussion). We measure the across-seed std of the tuned
//!    pipeline's test performance as a function of the HPO budget T.
//!
//! 2. **Bootstrap vs cross-validation** — Appendix B prefers
//!    out-of-bootstrap because CV's folds share most of their training
//!    data, making fold measures correlated and the implied variance
//!    estimate unrepresentative of fresh splits. We measure the spread of
//!    test performance across k-fold folds vs across OOB splits with
//!    matched test-set sizes, plus the train-set overlap that drives the
//!    correlation.

use crate::args::Effort;
use crate::figures::hopt_study_seed;
use crate::registry::RunContext;
use varbench_core::estimator::source_variance_study;
use varbench_core::report::{num, Report, Table};
use varbench_data::split::{kfold, Split};
use varbench_pipeline::{CaseStudy, HpoAlgorithm, SeedAssignment, VarianceSource};
use varbench_rng::Rng;
use varbench_stats::describe::std_dev;

/// Configuration of the ablation studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Case-study effort preset.
    pub effort: Effort,
    /// Independent HPO seeds per budget level.
    pub n_hopt: usize,
    /// Budget levels to sweep.
    pub budgets: [usize; 4],
    /// Number of folds / OOB splits in the resampling comparison.
    pub n_splits: usize,
}

impl Config {
    /// Smoke-test preset.
    pub fn test() -> Self {
        Self {
            effort: Effort::Test,
            n_hopt: 3,
            budgets: [2, 4, 6, 8],
            n_splits: 4,
        }
    }

    /// Default preset.
    pub fn quick() -> Self {
        Self {
            effort: Effort::Quick,
            n_hopt: 8,
            budgets: [5, 10, 20, 40],
            n_splits: 9,
        }
    }

    /// Paper-faithful-ish preset.
    pub fn full() -> Self {
        Self {
            effort: Effort::Full,
            n_hopt: 20,
            budgets: [25, 50, 100, 200],
            n_splits: 10,
        }
    }

    /// Preset for an effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Test => Self::test(),
            Effort::Quick => Self::quick(),
            Effort::Full => Self::full(),
        }
    }
}

/// ξ_H std at each HPO budget level for one case study: each budget
/// level's ξ_H matrix is cached; levels matching Fig. 1's HPO budget
/// share its rows outright.
pub fn budget_sweep(
    cs: &CaseStudy,
    config: &Config,
    seed: u64,
    ctx: &RunContext,
) -> Vec<(usize, f64)> {
    config
        .budgets
        .iter()
        .map(|&budget| {
            let measures = source_variance_study(
                cs,
                VarianceSource::HyperOpt,
                config.n_hopt,
                HpoAlgorithm::RandomSearch,
                budget,
                seed,
                ctx,
            );
            (budget, std_dev(&measures))
        })
        .collect()
}

/// Result of the bootstrap-vs-CV comparison on one case study.
#[derive(Debug, Clone, PartialEq)]
pub struct ResamplingComparison {
    /// Std of test performance across CV folds.
    pub cv_std: f64,
    /// Std of test performance across OOB splits.
    pub oob_std: f64,
    /// Average pairwise train-set overlap between CV folds.
    pub cv_train_overlap: f64,
    /// Average pairwise (unique-element) train-set overlap between OOB
    /// splits.
    pub oob_train_overlap: f64,
}

/// Runs the bootstrap-vs-CV comparison on a case study with plain splits.
///
/// # Panics
///
/// Panics if the case study uses stratified splits (comparison defined for
/// the plain-split tasks) or `n_splits < 2`.
pub fn resampling_comparison(cs: &CaseStudy, config: &Config, seed: u64) -> ResamplingComparison {
    assert!(config.n_splits >= 2, "need at least 2 splits");
    let n = cs.pool().len();
    let params = cs.default_params().to_vec();
    let seeds = SeedAssignment::all_fixed(seed);

    // Cross-validation: k folds, train on k−1, evaluate on the fold.
    let mut rng = Rng::seed_from_u64(seed);
    let folds = kfold(n, config.n_splits, &mut rng);
    let cv_measures: Vec<f64> = folds
        .iter()
        .map(|(train, test)| {
            let model = cs.train_model(&params, train, &seeds);
            cs.evaluate(&model, test)
        })
        .collect();

    // Out-of-bootstrap: same number of splits, test size matched to the
    // fold size.
    let fold_test = folds[0].1.len();
    let oob_measures: Vec<f64> = (0..config.n_splits)
        .map(|i| {
            let mut srng = Rng::seed_from_u64(seed ^ (0xB00 + i as u64));
            // No validation set needed here; cap the test size by the
            // expected out-of-bag mass (~0.368 n).
            let test_size = fold_test.min(n / 4);
            let split = varbench_data::split::oob_split(n, n, 0, test_size, &mut srng);
            let model = cs.train_model(&params, split.train(), &seeds);
            cs.evaluate(&model, split.test())
        })
        .collect();

    // Train-set overlaps: |unique(a) ∩ unique(b)| / min(|unique(a)|,
    // |unique(b)|), via a sorted merge (same value a hash-set
    // intersection gave, without the nondeterministic iteration).
    let overlap = |a: &[usize], b: &[usize]| -> f64 {
        let dedup = |xs: &[usize]| {
            let mut v = xs.to_vec();
            v.sort_unstable();
            v.dedup();
            v
        };
        let (sa, sb) = (dedup(a), dedup(b));
        let (mut i, mut j, mut common) = (0usize, 0usize, 0usize);
        while i < sa.len() && j < sb.len() {
            match sa[i].cmp(&sb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    common += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        common as f64 / sa.len().min(sb.len()).max(1) as f64
    };
    let mut cv_overlap = Vec::new();
    for i in 0..folds.len() {
        for j in (i + 1)..folds.len() {
            cv_overlap.push(overlap(&folds[i].0, &folds[j].0));
        }
    }
    let oob_trains: Vec<Split> = (0..config.n_splits)
        .map(|i| {
            let mut srng = Rng::seed_from_u64(seed ^ (0xB00 + i as u64));
            varbench_data::split::oob_split(n, n, 0, fold_test.min(n / 4), &mut srng)
        })
        .collect();
    let mut oob_overlap = Vec::new();
    for i in 0..oob_trains.len() {
        for j in (i + 1)..oob_trains.len() {
            oob_overlap.push(overlap(oob_trains[i].train(), oob_trains[j].train()));
        }
    }

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    ResamplingComparison {
        cv_std: std_dev(&cv_measures),
        oob_std: std_dev(&oob_measures),
        cv_train_overlap: mean(&cv_overlap),
        oob_train_overlap: mean(&oob_overlap),
    }
}

/// Builds the full ablation report.
pub fn report_with(config: &Config, ctx: &RunContext) -> Report {
    let mut r = Report::new("ablations", "Extension: ablations");
    r.text("Extension ablations\n\n");

    r.text("-- (1) xi_H std vs HPO budget T (random search) --\n");
    let scale = config.effort.scale();
    let mut t = Table::new(
        std::iter::once("task".to_string())
            .chain(config.budgets.iter().map(|b| format!("T={b}")))
            .collect(),
    );
    for cs in [CaseStudy::glue_rte_bert(scale), CaseStudy::mhc_mlp(scale)] {
        let sweep = budget_sweep(&cs, config, hopt_study_seed(), ctx);
        let mut row = vec![cs.name().to_string()];
        for (_, sd) in &sweep {
            row.push(num(*sd, 5));
        }
        t.add_row(row);
    }
    r.table(t);
    r.text(
        "Expected (paper Fig. F.2 discussion): the std does not shrink much\n\
         with larger budgets — xi_H variance is not a small-budget artifact.\n\n",
    );

    r.text("-- (2) bootstrap vs cross-validation (paper Appendix B) --\n");
    let cs = CaseStudy::glue_rte_bert(scale);
    let cmp = resampling_comparison(&cs, config, 0xAB1B);
    let mut t = Table::new(vec![
        "quantity".into(),
        "cross-validation".into(),
        "out-of-bootstrap".into(),
    ]);
    t.add_row(vec![
        "std of test metric across splits".into(),
        num(cmp.cv_std, 5),
        num(cmp.oob_std, 5),
    ]);
    t.add_row(vec![
        "avg pairwise train-set overlap".into(),
        num(cmp.cv_train_overlap, 3),
        num(cmp.oob_train_overlap, 3),
    ]);
    r.table(t);
    r.text(
        "CV folds share most of their training data (overlap ~ (k-2)/(k-1)),\n\
         correlating the measures; OOB splits are closer to independent draws\n\
         and support any number of resamples at constant train size.\n",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_pipeline::Scale;

    #[test]
    fn budget_sweep_shapes() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let sweep = budget_sweep(&cs, &Config::test(), 1, &RunContext::serial());
        assert_eq!(sweep.len(), 4);
        assert!(sweep.iter().all(|(_, sd)| sd.is_finite() && *sd >= 0.0));
    }

    #[test]
    fn resampling_comparison_overlap_ordering() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let cmp = resampling_comparison(&cs, &Config::test(), 2);
        assert!(
            cmp.cv_train_overlap > cmp.oob_train_overlap,
            "CV trains must overlap more: {} vs {}",
            cmp.cv_train_overlap,
            cmp.oob_train_overlap
        );
        assert!(cmp.cv_std >= 0.0 && cmp.oob_std >= 0.0);
    }

    #[test]
    fn report_renders_both_sections() {
        let r = report_with(&Config::test(), &RunContext::serial()).render_text();
        assert!(r.contains("HPO budget"));
        assert!(r.contains("cross-validation"));
    }
}
