//! **Fig. 1** — variance of each source of variation, per case study, as a
//! fraction of the bootstrap (data-sampling) variance.
//!
//! Protocol (paper §2.2): fix every seed; for each source in turn,
//! randomize that source's seed `n` times and record the test performance;
//! report the standard deviation. Hyperparameter-optimization variance is
//! measured by running `n_hopt` independent HPO procedures per algorithm.

use crate::args::Effort;
use crate::figures::SOURCE_STUDY_SEED;
use crate::registry::RunContext;
use varbench_core::estimator::source_variance_study;
use varbench_core::report::{bar, num, Report, Table};
use varbench_pipeline::{CaseStudy, HpoAlgorithm, VarianceSource};
use varbench_stats::describe::std_dev;

/// Configuration of the Fig. 1 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Case-study effort preset.
    pub effort: Effort,
    /// Seeds per ξ_O source (paper: 200).
    pub n_seeds: usize,
    /// Independent HPO procedures per algorithm (paper: 20).
    pub n_hopt: usize,
    /// Trials per HPO procedure (paper: 200).
    pub budget: usize,
}

impl Config {
    /// Smoke-test preset.
    pub fn test() -> Self {
        Self {
            effort: Effort::Test,
            n_seeds: 4,
            n_hopt: 2,
            budget: 3,
        }
    }

    /// Default (minutes-scale) preset.
    pub fn quick() -> Self {
        Self {
            effort: Effort::Quick,
            n_seeds: 30,
            n_hopt: 8,
            budget: 20,
        }
    }

    /// Paper-faithful preset.
    pub fn full() -> Self {
        Self {
            effort: Effort::Full,
            n_seeds: 200,
            n_hopt: 20,
            budget: 200,
        }
    }

    /// Preset for an effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Test => Self::test(),
            Effort::Quick => Self::quick(),
            Effort::Full => Self::full(),
        }
    }
}

/// The measured standard deviations for one case study.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskVariances {
    /// Case-study name.
    pub task: &'static str,
    /// `(source label, std)` rows, ξ_O sources then HPO algorithms.
    pub rows: Vec<(String, f64)>,
    /// The bootstrap (data-split) std used as the reference unit.
    pub bootstrap_std: f64,
}

/// Runs the Fig. 1 study on one case study: each source study's `n`
/// re-seeded trainings (and each HPO algorithm's independent procedures)
/// fan out on the context's runner and are memoized in its measurement
/// cache, bit-identical for any context.
pub fn study_case(cs: &CaseStudy, config: &Config, seed: u64, ctx: &RunContext) -> TaskVariances {
    let mut rows = Vec::new();
    let mut bootstrap_std = f64::NAN;
    // ξ_O sources, bootstrap first (it is the reference).
    for &src in cs.active_sources() {
        if src.is_hyperopt() {
            continue;
        }
        let measures = source_variance_study(
            cs,
            src,
            config.n_seeds,
            HpoAlgorithm::RandomSearch,
            1,
            seed,
            ctx,
        );
        let sd = std_dev(&measures);
        if src == VarianceSource::DataSplit {
            bootstrap_std = sd;
        }
        rows.push((src.display_name().to_string(), sd));
    }
    // ξ_H: one row per studied HPO algorithm.
    for algo in HpoAlgorithm::STUDIED {
        let measures = source_variance_study(
            cs,
            VarianceSource::HyperOpt,
            config.n_hopt,
            algo,
            config.budget,
            seed ^ 0xB0B0,
            ctx,
        );
        rows.push((algo.display_name().to_string(), std_dev(&measures)));
    }
    TaskVariances {
        task: cs.name(),
        rows,
        bootstrap_std,
    }
}

/// Builds the full Fig. 1 report.
pub fn report_with(config: &Config, ctx: &RunContext) -> Report {
    let mut r = Report::new("fig1", "Figure 1");
    r.text("Figure 1: sources of variation, std as fraction of bootstrap std\n");
    r.text(format!(
        "(n_seeds = {}, n_hopt = {}, budget = {})\n\n",
        config.n_seeds, config.n_hopt, config.budget
    ));
    for cs in CaseStudy::all(config.effort.scale()) {
        let tv = study_case(&cs, config, SOURCE_STUDY_SEED, ctx);
        r.text(format!("== {} ({}) ==\n", tv.task, cs.metric()));
        let mut table = Table::new(vec![
            "source".into(),
            "std".into(),
            "ratio/bootstrap".into(),
            "".into(),
        ]);
        for (label, sd) in &tv.rows {
            let ratio = if tv.bootstrap_std > 0.0 {
                sd / tv.bootstrap_std
            } else {
                f64::NAN
            };
            table.add_row(vec![
                label.clone(),
                num(*sd, 5),
                num(ratio, 2),
                bar(ratio, 2.0, 24),
            ]);
        }
        r.table(table);
        r.text("\n");
    }
    r.text(
        "Expected shape (paper): bootstrap largest; weights init / data order\n\
         ~0.2-0.7x bootstrap; HPO algorithms comparable to weights init.\n",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_pipeline::Scale;

    #[test]
    fn study_produces_rows_for_active_sources() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let tv = study_case(&cs, &Config::test(), 1, &RunContext::serial());
        // 4 ξ_O active sources + 3 HPO algorithms.
        assert_eq!(tv.rows.len(), 4 + 3);
        assert!(tv.bootstrap_std > 0.0);
        // Every std is finite and non-negative.
        assert!(tv.rows.iter().all(|(_, s)| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn bootstrap_dominates_init_usually() {
        // The paper's headline: data sampling variance >= init variance.
        // At Test scale noise is large, so only check both are measured.
        let cs = CaseStudy::glue_sst2_bert(Scale::Test);
        let tv = study_case(&cs, &Config::test(), 2, &RunContext::serial());
        let get = |name: &str| {
            tv.rows
                .iter()
                .find(|(l, _)| l == name)
                .map(|(_, s)| *s)
                .expect("row present")
        };
        assert!(get("Data (bootstrap)") > 0.0);
        assert!(get("Weights init") >= 0.0);
    }

    #[test]
    fn report_renders_all_tasks() {
        let report = report_with(&Config::test(), &RunContext::serial()).render_text();
        for task in [
            "glue-rte-bert",
            "glue-sst2-bert",
            "mhc-mlp",
            "pascalvoc-resnet",
            "cifar10-vgg11",
        ] {
            assert!(report.contains(task), "missing {task}");
        }
        assert!(report.contains("Random Search"));
        assert!(report.contains("Bayes Opt"));
    }
}
