//! **Fig. H.5** — decomposition of the estimators' mean-squared error:
//! bias, variance, average measure correlation ρ, and MSE.
//!
//! The paper's counter-intuitive mechanism, verified here: randomizing
//! *more* sources lowers the correlation ρ between conditioned measures,
//! which lowers the biased estimator's variance (Eq. 7) and therefore its
//! MSE — the opposite of the "hold everything fixed" intuition.

use crate::args::Effort;
use crate::figures::ESTIMATOR_SEED;
use crate::registry::RunContext;
use varbench_core::decompose::{decompose, Decomposition};
use varbench_core::estimator::{fix_hopt_estimator, ideal_estimator, Randomize};
use varbench_core::report::{num, Report, Table};
use varbench_pipeline::{CaseStudy, HpoAlgorithm};
use varbench_stats::describe::mean;

/// Configuration of the Fig. H.5 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Case-study effort preset.
    pub effort: Effort,
    /// Estimator budget k (paper: 100).
    pub k: usize,
    /// Repetitions per biased estimator (paper: 20).
    pub reps: usize,
    /// Ideal samples for the µ reference.
    pub k_ideal: usize,
    /// HPO budget.
    pub budget: usize,
}

impl Config {
    /// Smoke-test preset.
    pub fn test() -> Self {
        Self {
            effort: Effort::Test,
            k: 4,
            reps: 3,
            k_ideal: 4,
            budget: 3,
        }
    }

    /// Default preset. `k <= ` Fig. 5's Quick `k_max` and the budget
    /// matches Fig. 5's, so the biased matrices are shared prefixes of
    /// Fig. 5's through the measurement cache.
    pub fn quick() -> Self {
        Self {
            effort: Effort::Quick,
            k: 15,
            reps: 8,
            k_ideal: 15,
            budget: 15,
        }
    }

    /// Paper-faithful preset.
    pub fn full() -> Self {
        Self {
            effort: Effort::Full,
            k: 100,
            reps: 20,
            k_ideal: 100,
            budget: 200,
        }
    }

    /// Preset for an effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Test => Self::test(),
            Effort::Quick => Self::quick(),
            Effort::Full => Self::full(),
        }
    }
}

/// Decompositions of the three biased estimators for one case study.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDecomposition {
    /// Case-study name.
    pub task: &'static str,
    /// Reference µ from the ideal estimator.
    pub mu: f64,
    /// `(variant, decomposition)` rows.
    pub rows: Vec<(Randomize, Decomposition)>,
}

/// Runs the decomposition study on one case study: the ideal reference
/// run and every repetition's measures come from the context's
/// measurement cache (shared with Fig. 5 when seeds and budgets line
/// up), with bit-identical decompositions for any thread count.
pub fn study_case(
    cs: &CaseStudy,
    config: &Config,
    seed: u64,
    ctx: &RunContext,
) -> TaskDecomposition {
    let algo = HpoAlgorithm::RandomSearch;
    let ideal = ideal_estimator(cs, config.k_ideal, algo, config.budget, seed, ctx);
    let mu = mean(&ideal.measures);
    let variants = [Randomize::Init, Randomize::Data, Randomize::All];
    let groups: Vec<Vec<f64>> = variants
        .iter()
        .flat_map(|&v| (0..config.reps).map(move |r| (v, r as u64)))
        .map(|(variant, r)| {
            fix_hopt_estimator(cs, config.k, algo, config.budget, seed, r, variant, ctx).measures
        })
        .collect();
    let rows = variants
        .iter()
        .enumerate()
        .map(|(vi, &variant)| {
            let group = groups[vi * config.reps..(vi + 1) * config.reps].to_vec();
            (variant, decompose(&group, mu))
        })
        .collect();
    TaskDecomposition {
        task: cs.name(),
        mu,
        rows,
    }
}

/// Builds the full Fig. H.5 report.
pub fn report_with(config: &Config, ctx: &RunContext) -> Report {
    let mut r = Report::new("figh5", "Figure H.5");
    r.text("Figure H.5: MSE decomposition of estimators (bias, Var, rho, MSE)\n");
    r.text(format!(
        "(k = {}, reps = {}, budget = {})\n\n",
        config.k, config.reps, config.budget
    ));
    for cs in CaseStudy::all(config.effort.scale()) {
        let d = study_case(&cs, config, ESTIMATOR_SEED, ctx);
        r.text(format!("== {} (mu = {}) ==\n", d.task, num(d.mu, 4)));
        let mut t = Table::new(vec![
            "estimator".into(),
            "bias".into(),
            "Var(mu~(k))".into(),
            "rho".into(),
            "Var(R^e|xi)".into(),
            "MSE".into(),
        ]);
        for (variant, dec) in &d.rows {
            t.add_row(vec![
                variant.display_name().to_string(),
                num(dec.bias, 5),
                format!("{:.2e}", dec.variance),
                num(dec.rho, 3),
                format!("{:.2e}", dec.measure_variance),
                format!("{:.2e}", dec.mse),
            ]);
        }
        r.table(t);
        r.text("\n");
    }
    r.text(
        "Expected shape (paper): bias comparable across variants; rho and hence\n\
         Var and MSE drop sharply from Init to All — decorrelating measures is\n\
         what improves the estimator.\n",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_pipeline::Scale;

    #[test]
    fn decomposition_rows_complete() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let d = study_case(&cs, &Config::test(), 1, &RunContext::serial());
        assert_eq!(d.rows.len(), 3);
        for (_, dec) in &d.rows {
            assert!(dec.variance >= 0.0);
            assert!(dec.mse >= dec.variance);
            assert!((-1.0..=1.0).contains(&dec.rho));
        }
    }

    #[test]
    fn report_renders() {
        let r = report_with(&Config::test(), &RunContext::serial()).render_text();
        assert!(r.contains("MSE decomposition"));
        assert!(r.contains("FixHOptEst(k, All)"));
    }
}
