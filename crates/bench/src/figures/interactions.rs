//! **Extension experiment** — interaction of variance sources.
//!
//! The paper notes (Section 2.2) that "these different contributions to
//! the variance are not independent, the total variance cannot be obtained
//! by simply adding them up". This experiment quantifies that remark: for
//! each case study it measures every active ξ_O source's variance in
//! isolation, the *sum* of those variances, and the variance when all
//! sources are randomized *jointly* — the gap is the interaction.

use crate::args::Effort;
use crate::figures::SOURCE_STUDY_SEED;
use crate::registry::RunContext;
use varbench_core::estimator::{joint_variance_study, source_variance_study};
use varbench_core::report::{num, Report, Table};
use varbench_pipeline::{CaseStudy, HpoAlgorithm, VarianceSource};
use varbench_stats::describe::variance;

/// Configuration of the interaction study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Case-study effort preset.
    pub effort: Effort,
    /// Seeds per measurement.
    pub n_seeds: usize,
}

impl Config {
    /// Smoke-test preset.
    pub fn test() -> Self {
        Self {
            effort: Effort::Test,
            n_seeds: 6,
        }
    }

    /// Default preset.
    pub fn quick() -> Self {
        Self {
            effort: Effort::Quick,
            n_seeds: 30,
        }
    }

    /// Paper-faithful-ish preset.
    pub fn full() -> Self {
        Self {
            effort: Effort::Full,
            n_seeds: 100,
        }
    }

    /// Preset for an effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Test => Self::test(),
            Effort::Quick => Self::quick(),
            Effort::Full => Self::full(),
        }
    }
}

/// Interaction measurements for one case study.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionRow {
    /// Case-study name.
    pub task: &'static str,
    /// Sum of the individual sources' variances.
    pub sum_of_marginals: f64,
    /// Variance with all ξ_O sources randomized jointly.
    pub joint: f64,
}

impl InteractionRow {
    /// Ratio joint / sum-of-marginals; 1.0 means additive, below 1 means
    /// overlapping (shared) fluctuations, above 1 synergy.
    pub fn interaction_ratio(&self) -> f64 {
        if self.sum_of_marginals > 0.0 {
            self.joint / self.sum_of_marginals
        } else {
            f64::NAN
        }
    }
}

/// Measures the interaction for one case study: the marginal and joint
/// score matrices come from the context's measurement cache (shared with
/// Fig. 1 and Fig. G.3), bit-identical for any thread count.
pub fn study_case(cs: &CaseStudy, config: &Config, seed: u64, ctx: &RunContext) -> InteractionRow {
    let sources: Vec<VarianceSource> = cs
        .active_sources()
        .iter()
        .copied()
        .filter(|s| !s.is_hyperopt())
        .collect();
    let sum_of_marginals: f64 = sources
        .iter()
        .map(|&s| {
            let m = source_variance_study(
                cs,
                s,
                config.n_seeds,
                HpoAlgorithm::RandomSearch,
                1,
                seed,
                ctx,
            );
            variance(&m, 1)
        })
        .sum();
    let joint_measures = joint_variance_study(cs, &sources, config.n_seeds, seed, ctx);
    InteractionRow {
        task: cs.name(),
        sum_of_marginals,
        joint: variance(&joint_measures, 1),
    }
}

/// Builds the full interaction report.
pub fn report_with(config: &Config, ctx: &RunContext) -> Report {
    let mut r = Report::new("interactions", "Extension: interactions");
    r.text("Extension: interaction of variance sources\n");
    r.text(format!(
        "(n = {} seeds per measurement)\n\n",
        config.n_seeds
    ));
    let mut t = Table::new(vec![
        "task".into(),
        "sum of marginal Var".into(),
        "joint Var (all xi_O)".into(),
        "joint / sum".into(),
    ]);
    for cs in CaseStudy::all(config.effort.scale()) {
        let row = study_case(&cs, config, SOURCE_STUDY_SEED, ctx);
        t.add_row(vec![
            row.task.to_string(),
            format!("{:.3e}", row.sum_of_marginals),
            format!("{:.3e}", row.joint),
            num(row.interaction_ratio(), 2),
        ]);
    }
    r.table(t);
    r.text(
        "\nRatio != 1 confirms the paper's caution: per-source variances do not\n\
         add up; joint randomization is the only way to measure total variance.\n",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_pipeline::Scale;

    #[test]
    fn interaction_row_is_finite_and_positive() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let row = study_case(&cs, &Config::test(), 1, &RunContext::serial());
        assert!(row.sum_of_marginals > 0.0);
        assert!(row.joint > 0.0);
        assert!(row.interaction_ratio().is_finite());
    }

    #[test]
    fn report_renders() {
        let r = report_with(&Config::test(), &RunContext::serial()).render_text();
        assert!(r.contains("interaction"));
        assert!(r.contains("joint / sum"));
    }
}
