//! **Fig. 3** — published improvements compared to benchmark variance.
//!
//! For each leaderboard entry we ask: is the increment over the previous
//! state of the art larger than the significance threshold implied by the
//! benchmark's variance? The benchmark σ at accuracy τ is modelled as the
//! binomial test-set noise inflated by the total-variance/bootstrap ratio
//! measured on our case-study analog (Fig. 1), and the significance
//! threshold is `z₀.₉₅ · √2 · σ` (two independent pipelines compared on
//! one split).

use crate::leaderboard::{increments, Entry, CIFAR10, SST2};
use varbench_core::report::{num, Table};
use varbench_stats::{standard_normal_quantile, Binomial};

/// Configuration of the Fig. 3 analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Variance-inflation ratio: total benchmark variance relative to the
    /// pure test-set binomial variance. The paper's Fig. 1 study puts the
    /// all-sources total at ~1.5–2× the bootstrap variance; 2.0 is the
    /// conservative default, and `fig1` measures the analog value.
    pub inflation: f64,
    /// Significance level of the one-sided test.
    pub alpha: f64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            inflation: 2.0,
            alpha: 0.05,
        }
    }
}

/// Verdict for one published improvement.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The leaderboard entry.
    pub entry: Entry,
    /// Increment over the previous state of the art (percentage points).
    pub increment: f64,
    /// Benchmark σ at this accuracy (percentage points).
    pub sigma: f64,
    /// Significance threshold `z₁₋α √2 σ`.
    pub threshold: f64,
    /// Whether the increment clears the threshold.
    pub significant: bool,
}

/// Classifies every improving entry of a leaderboard.
pub fn classify(entries: &[Entry], n_test: u64, config: &Config) -> Vec<Verdict> {
    let z = standard_normal_quantile(1.0 - config.alpha);
    increments(entries)
        .into_iter()
        .map(|(entry, inc)| {
            let tau = (entry.accuracy / 100.0).clamp(0.01, 0.99);
            let sigma = 100.0 * Binomial::accuracy_std(n_test, tau) * config.inflation.sqrt();
            let threshold = z * std::f64::consts::SQRT_2 * sigma;
            Verdict {
                entry,
                increment: inc,
                sigma,
                threshold,
                significant: inc > threshold,
            }
        })
        .collect()
}

/// Runs the Fig. 3 reproduction.
pub fn run(config: &Config) -> String {
    let mut out = String::new();
    out.push_str("Figure 3: published improvements vs benchmark variance\n");
    out.push_str(&format!(
        "(variance inflation x{:.1} over binomial, alpha = {})\n\n",
        config.inflation, config.alpha
    ));
    for (name, entries, n_test) in [
        ("cifar10 (n'=10000)", &CIFAR10[..], 10_000u64),
        (
            "sst2 (n'=872, paper test server ~1821; we use the dev-size analog)",
            &SST2[..],
            872,
        ),
    ] {
        out.push_str(&format!("== {name} ==\n"));
        let mut t = Table::new(vec![
            "year".into(),
            "method".into(),
            "acc%".into(),
            "increment".into(),
            "sigma".into(),
            "threshold".into(),
            "verdict".into(),
        ]);
        let verdicts = classify(entries, n_test, config);
        let mut n_sig = 0;
        for v in &verdicts {
            if v.significant {
                n_sig += 1;
            }
            t.add_row(vec![
                v.entry.year.to_string(),
                v.entry.method.to_string(),
                num(v.entry.accuracy, 2),
                format!("+{}", num(v.increment, 2)),
                num(v.sigma, 3),
                num(v.threshold, 3),
                if v.significant {
                    "significant".into()
                } else {
                    "x not significant".into()
                },
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "{} of {} improvements significant\n\n",
            n_sig,
            verdicts.len()
        ));
    }
    out.push_str(
        "Expected shape (paper): a substantial fraction of published increments\n\
         fall below the significance band, especially on the small SST-2 test set.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_splits_verdicts() {
        let v = classify(&SST2, 872, &Config::default());
        assert!(!v.is_empty());
        let sig = v.iter().filter(|x| x.significant).count();
        let non = v.len() - sig;
        // On the small SST-2 set some improvements must be non-significant
        // and some significant.
        assert!(sig > 0, "no significant improvements found");
        assert!(non > 0, "every improvement significant — threshold too low");
    }

    #[test]
    fn bigger_test_set_tightens_threshold() {
        let small = classify(&CIFAR10, 1_000, &Config::default());
        let large = classify(&CIFAR10, 100_000, &Config::default());
        let sig_small = small.iter().filter(|v| v.significant).count();
        let sig_large = large.iter().filter(|v| v.significant).count();
        assert!(sig_large >= sig_small);
        assert!(large[0].threshold < small[0].threshold);
    }

    #[test]
    fn inflation_raises_threshold() {
        let base = classify(
            &CIFAR10,
            10_000,
            &Config {
                inflation: 1.0,
                alpha: 0.05,
            },
        );
        let inflated = classify(
            &CIFAR10,
            10_000,
            &Config {
                inflation: 4.0,
                alpha: 0.05,
            },
        );
        assert!(inflated[0].threshold > base[0].threshold);
        assert!((inflated[0].threshold / base[0].threshold - 2.0).abs() < 1e-9);
    }

    #[test]
    fn report_renders() {
        let r = run(&Config::default());
        assert!(r.contains("cifar10"));
        assert!(r.contains("significant"));
        assert!(r.contains("BERT-base"));
    }
}
