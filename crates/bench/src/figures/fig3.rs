//! **Fig. 3** — published improvements compared to benchmark variance.
//!
//! For each leaderboard entry we ask: is the increment over the previous
//! state of the art larger than the significance threshold implied by the
//! benchmark's variance? The benchmark σ at accuracy τ is modelled as the
//! binomial test-set noise inflated by the total-variance/bootstrap ratio
//! measured on our case-study analog (Fig. 1), and the significance
//! threshold is `z₀.₉₅ · √2 · σ` (two independent pipelines compared on
//! one split).

use crate::args::Effort;
use crate::figures::SOURCE_STUDY_SEED;
use crate::leaderboard::{increments, Entry, CIFAR10, SST2};
use crate::registry::RunContext;
use varbench_core::estimator::{joint_variance_study, source_variance_study};
use varbench_core::report::{num, Report, Table};
use varbench_pipeline::{CaseStudy, HpoAlgorithm, Scale, VarianceSource};
use varbench_stats::describe::variance;
use varbench_stats::{standard_normal_quantile, Binomial};

/// Configuration of the Fig. 3 analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Effort preset (only `Full` changes the analysis: it replaces the
    /// assumed inflation ratio with a measured one).
    pub effort: Effort,
    /// Variance-inflation ratio: total benchmark variance relative to the
    /// pure test-set binomial variance. The paper's Fig. 1 study puts the
    /// all-sources total at ~1.5–2× the bootstrap variance; 2.0 is the
    /// conservative assumption, and `None` measures the analog value on
    /// the CIFAR10 case study (all-ξ_O joint variance over bootstrap
    /// variance) through the measurement cache.
    pub inflation: Option<f64>,
    /// Significance level of the one-sided test.
    pub alpha: f64,
}

impl Config {
    /// Smoke-test preset (assumed inflation — instant).
    pub fn test() -> Self {
        Self {
            effort: Effort::Test,
            inflation: Some(2.0),
            alpha: 0.05,
        }
    }

    /// Default preset (assumed inflation — instant).
    pub fn quick() -> Self {
        Self {
            effort: Effort::Quick,
            inflation: Some(2.0),
            alpha: 0.05,
        }
    }

    /// Paper-faithful preset: measure the inflation ratio on the
    /// cifar10-vgg11 analog instead of assuming 2.0.
    pub fn full() -> Self {
        Self {
            effort: Effort::Full,
            inflation: None,
            alpha: 0.05,
        }
    }

    /// Preset for an effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Test => Self::test(),
            Effort::Quick => Self::quick(),
            Effort::Full => Self::full(),
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self::quick()
    }
}

/// Measurements per matrix when measuring the inflation ratio. Matches
/// the Quick presets of Fig. 1 and the interaction study, so with a
/// persistent cache (`VARBENCH_CACHE_DIR`) a prior quick-effort run pays
/// for these matrices; within a single `--full` run they are computed
/// once here (the other artifacts measure at Full scale).
const INFLATION_N: usize = 30;

/// Measures the variance-inflation ratio on the CIFAR10 analog:
/// all-ξ_O joint variance over bootstrap-only variance, floored at 1
/// (total variance cannot be below its bootstrap component). Measured at
/// Quick scale deliberately — the ratio is scale-stable and Quick keeps
/// `fig3 --full` from costing 60 Full-scale trainings for one scalar.
pub fn measured_inflation(ctx: &RunContext) -> f64 {
    let cs = CaseStudy::cifar10_vgg11(Scale::Quick);
    let joint = joint_variance_study(
        &cs,
        &VarianceSource::XI_O,
        INFLATION_N,
        SOURCE_STUDY_SEED,
        ctx,
    );
    let boot = source_variance_study(
        &cs,
        VarianceSource::DataSplit,
        INFLATION_N,
        HpoAlgorithm::RandomSearch,
        1,
        SOURCE_STUDY_SEED,
        ctx,
    );
    (variance(&joint, 1) / variance(&boot, 1)).max(1.0)
}

/// Verdict for one published improvement.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The leaderboard entry.
    pub entry: Entry,
    /// Increment over the previous state of the art (percentage points).
    pub increment: f64,
    /// Benchmark σ at this accuracy (percentage points).
    pub sigma: f64,
    /// Significance threshold `z₁₋α √2 σ`.
    pub threshold: f64,
    /// Whether the increment clears the threshold.
    pub significant: bool,
}

/// Classifies every improving entry of a leaderboard under an explicit
/// inflation ratio and significance level.
pub fn classify(entries: &[Entry], n_test: u64, inflation: f64, alpha: f64) -> Vec<Verdict> {
    let z = standard_normal_quantile(1.0 - alpha);
    increments(entries)
        .into_iter()
        .map(|(entry, inc)| {
            let tau = (entry.accuracy / 100.0).clamp(0.01, 0.99);
            let sigma = 100.0 * Binomial::accuracy_std(n_test, tau) * inflation.sqrt();
            let threshold = z * std::f64::consts::SQRT_2 * sigma;
            Verdict {
                entry,
                increment: inc,
                sigma,
                threshold,
                significant: inc > threshold,
            }
        })
        .collect()
}

/// Builds the full Fig. 3 report.
pub fn report_with(config: &Config, ctx: &RunContext) -> Report {
    let mut r = Report::new("fig3", "Figure 3");
    r.text("Figure 3: published improvements vs benchmark variance\n");
    let inflation = match config.inflation {
        Some(x) => {
            r.text(format!(
                "(variance inflation x{x:.1} over binomial, alpha = {})\n\n",
                config.alpha
            ));
            x
        }
        None => {
            let x = measured_inflation(ctx);
            r.text(format!(
                "(variance inflation x{x:.2} measured on the cifar10-vgg11 analog, alpha = {})\n\n",
                config.alpha
            ));
            x
        }
    };
    for (name, entries, n_test) in [
        ("cifar10 (n'=10000)", &CIFAR10[..], 10_000u64),
        (
            "sst2 (n'=872, paper test server ~1821; we use the dev-size analog)",
            &SST2[..],
            872,
        ),
    ] {
        r.text(format!("== {name} ==\n"));
        let mut t = Table::new(vec![
            "year".into(),
            "method".into(),
            "acc%".into(),
            "increment".into(),
            "sigma".into(),
            "threshold".into(),
            "verdict".into(),
        ]);
        let verdicts = classify(entries, n_test, inflation, config.alpha);
        let mut n_sig = 0;
        for v in &verdicts {
            if v.significant {
                n_sig += 1;
            }
            t.add_row(vec![
                v.entry.year.to_string(),
                v.entry.method.to_string(),
                num(v.entry.accuracy, 2),
                format!("+{}", num(v.increment, 2)),
                num(v.sigma, 3),
                num(v.threshold, 3),
                if v.significant {
                    "significant".into()
                } else {
                    "x not significant".into()
                },
            ]);
        }
        r.table(t);
        r.text(format!(
            "{} of {} improvements significant\n\n",
            n_sig,
            verdicts.len()
        ));
    }
    r.text(
        "Expected shape (paper): a substantial fraction of published increments\n\
         fall below the significance band, especially on the small SST-2 test set.\n",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_splits_verdicts() {
        let v = classify(&SST2, 872, 2.0, 0.05);
        assert!(!v.is_empty());
        let sig = v.iter().filter(|x| x.significant).count();
        let non = v.len() - sig;
        // On the small SST-2 set some improvements must be non-significant
        // and some significant.
        assert!(sig > 0, "no significant improvements found");
        assert!(non > 0, "every improvement significant — threshold too low");
    }

    #[test]
    fn bigger_test_set_tightens_threshold() {
        let small = classify(&CIFAR10, 1_000, 2.0, 0.05);
        let large = classify(&CIFAR10, 100_000, 2.0, 0.05);
        let sig_small = small.iter().filter(|v| v.significant).count();
        let sig_large = large.iter().filter(|v| v.significant).count();
        assert!(sig_large >= sig_small);
        assert!(large[0].threshold < small[0].threshold);
    }

    #[test]
    fn inflation_raises_threshold() {
        let base = classify(&CIFAR10, 10_000, 1.0, 0.05);
        let inflated = classify(&CIFAR10, 10_000, 4.0, 0.05);
        assert!(inflated[0].threshold > base[0].threshold);
        assert!((inflated[0].threshold / base[0].threshold - 2.0).abs() < 1e-9);
    }

    #[test]
    fn presets_cover_every_effort() {
        assert_eq!(Config::for_effort(Effort::Test).inflation, Some(2.0));
        assert_eq!(Config::for_effort(Effort::Quick), Config::default());
        assert_eq!(
            Config::for_effort(Effort::Full).inflation,
            None,
            "full effort measures the inflation ratio"
        );
    }

    #[test]
    fn report_renders() {
        let r = report_with(&Config::default(), &RunContext::serial()).render_text();
        assert!(r.contains("cifar10"));
        assert!(r.contains("significant"));
        assert!(r.contains("BERT-base"));
    }
}
