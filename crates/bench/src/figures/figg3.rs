//! **Fig. G.3** — normality of the per-source performance distributions:
//! Shapiro–Wilk p-values plus kernel-density summaries.
//!
//! The paper's conclusion: "except for Glue-SST2 BERT, all case studies
//! have distributions of performances very close to normal" (SST-2's tiny
//! test set discretizes the accuracies). This underwrites the normal
//! modelling assumption of the simulation study.

use crate::args::Effort;
use crate::figures::SOURCE_STUDY_SEED;
use crate::registry::RunContext;
use varbench_core::estimator::{joint_variance_study, source_variance_study};
use varbench_core::report::{num, Report, Table};
use varbench_pipeline::{CaseStudy, HpoAlgorithm, VarianceSource};
use varbench_stats::kde::Kde;
use varbench_stats::tests::shapiro_wilk::shapiro_wilk;

/// Configuration of the Fig. G.3 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Case-study effort preset.
    pub effort: Effort,
    /// Samples per distribution (paper: 200).
    pub n_seeds: usize,
}

impl Config {
    /// Smoke-test preset (n below SW's minimum of 3 is impossible; use 8).
    pub fn test() -> Self {
        Self {
            effort: Effort::Test,
            n_seeds: 8,
        }
    }

    /// Default preset.
    pub fn quick() -> Self {
        Self {
            effort: Effort::Quick,
            n_seeds: 40,
        }
    }

    /// Paper-faithful preset.
    pub fn full() -> Self {
        Self {
            effort: Effort::Full,
            n_seeds: 200,
        }
    }

    /// Preset for an effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Test => Self::test(),
            Effort::Quick => Self::quick(),
            Effort::Full => Self::full(),
        }
    }
}

/// Normality panel for one case study.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalityPanel {
    /// Case-study name.
    pub task: &'static str,
    /// `(source, Shapiro-Wilk p, KDE bandwidth)` rows; `None` p-value means
    /// the source is inactive (constant measures).
    pub rows: Vec<(String, Option<f64>, f64)>,
}

/// Runs the normality study on one case study: both the per-source and
/// the joint ("Altogether") score matrices come from the context's
/// measurement cache, shared with Fig. 1 and the interaction study.
pub fn study_case(cs: &CaseStudy, config: &Config, seed: u64, ctx: &RunContext) -> NormalityPanel {
    let mut rows = Vec::new();
    let sources: Vec<VarianceSource> = cs
        .active_sources()
        .iter()
        .copied()
        .filter(|s| !s.is_hyperopt())
        .collect();
    for &src in &sources {
        let measures = source_variance_study(
            cs,
            src,
            config.n_seeds,
            HpoAlgorithm::RandomSearch,
            1,
            seed,
            ctx,
        );
        rows.push(panel_row(src.display_name().to_string(), &measures));
    }
    // Joint randomization of all ξ_O (paper's "Altogether" row).
    let measures = joint_variance_study(cs, &VarianceSource::XI_O, config.n_seeds, seed, ctx);
    rows.push(panel_row("Altogether".to_string(), &measures));
    NormalityPanel {
        task: cs.name(),
        rows,
    }
}

fn panel_row(label: String, measures: &[f64]) -> (String, Option<f64>, f64) {
    let constant = measures.windows(2).all(|w| w[0] == w[1]);
    if constant {
        (label, None, 0.0)
    } else {
        let p = shapiro_wilk(measures).ok().map(|r| r.p_value);
        let bw = Kde::fit(measures).bandwidth();
        (label, p, bw)
    }
}

/// Builds the full Fig. G.3 report.
pub fn report_with(config: &Config, ctx: &RunContext) -> Report {
    let mut r = Report::new("figg3", "Figure G.3");
    r.text("Figure G.3: Shapiro-Wilk normality of per-source performance\n");
    r.text(format!(
        "(n = {} samples per distribution)\n\n",
        config.n_seeds
    ));
    for cs in CaseStudy::all(config.effort.scale()) {
        let panel = study_case(&cs, config, SOURCE_STUDY_SEED, ctx);
        r.text(format!("== {} ==\n", panel.task));
        let mut t = Table::new(vec![
            "source".into(),
            "SW p-value".into(),
            "KDE bandwidth".into(),
        ]);
        for (label, p, bw) in &panel.rows {
            t.add_row(vec![
                label.clone(),
                p.map_or("(inactive)".into(), |v| num(v, 4)),
                num(*bw, 6),
            ]);
        }
        r.table(t);
        r.text("\n");
    }
    r.text(
        "Expected shape (paper): p-values mostly well above 0.05 (normal-ish);\n\
         the SST-2 analog may reject due to its discretized accuracies.\n",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_pipeline::Scale;

    #[test]
    fn panel_includes_altogether_row() {
        let cs = CaseStudy::mhc_mlp(Scale::Test);
        let p = study_case(&cs, &Config::test(), 1, &RunContext::serial());
        assert!(p.rows.iter().any(|(l, _, _)| l == "Altogether"));
        // Active sources have p-values.
        let data_row = p
            .rows
            .iter()
            .find(|(l, _, _)| l == "Data (bootstrap)")
            .expect("bootstrap row");
        assert!(data_row.1.is_some());
        if let Some(pv) = data_row.1 {
            assert!((0.0..=1.0).contains(&pv));
        }
    }

    #[test]
    fn report_renders_panels() {
        let r = report_with(&Config::test(), &RunContext::serial()).render_text();
        assert!(r.contains("Shapiro-Wilk"));
        assert!(r.contains("Altogether"));
    }
}
