//! **Tables 1–10** — case-study configurations (search spaces, defaults,
//! infrastructure) and the Table 8 model comparison on the MHC task.
//!
//! Tables 1/4/10 (computational infrastructure), 2/3/5/6 (search spaces and
//! defaults), 7 (defaults), and 9 (model designs) are configuration tables:
//! we print our analogs straight from the case-study definitions so the
//! printed values are, by construction, the values the experiments use.
//! Table 8 is an experiment: AUC and Pearson correlation of three model
//! designs on the binding task and on a shifted external dataset.

use crate::args::Effort;
use crate::figures::ESTIMATOR_SEED;
use crate::registry::RunContext;
use varbench_core::estimator::hopt_record;
use varbench_core::report::{num, Report, Table};
use varbench_data::augment::Identity;
use varbench_data::synth::{binding_regression, BindingConfig};
use varbench_models::ensemble::{EnsembleBuffer, MlpEnsemble};
use varbench_models::linear::RidgeRegression;
use varbench_models::metrics::{pearson, roc_auc};
use varbench_models::{Mlp, MlpConfig, PredictBuffer, TrainSeeds};
use varbench_pipeline::{CaseStudy, HpoAlgorithm, Scale, SeedAssignment};
use varbench_rng::{Rng, SeedTree};

/// Configuration of the tables harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Case-study effort preset.
    pub effort: Effort,
    /// Ensemble size for the MHCflurry-style baseline (paper: 8–16).
    pub ensemble_size: usize,
    /// HPO budget for the tuned model.
    pub budget: usize,
}

impl Config {
    // The budgets match Fig. 5's presets: the tuned MLP-MHC model reuses
    // the hyperparameter search of the biased estimator's first
    // repetition through the measurement cache, so running `tables` after
    // `fig5` pays nothing for the search.

    /// Smoke-test preset.
    pub fn test() -> Self {
        Self {
            effort: Effort::Test,
            ensemble_size: 3,
            budget: 3,
        }
    }

    /// Default preset.
    pub fn quick() -> Self {
        Self {
            effort: Effort::Quick,
            ensemble_size: 8,
            budget: 15,
        }
    }

    /// Paper-faithful preset.
    pub fn full() -> Self {
        Self {
            effort: Effort::Full,
            ensemble_size: 16,
            budget: 200,
        }
    }

    /// Preset for an effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Test => Self::test(),
            Effort::Quick => Self::quick(),
            Effort::Full => Self::full(),
        }
    }
}

/// Prints the search-space tables (paper Tables 2, 3, 5, 6 analogs) and
/// defaults (Table 7) for every case study.
pub fn render_search_spaces(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("Tables 2/3/5/6/7: hyperparameter search spaces and defaults\n\n");
    for cs in CaseStudy::all(scale) {
        out.push_str(&format!("== {} ({}) ==\n", cs.name(), cs.paper_task()));
        let mut t = Table::new(vec![
            "hyperparameter".into(),
            "space".into(),
            "default".into(),
        ]);
        for ((name, dim), default) in cs.search_space().dims().iter().zip(cs.default_params()) {
            t.add_row(vec![name.clone(), format!("{dim:?}"), format!("{default}")]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Prints the computational-infrastructure analog of Tables 1, 4, 10.
pub fn render_infrastructure() -> String {
    let mut out = String::new();
    out.push_str("Tables 1/4/10: computational infrastructure\n\n");
    let mut t = Table::new(vec!["component".into(), "value".into()]);
    t.add_row(vec![
        "implementation".into(),
        "pure Rust (this workspace)".into(),
    ]);
    t.add_row(vec![
        "determinism".into(),
        "bit-exact given seeds; no GPU nondeterminism".into(),
    ]);
    t.add_row(vec![
        "models".into(),
        "from-scratch MLPs (varbench-models)".into(),
    ]);
    t.add_row(vec![
        "hpo".into(),
        "random / (noisy) grid / GP-EI BayesOpt (varbench-hpo)".into(),
    ]);
    t.add_row(vec![
        "rng".into(),
        "xoshiro256++ with per-source seed trees (varbench-rng)".into(),
    ]);
    out.push_str(&t.render());
    out
}

/// One row of the Table 8 analog.
#[derive(Debug, Clone, PartialEq)]
pub struct Table8Row {
    /// Model label.
    pub model: &'static str,
    /// Evaluation dataset label.
    pub dataset: &'static str,
    /// ROC-AUC (binding threshold 0.5).
    pub auc: f64,
    /// Pearson correlation with true affinities.
    pub pcc: f64,
}

/// Table 8: three model designs evaluated on the in-distribution test
/// set and a shifted "HPV-like" external set. The tuned model's
/// hyperparameter search is content-addressed in the measurement cache
/// (it is the exact search of the biased estimator's repetition 0 on the
/// MHC task, so Fig. 5 and the tables share it).
pub fn table8(config: &Config, ctx: &RunContext) -> Vec<Table8Row> {
    let scale = config.effort.scale();
    let cs = CaseStudy::mhc_mlp(scale);
    let seeds = SeedAssignment::all_fixed(0x7AB8);
    let split = cs.split(seeds.seed_of(varbench_pipeline::VarianceSource::DataSplit));
    let train = cs.pool().subset(&split.train_valid());

    // External shifted dataset (the "HPV" analog).
    let n_ext = match scale {
        Scale::Test => 100,
        Scale::Quick => 1000,
        Scale::Full => 3000,
    };
    let mut ext_rng = Rng::seed_from_u64(0x48B5);
    let external = binding_regression(
        &BindingConfig {
            n: n_ext,
            dim: 20,
            noise: 0.1,
            // Strong enough domain shift for a visible degradation (the
            // probe in EXPERIMENTS.md shows AUC falls ~0.08 at this level).
            shift: 2.5,
        },
        &mut ext_rng,
    );

    // Model (a): NetMHCpan4-style — one shallow MLP, fixed sensible
    // hyperparameters.
    let tree = SeedTree::new(0x7AB80);
    let mut ts = TrainSeeds::from_tree(&tree);
    let netmhc = Mlp::train(
        &MlpConfig {
            hidden: vec![24],
            ..Default::default()
        },
        cs.base_train(),
        &train,
        &Identity,
        &mut ts,
    );

    // Model (b): MHCflurry-style — a bagged ensemble of shallow MLPs.
    let flurry = MlpEnsemble::train(
        config.ensemble_size,
        &MlpConfig {
            hidden: vec![16],
            ..Default::default()
        },
        cs.base_train(),
        &train,
        &Identity,
        &SeedTree::new(0x7AB81),
    );

    // Model (c): MLP-MHC (ours) — single MLP with HPO-tuned hidden size
    // and L2 (the paper's Table 6 space). The search runs under the
    // biased estimator's repetition-0 seeds so its cache record is shared
    // with Fig. 5; the tuned parameters are then applied to this table's
    // own split.
    let hopt_seeds = SeedAssignment::all_random(ESTIMATOR_SEED ^ 0xF1F0, 0);
    let (best, _) = hopt_record(
        &cs,
        &hopt_seeds,
        HpoAlgorithm::RandomSearch,
        config.budget,
        ctx,
    );
    let tuned = cs.train_model(&best, &split.train_valid(), &seeds);

    // Linear baseline for reference (ridge regression).
    let ridge = RidgeRegression::fit(&train, 1e-2);

    let eval = |name: &'static str, predict: &mut dyn FnMut(&[f64]) -> f64| -> Vec<Table8Row> {
        let mut rows = Vec::new();
        // In-distribution test set.
        let scores: Vec<f64> = split
            .test()
            .iter()
            .map(|&i| predict(cs.pool().x(i)))
            .collect();
        let labels: Vec<bool> = split
            .test()
            .iter()
            .map(|&i| cs.pool().value(i) > 0.5)
            .collect();
        let truths: Vec<f64> = split.test().iter().map(|&i| cs.pool().value(i)).collect();
        rows.push(Table8Row {
            model: name,
            dataset: "binding-test",
            auc: roc_auc(&scores, &labels),
            pcc: pearson(&scores, &truths),
        });
        // External shifted set.
        let scores: Vec<f64> = (0..external.len())
            .map(|i| predict(external.x(i)))
            .collect();
        let labels: Vec<bool> = (0..external.len())
            .map(|i| external.value(i) > 0.5)
            .collect();
        let truths: Vec<f64> = (0..external.len()).map(|i| external.value(i)).collect();
        rows.push(Table8Row {
            model: name,
            dataset: "hpv-external",
            auc: roc_auc(&scores, &labels),
            pcc: pearson(&scores, &truths),
        });
        rows
    };

    // One warm forward buffer per model family, reused across every
    // example of both datasets (bitwise identical to the allocating
    // convenience wrappers, without a fresh buffer per call).
    let mut buf = PredictBuffer::new();
    let mut eb = EnsembleBuffer::new();
    let mut rows = Vec::new();
    rows.extend(eval("netmhcpan4-style (single MLP)", &mut |x| {
        netmhc.predict_value_with(x, &mut buf)
    }));
    rows.extend(eval("mhcflurry-style (ensemble)", &mut |x| {
        flurry.predict_value_with(x, &mut eb)
    }));
    rows.extend(eval("mlp-mhc (ours, tuned)", &mut |x| {
        tuned.predict_value_with(x, &mut buf)
    }));
    rows.extend(eval("ridge baseline", &mut |x| ridge.predict(x)));
    rows
}

/// Builds the full tables report.
pub fn report_with(config: &Config, ctx: &RunContext) -> Report {
    let mut r = Report::new("tables", "Tables");
    r.text(render_infrastructure());
    r.text("\n");
    r.text(render_search_spaces(config.effort.scale()));

    r.text("Table 8: model comparison on the MHC binding task\n\n");
    let mut t = Table::new(vec![
        "model".into(),
        "dataset".into(),
        "AUC".into(),
        "PCC".into(),
    ]);
    for row in table8(config, ctx) {
        t.add_row(vec![
            row.model.to_string(),
            row.dataset.to_string(),
            num(row.auc, 3),
            num(row.pcc, 3),
        ]);
    }
    r.table(t);
    r.text(
        "\nExpected shape (paper Table 8): all shallow models in a similar AUC\n\
         band in-distribution; every model degrades on the external (shifted)\n\
         dataset, as NetMHCpan4/MHCflurry/MLP-MHC do on HPV.\n",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_has_all_models_and_datasets() {
        let rows = table8(&Config::test(), &RunContext::serial());
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.auc >= 0.0 && row.auc <= 1.0, "{row:?}");
            assert!(row.pcc >= -1.0 && row.pcc <= 1.0, "{row:?}");
        }
        // Nonlinear models should rank in-distribution examples well above
        // chance.
        let tuned = rows
            .iter()
            .find(|r| r.model.contains("ours") && r.dataset == "binding-test")
            .expect("tuned row");
        assert!(tuned.auc > 0.6, "tuned AUC {}", tuned.auc);
    }

    #[test]
    fn external_shift_degrades_performance() {
        let rows = table8(&Config::test(), &RunContext::serial());
        let auc_of = |model_substr: &str, ds: &str| {
            rows.iter()
                .find(|r| r.model.contains(model_substr) && r.dataset == ds)
                .map(|r| r.auc)
                .expect("row")
        };
        // The shifted dataset is a different task: in-distribution AUC is
        // higher than external for the ensemble (most stable model).
        assert!(auc_of("mhcflurry", "binding-test") >= auc_of("mhcflurry", "hpv-external") - 0.05);
    }

    #[test]
    fn report_renders_all_tables() {
        let r = report_with(&Config::test(), &RunContext::serial()).render_text();
        assert!(r.contains("Tables 2/3/5/6/7"));
        assert!(r.contains("Table 8"));
        assert!(r.contains("learning_rate"));
        assert!(r.contains("mhcflurry-style"));
    }
}
