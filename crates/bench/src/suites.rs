//! The benchmark suites, shared by the `cargo bench` targets (each
//! `benches/*.rs` is a thin wrapper) and the `varbench bench` CLI
//! subcommand — so the perf trajectory in `BENCH_*.json` is reproducible
//! from the shipped binary without cargo.

use crate::timing::{black_box, Harness};
use varbench_core::compare::compare_paired;
use varbench_core::ctx::RunContext;
use varbench_core::estimator::{fix_hopt_estimator, ideal_estimator, Randomize};
use varbench_core::simulation::{detection_study, DetectionConfig, SimulatedTask};
use varbench_data::augment::Identity;
use varbench_data::synth::{binary_overlap, BinaryOverlapConfig};
use varbench_hpo::{
    minimize, BayesOpt, BayesOptConfig, Dim, NoisyGridSearch, RandomSearch, SearchSpace,
};
use varbench_linalg::{Cholesky, Matrix};
use varbench_models::linear::RidgeRegression;
use varbench_models::{Mlp, MlpConfig, PredictBuffer, TrainConfig, TrainSeeds};
use varbench_pipeline::{CaseStudy, HpoAlgorithm, Scale, SeedAssignment};
use varbench_rng::{Rng, SeedTree};
use varbench_stats::bootstrap::percentile_ci_prob_outperform;
use varbench_stats::describe::mean;
use varbench_stats::power::noether_sample_size;
use varbench_stats::tests::mann_whitney::mann_whitney_u;
use varbench_stats::tests::shapiro_wilk::shapiro_wilk;
use varbench_stats::tests::Alternative;
use varbench_stats::{standard_normal_quantile, Normal};

/// A suite body: fills a [`Harness`] with its benchmarks.
pub type SuiteFn = fn(&mut Harness);

/// Every suite, in the order `varbench bench` runs them.
pub const SUITES: &[(&str, SuiteFn)] = &[
    ("linalg", linalg),
    ("gemm", gemm),
    ("stats", stats),
    ("bootstrap_par", bootstrap_par),
    ("models", models),
    ("eval", eval),
    ("estimators", estimators),
    ("compare", compare),
    ("hpo", hpo),
    ("serve", serve),
];

/// Looks up a suite body by name.
pub fn find(name: &str) -> Option<SuiteFn> {
    SUITES.iter().find(|(n, _)| *n == name).map(|&(_, f)| f)
}

fn sample(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.normal(0.0, 1.0)).collect()
}

/// Dense kernels: matmul (plain and transpose-aware), matvec, Cholesky.
pub fn linalg(c: &mut Harness) {
    let n = 64;
    let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) as f64 * 0.01).sin());
    let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 7) as f64 * 0.02).cos());

    c.bench_function("matmul_n64", |bch| {
        bch.iter(|| black_box(&a).matmul(black_box(&b)))
    });

    c.bench_function("matmul_transb_n64", |bch| {
        bch.iter(|| black_box(&a).matmul_transb(black_box(&b)))
    });

    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
    let mut out = vec![0.0; n];
    c.bench_function("matvec_into_n64", |bch| {
        bch.iter(|| {
            black_box(&a).matvec_into(black_box(&x), &mut out);
            out[0]
        })
    });

    // SPD matrix for factorization/solve.
    let mut spd = a.matmul_transb(&a);
    spd.add_diagonal(1.0);
    c.bench_function("cholesky_factor_n64", |bch| {
        bch.iter(|| Cholesky::new(black_box(&spd)).expect("SPD"))
    });

    let chol = Cholesky::new(&spd).expect("SPD");
    c.bench_function("cholesky_solve_n64", |bch| {
        bch.iter(|| chol.solve(black_box(&x)))
    });
}

/// The batch-GEMM training kernels, at the shapes `Mlp::train` drives
/// them with on the default architecture (batch 32, 16 → 32 → 2 net).
pub fn gemm(c: &mut Harness) {
    use varbench_linalg::{compact_nonzero, gemm_col_nz_into, gemm_rows_into, gemm_transb_into};

    let (b, d, m) = (32usize, 16usize, 32usize);
    let x: Vec<f64> = (0..b * d).map(|i| (i as f64 * 0.23).sin()).collect();
    let w: Vec<f64> = (0..m * d).map(|i| (i as f64 * 0.71).cos()).collect();
    let mut wt = vec![0.0; m * d];
    for o in 0..m {
        for k in 0..d {
            wt[k * m + o] = w[o * d + k];
        }
    }
    let bias: Vec<f64> = (0..m).map(|i| i as f64 * 0.01).collect();
    let mut out = vec![0.0; b * m];
    // The hidden-layer forward: 32 example rows through 16 → 32.
    c.bench_function("gemm_rows_fwd_b32_16x32", |bch| {
        bch.iter(|| {
            gemm_rows_into(black_box(&x), black_box(&wt), &bias, m, &mut out);
            out[0]
        })
    });

    // The 2-logit output head: 32 example rows through 32 → 2.
    let act: Vec<f64> = (0..b * m)
        .map(|i| ((i as f64 * 0.11).sin()).max(0.0))
        .collect();
    let w2: Vec<f64> = (0..2 * m).map(|i| (i as f64 * 0.31).cos()).collect();
    let bias2 = [0.05, -0.05];
    let mut out2 = vec![0.0; b * 2];
    c.bench_function("gemm_transb_head_b32_32x2", |bch| {
        bch.iter(|| {
            gemm_transb_into(black_box(&act), black_box(&w2), &bias2, 2, &mut out2);
            out2[0]
        })
    });

    // The gradient pass: 32 output rows of Δᵀ·X with ReLU-sparse deltas
    // (~half zero), deltas read strided from the example-major slab.
    let deltas: Vec<f64> = (0..b * m)
        .map(|i| {
            if (i * 7) % 13 < 6 {
                0.0
            } else {
                (i as f64 * 0.17).sin()
            }
        })
        .collect();
    let mut idx = vec![0usize; b];
    let mut col = vec![0.0; b];
    let mut grow = vec![0.0; d];
    c.bench_function("gemm_col_nz_grad_b32_32x16", |bch| {
        bch.iter(|| {
            let mut acc = 0.0;
            for o in 0..m {
                for (si, cv) in col.iter_mut().enumerate() {
                    *cv = deltas[si * m + o];
                }
                let nnz = compact_nonzero(&col, &mut idx);
                acc += gemm_col_nz_into(
                    black_box(&deltas),
                    m,
                    o,
                    &idx[..nnz],
                    black_box(&x),
                    d,
                    &mut grow,
                );
            }
            acc
        })
    });
}

/// Statistical primitives.
pub fn stats(c: &mut Harness) {
    c.bench_function("normal_quantile", |b| {
        b.iter(|| standard_normal_quantile(black_box(0.975)))
    });

    c.bench_function("normal_cdf", |b| {
        let n = Normal::standard();
        b.iter(|| n.cdf(black_box(1.3)))
    });

    let a = sample(50, 1);
    let bb = sample(50, 2);
    c.bench_function("mann_whitney_n50", |b| {
        b.iter(|| mann_whitney_u(black_box(&a), black_box(&bb), Alternative::TwoSided))
    });

    let xs = sample(100, 3);
    c.bench_function("shapiro_wilk_n100", |b| {
        b.iter(|| shapiro_wilk(black_box(&xs)).unwrap())
    });

    let pa = sample(29, 4);
    let pb = sample(29, 5);
    c.bench_function("bootstrap_ci_prob_outperform_k29_r500", |b| {
        b.iter(|| {
            let mut rng = Rng::seed_from_u64(6);
            percentile_ci_prob_outperform(black_box(&pa), black_box(&pb), 500, 0.05, &mut rng)
        })
    });

    c.bench_function("noether_sample_size", |b| {
        b.iter(|| noether_sample_size(black_box(0.75), 0.05, 0.05))
    });

    let big = sample(10_000, 7);
    c.bench_function("mean_n10000", |b| b.iter(|| mean(black_box(&big))));
}

/// Bootstrap confidence intervals: the serial stream, the split-stream
/// serial driver, and the split stream fanned across the executor (on a
/// multi-core box the last scales near-linearly in the resample loop; on
/// one core it measures the scheduling overhead).
pub fn bootstrap_par(c: &mut Harness) {
    use varbench_core::compare::compare_paired_with;
    use varbench_core::ctx::BootstrapMode;
    use varbench_core::exec::Runner;
    use varbench_pipeline::MeasureCache;
    use varbench_stats::bootstrap::percentile_ci_prob_outperform_split;

    let mut gen = Rng::seed_from_u64(9);
    let a: Vec<f64> = (0..50).map(|_| gen.normal(0.76, 0.02)).collect();
    let b: Vec<f64> = (0..50).map(|_| gen.normal(0.75, 0.02)).collect();

    c.bench_function("bootstrap_serial_k50_r1000", |bch| {
        bch.iter(|| {
            let mut rng = Rng::seed_from_u64(10);
            percentile_ci_prob_outperform(black_box(&a), black_box(&b), 1000, 0.05, &mut rng)
        })
    });

    c.bench_function("bootstrap_split_k50_r1000", |bch| {
        bch.iter(|| {
            let mut rng = Rng::seed_from_u64(10);
            percentile_ci_prob_outperform_split(black_box(&a), black_box(&b), 1000, 0.05, &mut rng)
        })
    });

    let par = RunContext::new(Runner::new(0), MeasureCache::disabled())
        .with_bootstrap(BootstrapMode::SplitPerReplicate);
    c.bench_function("bootstrap_split_par_k50_r1000", |bch| {
        bch.iter(|| {
            let mut rng = Rng::seed_from_u64(10);
            compare_paired_with(
                black_box(&a),
                black_box(&b),
                0.75,
                0.05,
                1000,
                &mut rng,
                &par,
            )
        })
    });
}

/// Model training and inference.
pub fn models(c: &mut Harness) {
    let mut rng = Rng::seed_from_u64(1);
    let ds = binary_overlap(
        &BinaryOverlapConfig {
            n: 500,
            dim: 16,
            separation: 2.0,
            ..Default::default()
        },
        &mut rng,
    );

    c.bench_function("mlp_train_1epoch_n500", |b| {
        b.iter(|| {
            let mut seeds = TrainSeeds::from_tree(&SeedTree::new(2));
            Mlp::train(
                &MlpConfig::default(),
                &TrainConfig {
                    epochs: 1,
                    ..Default::default()
                },
                black_box(&ds),
                &Identity,
                &mut seeds,
            )
        })
    });

    let mut seeds = TrainSeeds::from_tree(&SeedTree::new(3));
    let mlp = Mlp::train(
        &MlpConfig::default(),
        &TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        &ds,
        &Identity,
        &mut seeds,
    );
    let x = ds.x(0).to_vec();
    c.bench_function("mlp_predict", |b| {
        b.iter(|| mlp.predict_class(black_box(&x)))
    });

    // The allocation-free evaluation hot path.
    let mut buf = PredictBuffer::new();
    c.bench_function("mlp_predict_buffered", |b| {
        b.iter(|| mlp.predict_class_with(black_box(&x), &mut buf))
    });

    // Regression data for ridge.
    let mut rng = Rng::seed_from_u64(4);
    let n = 400;
    let d = 16;
    let mut features = Vec::with_capacity(n * d);
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let mut s = 0.0;
        for j in 0..d {
            let v = rng.normal(0.0, 1.0);
            s += v * (j as f64 * 0.1);
            features.push(v);
        }
        values.push(s);
    }
    let reg = varbench_data::Dataset::new(features, d, varbench_data::Targets::Values(values));
    c.bench_function("ridge_fit_n400_d16", |b| {
        b.iter(|| RidgeRegression::fit(black_box(&reg), 1e-3))
    });
}

/// The batched inference path: the same 64-example scoring work driven
/// per example (warm buffers, the pre-batching hot path) and through the
/// batch-GEMM kernels — the pair is the honest A/B for the eval rewrite,
/// since both sides do identical arithmetic and produce bit-identical
/// outputs. Plus the metric evaluator that sits on top of it.
pub fn eval(c: &mut Harness) {
    use varbench_models::ensemble::{EnsembleBuffer, MlpEnsemble};
    use varbench_models::EvalWorkspace;
    use varbench_pipeline::MetricKind;

    const BATCH: usize = 64;
    let mut rng = Rng::seed_from_u64(1);
    let ds = binary_overlap(
        &BinaryOverlapConfig {
            n: 500,
            dim: 16,
            separation: 2.0,
            ..Default::default()
        },
        &mut rng,
    );
    let mut seeds = TrainSeeds::from_tree(&SeedTree::new(3));
    let mlp = Mlp::train(
        &MlpConfig::default(),
        &TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        &ds,
        &Identity,
        &mut seeds,
    );

    // A side: one warm-buffer forward pass per example, 64 examples.
    let mut buf = PredictBuffer::new();
    c.bench_function("mlp_predict_loop64", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..BATCH {
                acc += mlp.predict_class_with(black_box(ds.x(i)), &mut buf);
            }
            acc
        })
    });

    // B side: the same 64 examples through one batched forward pass.
    let mut ws = EvalWorkspace::new();
    let mut classes: Vec<usize> = Vec::new();
    c.bench_function("mlp_predict_batch64", |b| {
        b.iter(|| {
            mlp.predict_classes_batch_into(
                BATCH,
                |si, row| row.copy_from_slice(black_box(ds.x(si))),
                &mut ws,
                &mut classes,
            );
            classes[0]
        })
    });

    // The metric evaluator over the full pool (chunked batched forward).
    let indices: Vec<usize> = (0..ds.len()).collect();
    c.bench_function("eval_accuracy_n500", |b| {
        b.iter(|| MetricKind::Accuracy.evaluate(black_box(&mlp), black_box(&ds), &indices))
    });

    // Ensemble scoring: per-example warm-buffer loop vs one batched pass.
    let reg = {
        let mut r = Rng::seed_from_u64(5);
        varbench_data::synth::binding_regression(
            &varbench_data::synth::BindingConfig {
                n: 500,
                dim: 16,
                ..Default::default()
            },
            &mut r,
        )
    };
    let ens = MlpEnsemble::train(
        3,
        &MlpConfig::default(),
        &TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        &reg,
        &Identity,
        &SeedTree::new(6),
    );
    let mut eb = EnsembleBuffer::new();
    c.bench_function("ensemble_value_loop64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..BATCH {
                acc += ens.predict_value_with(black_box(reg.x(i)), &mut eb);
            }
            acc
        })
    });
    let mut vals: Vec<f64> = Vec::new();
    c.bench_function("ensemble_value_batch64", |b| {
        b.iter(|| {
            ens.predict_values_batch_into(
                BATCH,
                |si, row| row.copy_from_slice(black_box(reg.x(si))),
                &mut eb,
                &mut vals,
            );
            vals[0]
        })
    });

    // Ridge scoring: per-example dot products vs one transposed GEMM.
    let ridge = {
        let mut r = Rng::seed_from_u64(7);
        let (n, d) = (400usize, 16usize);
        let mut features = Vec::with_capacity(n * d);
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let mut s = 0.0;
            for j in 0..d {
                let v = r.normal(0.0, 1.0);
                s += v * (j as f64 * 0.1);
                features.push(v);
            }
            values.push(s);
        }
        let reg_ds =
            varbench_data::Dataset::new(features, d, varbench_data::Targets::Values(values));
        RidgeRegression::fit(&reg_ds, 1e-3)
    };
    let staged: Vec<f64> = (0..BATCH * 16).map(|i| (i as f64 * 0.17).sin()).collect();
    c.bench_function("ridge_predict_loop64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for row in staged.chunks_exact(16) {
                acc += ridge.predict(black_box(row));
            }
            acc
        })
    });
    let mut scores = vec![0.0; BATCH];
    c.bench_function("ridge_predict_batch64", |b| {
        b.iter(|| {
            ridge.predict_batch_into(black_box(&staged), &mut scores);
            scores[0]
        })
    });
}

/// Performance estimators on Test-scale pipelines (the end-to-end cost the
/// library's users pay).
pub fn estimators(c: &mut Harness) {
    let cs = CaseStudy::glue_rte_bert(Scale::Test);

    c.bench_function("pipeline_single_training", |b| {
        let seeds = SeedAssignment::all_fixed(1);
        let params = cs.default_params().to_vec();
        b.iter(|| cs.run_with_params(&params, &seeds))
    });

    c.bench_function("ideal_estimator_k2_t3", |b| {
        let ctx = RunContext::serial();
        b.iter(|| ideal_estimator(&cs, 2, HpoAlgorithm::RandomSearch, 3, 1, &ctx))
    });

    c.bench_function("fix_hopt_estimator_k4_t3_all", |b| {
        let ctx = RunContext::serial();
        b.iter(|| {
            fix_hopt_estimator(
                &cs,
                4,
                HpoAlgorithm::RandomSearch,
                3,
                1,
                0,
                Randomize::All,
                &ctx,
            )
        })
    });

    c.bench_function("hopt_bayes_budget6", |b| {
        let seeds = SeedAssignment::all_fixed(2);
        b.iter(|| cs.hopt(&seeds, HpoAlgorithm::BayesOpt, 6))
    });
}

/// Comparison/decision machinery.
pub fn compare(c: &mut Harness) {
    let mut rng = Rng::seed_from_u64(1);
    let a: Vec<f64> = (0..29).map(|_| rng.normal(0.76, 0.02)).collect();
    let b: Vec<f64> = (0..29).map(|_| rng.normal(0.75, 0.02)).collect();

    c.bench_function("compare_paired_k29_r1000", |bch| {
        bch.iter(|| {
            let mut r = Rng::seed_from_u64(2);
            compare_paired(black_box(&a), black_box(&b), 0.75, 0.05, 1000, &mut r)
        })
    });

    c.bench_function("detection_point_20sims", |bch| {
        let task = SimulatedTask::new(0.02, 0.01, 0.015);
        let config = DetectionConfig {
            k: 50,
            n_simulations: 20,
            gamma: 0.75,
            delta: 0.04,
            alpha: 0.05,
            resamples: 100,
        };
        bch.iter(|| detection_study(black_box(&task), &[0.75], &config, 3))
    });
}

/// The serve subsystem's request path: `route()` driven directly (no
/// sockets), so the numbers isolate dispatch + protocol + cache lookup
/// from kernel networking. The warm-cache request benches are the
/// headline: a served study that answers without computing anything.
pub fn serve(c: &mut Harness) {
    use crate::protocol::StudyRequest;
    use crate::serve::{route, ServeState};
    use varbench_core::json::Json;

    let state = ServeState::new(RunContext::serial_cached());

    c.bench_function("route_health", |b| {
        b.iter(|| route(black_box(&state), "GET", "/health", ""))
    });

    c.bench_function("route_workloads", |b| {
        b.iter(|| route(black_box(&state), "GET", "/v1/workloads", ""))
    });

    let study = r#"{"workload":"synthetic-ridge","effort":"test","seeds":4,"gamma":0.75}"#;
    c.bench_function("study_request_parse", |b| {
        b.iter(|| StudyRequest::from_json(&Json::parse(black_box(study)).unwrap()))
    });

    // Warm the shared cache once, then measure pure cache-hit serving —
    // the steady state of a long-running server.
    let (status, _) = route(&state, "POST", "/v1/study", study);
    assert_eq!(status, 200, "warmup request succeeds");
    c.bench_function("route_study_warm_cache", |b| {
        b.iter(|| route(black_box(&state), "POST", "/v1/study", black_box(study)))
    });

    let run = r#"{"artifacts":["workload-synth"],"effort":"test"}"#;
    let (status, _) = route(&state, "POST", "/v1/run", run);
    assert_eq!(status, 200, "warmup request succeeds");
    c.bench_function("route_run_warm_cache", |b| {
        b.iter(|| route(black_box(&state), "POST", "/v1/run", black_box(run)))
    });

    // Full socket round-trips against a live server on loopback: one
    // reused keep-alive connection vs a fresh connection per request —
    // the handshake + teardown cost the keep-alive path amortizes away.
    // (HttpClient transparently reconnects when the server's per-
    // connection request cap closes the session mid-bench.)
    {
        use crate::serve::{http_request, HttpClient, Server};

        let server = Server::bind("127.0.0.1:0", ServeState::new(RunContext::serial_cached()))
            .expect("bind loopback");
        let addr = server.local_addr().expect("bound addr");
        let handle = std::thread::spawn(move || server.run());

        let mut client = HttpClient::connect(addr).expect("connect to own server");
        c.bench_function("http_keepalive_request", |b| {
            b.iter(|| {
                client
                    .request("GET", "/health", None)
                    .expect("keep-alive health")
            })
        });
        drop(client);

        c.bench_function("http_oneshot_request", |b| {
            b.iter(|| http_request(addr, "GET", "/health", None).expect("one-shot health"))
        });

        let _ = http_request(addr, "POST", "/v1/shutdown", None);
        let _ = handle.join();
    }
}

/// Hyperparameter optimizers.
pub fn hpo(c: &mut Harness) {
    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            ("lr".into(), Dim::log_uniform(1e-4, 1e0)),
            ("wd".into(), Dim::log_uniform(1e-6, 1e-2)),
            ("mom".into(), Dim::uniform(0.5, 0.99)),
        ])
    }

    fn quadratic(p: &[f64]) -> f64 {
        (p[0].ln() - (1e-2f64).ln()).powi(2) + (p[2] - 0.9).powi(2)
    }

    c.bench_function("random_search_30_trials", |b| {
        b.iter(|| {
            let mut opt = RandomSearch::new(space(), 1);
            minimize(&mut opt, 30, |p| quadratic(black_box(p)))
        })
    });

    c.bench_function("noisy_grid_construction_27pts", |b| {
        b.iter(|| NoisyGridSearch::new(black_box(space()), 3, 2))
    });

    c.bench_function("bayesopt_30_trials", |b| {
        b.iter(|| {
            let mut opt = BayesOpt::new(space(), BayesOptConfig::default(), 3);
            minimize(&mut opt, 30, |p| quadratic(black_box(p)))
        })
    });
}
