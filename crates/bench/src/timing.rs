//! Dependency-free micro-benchmark harness (`harness = false` bench
//! targets), replacing `criterion` so the workspace builds with an empty
//! cargo registry.
//!
//! Protocol: each benchmark is auto-calibrated to a per-rep target wall
//! time, then timed over `reps` repetitions; the reported figure is the
//! **median** per-iteration nanoseconds (robust to scheduler noise, like
//! criterion's default estimator). Results are printed as one
//! machine-readable line per benchmark:
//!
//! ```text
//! bench suite=stats name=mean_n10000 iters=4096 reps=11 median_ns=182 min_ns=180 max_ns=190
//! ```
//!
//! Environment knobs:
//!
//! * `VARBENCH_BENCH_REPS` — repetitions per benchmark (default 11);
//! * `VARBENCH_BENCH_TARGET_MS` — calibrated wall time per rep in
//!   milliseconds (default 5; lower it for smoke runs in CI).

use std::time::Instant;

pub use std::hint::black_box;

/// Reads a positive integer knob from the environment, with a default.
fn env_knob(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Times one rep: `iters` back-to-back calls of `f`, total nanoseconds.
// This module is the one registered wall-clock site (lint L002); the
// clippy disallowed-methods mirror needs the same carve-out.
#[allow(clippy::disallowed_methods)]
fn time_rep<T>(f: &mut impl FnMut() -> T, iters: u64) -> u128 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos()
}

/// Per-benchmark timing state handed to the closure, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    reps: u64,
    target_ns: u128,
    /// Filled by [`Bencher::iter`]: (iters, per-rep total nanoseconds).
    result: Option<(u64, Vec<u128>)>,
}

impl Bencher {
    /// Measures `f`, auto-calibrating the iteration count so one rep
    /// takes roughly the configured target wall time.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Calibration: double iters until one rep crosses 1/8 of the
        // target, then scale linearly to the target.
        let mut iters: u64 = 1;
        let mut elapsed = time_rep(&mut f, iters);
        while elapsed * 8 < self.target_ns && iters < u64::MAX / 4 {
            iters *= 2;
            elapsed = time_rep(&mut f, iters);
        }
        if let Some(scaled) = (iters as u128 * self.target_ns).checked_div(elapsed) {
            iters = u64::try_from(scaled.max(1)).unwrap_or(u64::MAX);
        }
        let samples = (0..self.reps).map(|_| time_rep(&mut f, iters)).collect();
        self.result = Some((iters, samples));
    }
}

/// One benchmark's measured result, as printed on its machine-readable
/// line (and serialized into `BENCH_*.json` snapshots).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Suite the benchmark belongs to (e.g. `models`).
    pub suite: String,
    /// Benchmark name (e.g. `mlp_train_1epoch_n500`).
    pub name: String,
    /// Calibrated iterations per repetition.
    pub iters: u64,
    /// Repetitions timed.
    pub reps: u64,
    /// Median per-iteration nanoseconds (the headline figure).
    pub median_ns: u128,
    /// Fastest repetition's per-iteration nanoseconds.
    pub min_ns: u128,
    /// Slowest repetition's per-iteration nanoseconds.
    pub max_ns: u128,
}

impl BenchResult {
    /// The machine-readable `bench …` line for this result.
    pub fn line(&self) -> String {
        format!(
            "bench suite={} name={} iters={} reps={} median_ns={} min_ns={} max_ns={}",
            self.suite, self.name, self.iters, self.reps, self.median_ns, self.min_ns, self.max_ns
        )
    }

    /// This result as a flat JSON object (the element shape of
    /// `BENCH_*.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"suite\":\"{}\",\"name\":\"{}\",\"iters\":{},\"reps\":{},\"median_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
            self.suite, self.name, self.iters, self.reps, self.median_ns, self.min_ns, self.max_ns
        )
    }
}

/// Renders results as a `BENCH_*.json` snapshot document — the exact
/// bytes `varbench bench --json` writes to stdout (one flat object per
/// line, trailing newline). [`parse_snapshot`] inverts it bit-exactly:
/// `render_snapshot(&parse_snapshot(s)?) == s` for any snapshot this
/// function produced, which is what keeps the committed `BENCH_*.json`
/// files machine-readable as fields evolve (pinned by
/// `crates/bench/tests/snapshot_roundtrip.rs`).
pub fn render_snapshot(results: &[BenchResult]) -> String {
    if results.is_empty() {
        return "[]\n".to_string();
    }
    let docs: Vec<String> = results
        .iter()
        .map(|r| format!("  {}", r.to_json()))
        .collect();
    format!("[\n{}\n]\n", docs.join(",\n"))
}

/// Parses a `BENCH_*.json` snapshot: a JSON array of flat objects with
/// string `suite`/`name` fields and integer timing fields, exactly the
/// shape `varbench bench --json` (and historically `scripts/bench.sh`)
/// emits. Not a general JSON parser — unknown keys are ignored, nesting
/// is rejected.
///
/// # Errors
///
/// Returns a message describing the first malformed construct.
pub fn parse_snapshot(s: &str) -> Result<Vec<BenchResult>, String> {
    let body = s.trim();
    let body = body
        .strip_prefix('[')
        .and_then(|b| b.strip_suffix(']'))
        .ok_or("snapshot is not a JSON array")?;
    let mut out = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let start = rest.find('{').ok_or("expected an object")?;
        let end = rest[start..]
            .find('}')
            .ok_or("unterminated object in snapshot")?
            + start;
        let obj = &rest[start + 1..end];
        let mut r = BenchResult {
            suite: String::new(),
            name: String::new(),
            iters: 0,
            reps: 0,
            median_ns: 0,
            min_ns: 0,
            max_ns: 0,
        };
        for field in obj.split(',') {
            let (k, v) = field
                .split_once(':')
                .ok_or_else(|| format!("malformed field '{field}'"))?;
            let k = k.trim().trim_matches('"');
            let v = v.trim();
            let int = || -> Result<u128, String> {
                v.parse::<u128>()
                    .map_err(|_| format!("non-integer value for '{k}': {v}"))
            };
            match k {
                "suite" => r.suite = v.trim_matches('"').to_string(),
                "name" => r.name = v.trim_matches('"').to_string(),
                "iters" => r.iters = int()? as u64,
                "reps" => r.reps = int()? as u64,
                "median_ns" => r.median_ns = int()?,
                "min_ns" => r.min_ns = int()?,
                "max_ns" => r.max_ns = int()?,
                _ => {}
            }
        }
        if r.suite.is_empty() || r.name.is_empty() {
            return Err("snapshot entry missing suite/name".into());
        }
        out.push(r);
        rest = rest[end + 1..].trim_start().trim_start_matches(',').trim();
    }
    Ok(out)
}

/// Where a [`Harness`] prints its per-benchmark result lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Output {
    /// Print to stdout (the `cargo bench` contract `scripts/bench.sh`
    /// greps).
    Stdout,
    /// Print to stderr — used by `varbench bench --json`, whose stdout
    /// must stay a single valid JSON document.
    Stderr,
    /// Print nothing; results are only collected.
    Quiet,
}

/// Benchmark registry + reporter, mirroring the slice of
/// `criterion::Criterion` the benches use. Results are printed as they
/// complete *and* collected for programmatic use ([`Harness::results`]).
pub struct Harness {
    suite: &'static str,
    reps: u64,
    target_ns: u128,
    output: Output,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Creates a harness for the named suite, reading the environment
    /// knobs documented at module level.
    pub fn new(suite: &'static str) -> Self {
        Harness::with_config(
            suite,
            env_knob("VARBENCH_BENCH_REPS", 11),
            env_knob("VARBENCH_BENCH_TARGET_MS", 5),
        )
    }

    /// Creates a harness with explicit knobs (no environment reads):
    /// `reps` repetitions per benchmark, `target_ms` calibrated wall time
    /// per rep.
    pub fn with_config(suite: &'static str, reps: u64, target_ms: u64) -> Self {
        Harness {
            suite,
            reps,
            target_ns: target_ms as u128 * 1_000_000,
            output: Output::Stdout,
            results: Vec::new(),
        }
    }

    /// Redirects (or silences) the per-benchmark result lines.
    pub fn with_output(mut self, output: Output) -> Self {
        self.output = output;
        self
    }

    /// The results collected so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Consumes the harness, returning the collected results.
    pub fn into_results(self) -> Vec<BenchResult> {
        self.results
    }

    /// Runs one benchmark, prints its machine-readable result line (per
    /// the configured [`Output`]), and records the result.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            reps: self.reps,
            target_ns: self.target_ns,
            result: None,
        };
        f(&mut b);
        let (iters, mut samples) = b
            .result
            .unwrap_or_else(|| panic!("benchmark '{name}' never called Bencher::iter"));
        samples.sort_unstable();
        let per_iter = |total: u128| total / iters as u128;
        let result = BenchResult {
            suite: self.suite.to_string(),
            name: name.to_string(),
            iters,
            reps: self.reps,
            median_ns: per_iter(samples[samples.len() / 2]),
            min_ns: per_iter(samples[0]),
            max_ns: per_iter(samples[samples.len() - 1]),
        };
        match self.output {
            Output::Stdout => println!("{}", result.line()),
            Output::Stderr => eprintln!("{}", result.line()),
            Output::Quiet => {}
        }
        self.results.push(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_reps() {
        let mut b = Bencher {
            reps: 5,
            target_ns: 10_000,
            result: None,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        let (iters, samples) = b.result.expect("iter stored a result");
        assert!(iters >= 1);
        assert_eq!(samples.len(), 5);
    }

    #[test]
    fn harness_runs_registered_benchmarks() {
        // Explicit knobs: tests must not mutate process environment (other
        // tests in this binary read it concurrently).
        let mut h = Harness::with_config("selftest", 3, 1);
        let mut ran = false;
        h.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }

    #[test]
    #[should_panic(expected = "never called Bencher::iter")]
    fn missing_iter_is_an_error() {
        let mut h = Harness::with_config("selftest", 3, 1);
        h.bench_function("forgot", |_b| {});
    }

    #[test]
    fn results_are_collected_and_roundtrip_through_json() {
        let mut h = Harness::with_config("selftest", 3, 1).with_output(Output::Quiet);
        h.bench_function("alpha", |b| b.iter(|| black_box(2u64) * 3));
        h.bench_function("beta", |b| b.iter(|| black_box(5u64) + 7));
        let results = h.into_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].name, "alpha");
        let json = format!(
            "[\n  {},\n  {}\n]",
            results[0].to_json(),
            results[1].to_json()
        );
        let parsed = parse_snapshot(&json).expect("roundtrip");
        assert_eq!(parsed, results);
    }

    #[test]
    fn parse_snapshot_rejects_junk() {
        assert!(parse_snapshot("not json").is_err());
        assert!(
            parse_snapshot("[{\"suite\":\"s\"}]").is_err(),
            "missing name"
        );
        assert!(parse_snapshot("[{\"suite\":\"s\",\"name\":\"n\",\"median_ns\":x}]").is_err());
    }

    #[test]
    fn parse_snapshot_accepts_empty_array() {
        assert_eq!(parse_snapshot("[]").unwrap(), vec![]);
        assert_eq!(parse_snapshot("[\n]").unwrap(), vec![]);
    }
}
