//! Dependency-free micro-benchmark harness (`harness = false` bench
//! targets), replacing `criterion` so the workspace builds with an empty
//! cargo registry.
//!
//! Protocol: each benchmark is auto-calibrated to a per-rep target wall
//! time, then timed over `reps` repetitions; the reported figure is the
//! **median** per-iteration nanoseconds (robust to scheduler noise, like
//! criterion's default estimator). Results are printed as one
//! machine-readable line per benchmark:
//!
//! ```text
//! bench suite=stats name=mean_n10000 iters=4096 reps=11 median_ns=182 min_ns=180 max_ns=190
//! ```
//!
//! Environment knobs:
//!
//! * `VARBENCH_BENCH_REPS` — repetitions per benchmark (default 11);
//! * `VARBENCH_BENCH_TARGET_MS` — calibrated wall time per rep in
//!   milliseconds (default 5; lower it for smoke runs in CI).

use std::time::Instant;

pub use std::hint::black_box;

/// Reads a positive integer knob from the environment, with a default.
fn env_knob(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Times one rep: `iters` back-to-back calls of `f`, total nanoseconds.
fn time_rep<T>(f: &mut impl FnMut() -> T, iters: u64) -> u128 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos()
}

/// Per-benchmark timing state handed to the closure, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    reps: u64,
    target_ns: u128,
    /// Filled by [`Bencher::iter`]: (iters, per-rep total nanoseconds).
    result: Option<(u64, Vec<u128>)>,
}

impl Bencher {
    /// Measures `f`, auto-calibrating the iteration count so one rep
    /// takes roughly the configured target wall time.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Calibration: double iters until one rep crosses 1/8 of the
        // target, then scale linearly to the target.
        let mut iters: u64 = 1;
        let mut elapsed = time_rep(&mut f, iters);
        while elapsed * 8 < self.target_ns && iters < u64::MAX / 4 {
            iters *= 2;
            elapsed = time_rep(&mut f, iters);
        }
        if let Some(scaled) = (iters as u128 * self.target_ns).checked_div(elapsed) {
            iters = u64::try_from(scaled.max(1)).unwrap_or(u64::MAX);
        }
        let samples = (0..self.reps).map(|_| time_rep(&mut f, iters)).collect();
        self.result = Some((iters, samples));
    }
}

/// Benchmark registry + reporter, mirroring the slice of
/// `criterion::Criterion` the benches use.
pub struct Harness {
    suite: &'static str,
    reps: u64,
    target_ns: u128,
}

impl Harness {
    /// Creates a harness for the named suite, reading the environment
    /// knobs documented at module level.
    pub fn new(suite: &'static str) -> Self {
        Harness::with_config(
            suite,
            env_knob("VARBENCH_BENCH_REPS", 11),
            env_knob("VARBENCH_BENCH_TARGET_MS", 5),
        )
    }

    /// Creates a harness with explicit knobs (no environment reads):
    /// `reps` repetitions per benchmark, `target_ms` calibrated wall time
    /// per rep.
    pub fn with_config(suite: &'static str, reps: u64, target_ms: u64) -> Self {
        Harness {
            suite,
            reps,
            target_ns: target_ms as u128 * 1_000_000,
        }
    }

    /// Runs one benchmark and prints its machine-readable result line.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            reps: self.reps,
            target_ns: self.target_ns,
            result: None,
        };
        f(&mut b);
        let (iters, mut samples) = b
            .result
            .unwrap_or_else(|| panic!("benchmark '{name}' never called Bencher::iter"));
        samples.sort_unstable();
        let per_iter = |total: u128| total / iters as u128;
        let median = per_iter(samples[samples.len() / 2]);
        let min = per_iter(samples[0]);
        let max = per_iter(samples[samples.len() - 1]);
        println!(
            "bench suite={} name={} iters={} reps={} median_ns={} min_ns={} max_ns={}",
            self.suite, name, iters, self.reps, median, min, max
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_reps() {
        let mut b = Bencher {
            reps: 5,
            target_ns: 10_000,
            result: None,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        let (iters, samples) = b.result.expect("iter stored a result");
        assert!(iters >= 1);
        assert_eq!(samples.len(), 5);
    }

    #[test]
    fn harness_runs_registered_benchmarks() {
        // Explicit knobs: tests must not mutate process environment (other
        // tests in this binary read it concurrently).
        let mut h = Harness::with_config("selftest", 3, 1);
        let mut ran = false;
        h.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }

    #[test]
    #[should_panic(expected = "never called Bencher::iter")]
    fn missing_iter_is_an_error() {
        let mut h = Harness::with_config("selftest", 3, 1);
        h.bench_function("forgot", |_b| {});
    }
}
