//! The `varbench serve` request/response protocol: JSON request types,
//! their validation, and the shared report envelope.
//!
//! The protocol is the *semantic* layer of the serve subsystem — it
//! knows nothing about sockets (that is [`crate::serve`]). Everything
//! here is reused by the offline CLI, which is how the serve↔CLI
//! bit-identity rule is enforced structurally: a `POST /v1/run` body is
//! produced by the same [`json_envelope`] + `Report::to_json` calls as
//! `varbench run --json`, and a `POST /v1/study` by the same
//! [`Study`] builder as `varbench study`, so equal requests cannot
//! drift from equal CLI invocations.
//!
//! Requests reject unknown fields: a typo (`"seed"` for `"seeds"`)
//! must fail loudly, not silently run with defaults.

use crate::args::Effort;
use crate::registry::{self, Spec};
use crate::workloads;
use varbench_core::ctx::RunContext;
use varbench_core::json::Json;
use varbench_core::report::{json_string, Report};
use varbench_core::study::Study;
use varbench_pipeline::{HpoAlgorithm, VarianceSource};

/// The `varbench-report/1` JSON document wrapping rendered artifacts —
/// the one envelope shared by `varbench run --json`, per-artifact
/// `--out` files, and every serve report response.
pub fn json_envelope(effort: Effort, artifact_docs: &[String]) -> String {
    format!(
        "{{\"schema\":\"varbench-report/1\",\"effort\":{},\"artifacts\":[{}]}}",
        json_string(effort.label()),
        artifact_docs.join(",")
    )
}

/// Parses a variance-source label (`data_split`, `weights_init`, ... —
/// the [`VarianceSource::label`] vocabulary).
pub fn parse_source(label: &str) -> Option<VarianceSource> {
    VarianceSource::ALL
        .iter()
        .copied()
        .find(|s| s.label() == label)
}

/// Parses an HPO algorithm display name (`Random Search`, `Grid
/// Search`, `Noisy Grid Search`, `Bayes Opt`).
pub fn parse_algo(name: &str) -> Option<HpoAlgorithm> {
    [
        HpoAlgorithm::RandomSearch,
        HpoAlgorithm::GridSearch,
        HpoAlgorithm::NoisyGridSearch,
        HpoAlgorithm::BayesOpt,
    ]
    .into_iter()
    .find(|a| a.display_name() == name)
}

/// Rejects fields outside `allowed` (the anti-typo guard).
fn check_fields(doc: &Json, allowed: &[&str]) -> Result<(), String> {
    let fields = doc
        .as_object()
        .ok_or_else(|| format!("request must be a JSON object, got {}", doc.type_name()))?;
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown field \"{key}\" (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

/// Reads an optional field through `conv`, distinguishing "absent"
/// (`Ok(None)`) from "present but wrong type/value" (`Err`).
fn optional<T>(
    doc: &Json,
    key: &str,
    expected: &str,
    conv: impl Fn(&Json) -> Option<T>,
) -> Result<Option<T>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => conv(v)
            .map(Some)
            .ok_or_else(|| format!("field \"{key}\" must be {expected}, got {}", v.type_name())),
    }
}

fn parse_effort_field(doc: &Json) -> Result<Effort, String> {
    Ok(optional(doc, "effort", "a string", |v| {
        v.as_str().map(str::to_string)
    })?
    .map(|label| {
        Effort::from_label(&label)
            .ok_or_else(|| format!("unknown effort \"{label}\" (expected test, quick, or full)"))
    })
    .transpose()?
    .unwrap_or(Effort::Quick))
}

/// A `POST /v1/run` request: run registered artifacts, answer with the
/// same `varbench-report/1` envelope the CLI prints.
#[derive(Debug)]
pub struct RunRequest {
    /// The artifacts to run, resolved against the registry.
    pub artifacts: Vec<&'static Spec>,
    /// Effort preset (default `quick`).
    pub effort: Effort,
}

impl RunRequest {
    /// Validates a parsed JSON document into a request.
    ///
    /// Shape: `{"artifacts": ["fig1", ...] | ["all"], "effort"?: "test" |
    /// "quick" | "full"}`.
    pub fn from_json(doc: &Json) -> Result<RunRequest, String> {
        check_fields(doc, &["artifacts", "effort"])?;
        let names = doc
            .get("artifacts")
            .ok_or("missing field \"artifacts\"")?
            .as_array()
            .ok_or("field \"artifacts\" must be an array of names")?;
        if names.is_empty() {
            return Err("field \"artifacts\" must not be empty".into());
        }
        let names: Vec<&str> = names
            .iter()
            .map(|n| n.as_str().ok_or("artifact names must be strings"))
            .collect::<Result<_, _>>()?;
        let artifacts: Vec<&'static Spec> = if names == ["all"] {
            registry::all().iter().collect()
        } else {
            names
                .iter()
                .map(|n| {
                    registry::find(n)
                        .ok_or_else(|| format!("unknown artifact \"{n}\" (see GET /v1/artifacts)"))
                })
                .collect::<Result<_, _>>()?
        };
        Ok(RunRequest {
            artifacts,
            effort: parse_effort_field(doc)?,
        })
    }

    /// Runs the artifacts through `ctx` and renders the response body:
    /// the report envelope plus the CLI's trailing newline, so a warm
    /// request is byte-identical to `varbench run ... --json` stdout.
    pub fn run(&self, ctx: &RunContext) -> String {
        let reports = registry::run_specs(&self.artifacts, self.effort, ctx);
        let docs: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        let mut body = json_envelope(self.effort, &docs);
        body.push('\n');
        body
    }
}

/// A `POST /v1/study` request: a [`Study`]-builder invocation over any
/// registered workload.
#[derive(Debug)]
pub struct StudyRequest {
    /// Registered workload name (see `GET /v1/workloads`).
    pub workload: String,
    /// Effort preset — selects the workload scale (default `quick`).
    pub effort: Effort,
    /// Randomized ξ_O source set (default: all active sources).
    pub sources: Option<Vec<VarianceSource>>,
    /// Seeds per source (default: the builder's 10).
    pub seeds: Option<usize>,
    /// Base seed (default: the builder's).
    pub base_seed: Option<u64>,
    /// HPO budget; > 0 adds the ξ_H row (default: 0).
    pub budget: Option<usize>,
    /// HPO algorithm display name (default: random search).
    pub algo: Option<HpoAlgorithm>,
    /// Comparison threshold γ: adds the Noether planning block.
    pub gamma: Option<f64>,
    /// Report name override.
    pub name: Option<String>,
    /// Route the plan through the serve-side worker fleet: rows are
    /// enqueued into the lease queue and the response is assembled from
    /// the warm cache (default `false` — compute in-process). Ignored by
    /// offline [`StudyRequest::run`]; only the serve layer dispatches.
    pub dispatch: bool,
}

impl StudyRequest {
    /// Validates a parsed JSON document into a request.
    ///
    /// Shape: `{"workload": "synthetic-ridge", "effort"?, "sources"?:
    /// ["data_split", ...], "seeds"?, "base_seed"?, "budget"?, "algo"?,
    /// "gamma"?, "name"?, "dispatch"?: true}`.
    pub fn from_json(doc: &Json) -> Result<StudyRequest, String> {
        check_fields(
            doc,
            &[
                "workload",
                "effort",
                "sources",
                "seeds",
                "base_seed",
                "budget",
                "algo",
                "gamma",
                "name",
                "dispatch",
            ],
        )?;
        let workload = doc
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("missing string field \"workload\" (see GET /v1/workloads)")?
            .to_string();
        let sources = match doc.get("sources") {
            None => None,
            Some(v) => {
                let labels = v.as_array().ok_or("field \"sources\" must be an array")?;
                let parsed: Vec<VarianceSource> = labels
                    .iter()
                    .map(|l| {
                        let label = l.as_str().ok_or("source labels must be strings")?;
                        parse_source(label)
                            .ok_or_else(|| format!("unknown variance source \"{label}\""))
                    })
                    .collect::<Result<_, String>>()?;
                Some(parsed)
            }
        };
        let seeds = optional(doc, "seeds", "an integer >= 2", |v| {
            v.as_u64().filter(|&n| n >= 2).map(|n| n as usize)
        })?;
        let base_seed = optional(doc, "base_seed", "a non-negative integer", Json::as_u64)?;
        let budget = optional(doc, "budget", "a non-negative integer", |v| {
            v.as_u64().map(|n| n as usize)
        })?;
        let algo = optional(doc, "algo", "an algorithm display name", |v| {
            v.as_str().and_then(parse_algo)
        })?;
        let gamma = optional(doc, "gamma", "a number in (0, 1), != 0.5", |v| {
            v.as_f64()
                .filter(|g| *g > 0.0 && *g < 1.0 && (*g - 0.5).abs() > 1e-9)
        })?;
        let name = optional(doc, "name", "a string", |v| v.as_str().map(str::to_string))?;
        let dispatch = optional(doc, "dispatch", "a boolean", Json::as_bool)?.unwrap_or(false);
        Ok(StudyRequest {
            workload,
            effort: parse_effort_field(doc)?,
            sources,
            seeds,
            base_seed,
            budget,
            algo,
            gamma,
            name,
            dispatch,
        })
    }

    /// Resolves the workload this request targets (the effort preset
    /// picks its scale).
    pub fn find_workload(&self) -> Result<Box<dyn varbench_pipeline::Workload>, String> {
        workloads::find(&self.workload, self.effort.scale()).ok_or_else(|| {
            format!(
                "unknown workload \"{}\" (see GET /v1/workloads)",
                self.workload
            )
        })
    }

    /// Builds the configured [`Study`] over `workload` — the single
    /// builder chain behind [`StudyRequest::run`] *and* the worker-fleet
    /// dispatcher, so a dispatched study plans exactly the measurements
    /// the in-process study runs.
    pub fn configure<'w>(
        &self,
        workload: &'w dyn varbench_pipeline::Workload,
    ) -> Result<Study<'w>, String> {
        // Pre-validate what Study::run would panic on: a source selection
        // that leaves nothing to randomize is a client error, not a 500.
        if let Some(requested) = &self.sources {
            let usable = requested
                .iter()
                .any(|s| !s.is_hyperopt() && workload.active_sources().contains(s));
            if !usable {
                return Err(format!(
                    "no requested source is active for \"{}\" (active: {})",
                    self.workload,
                    workload
                        .active_sources()
                        .iter()
                        .map(|s| s.label())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        let mut study = Study::new(workload);
        if let Some(sources) = &self.sources {
            study = study.randomize(sources);
        }
        if let Some(n) = self.seeds {
            study = study.seeds(n);
        }
        if let Some(seed) = self.base_seed {
            study = study.base_seed(seed);
        }
        if let Some(budget) = self.budget {
            study = study.budget(budget);
        }
        if let Some(algo) = self.algo {
            study = study.algorithm(algo);
        }
        if let Some(gamma) = self.gamma {
            study = study.gamma(gamma);
        }
        if let Some(name) = &self.name {
            study = study.named(name.clone());
        }
        Ok(study)
    }

    /// Runs the study through `ctx`, returning the report (the caller
    /// picks a rendering — the serve layer wraps it in [`json_envelope`],
    /// the CLI may render text).
    pub fn run(&self, ctx: &RunContext) -> Result<Report, String> {
        let workload = self.find_workload()?;
        Ok(self.configure(workload.as_ref())?.run(ctx))
    }

    /// [`StudyRequest::run`] rendered as the serve response body: the
    /// one-report envelope plus trailing newline (byte-identical to
    /// `varbench study ... --json`).
    pub fn run_json(&self, ctx: &RunContext) -> Result<String, String> {
        let report = self.run(ctx)?;
        let mut body = json_envelope(self.effort, &[report.to_json()]);
        body.push('\n');
        Ok(body)
    }

    /// Renders the request as a `POST /v1/study` body (the `varbench
    /// study --addr` transport). Round-trips through
    /// [`StudyRequest::from_json`].
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"workload\":{}", json_string(&self.workload)),
            format!("\"effort\":{}", json_string(self.effort.label())),
        ];
        if let Some(sources) = &self.sources {
            let labels: Vec<String> = sources.iter().map(|s| json_string(s.label())).collect();
            fields.push(format!("\"sources\":[{}]", labels.join(",")));
        }
        if let Some(n) = self.seeds {
            fields.push(format!("\"seeds\":{n}"));
        }
        if let Some(seed) = self.base_seed {
            fields.push(format!("\"base_seed\":{seed}"));
        }
        if let Some(budget) = self.budget {
            fields.push(format!("\"budget\":{budget}"));
        }
        if let Some(algo) = self.algo {
            fields.push(format!("\"algo\":{}", json_string(algo.display_name())));
        }
        if let Some(gamma) = self.gamma {
            fields.push(format!("\"gamma\":{gamma}"));
        }
        if let Some(name) = &self.name {
            fields.push(format!("\"name\":{}", json_string(name)));
        }
        // Emitted only when set: a non-dispatching request keeps the
        // exact byte shape it had before the field existed.
        if self.dispatch {
            fields.push("\"dispatch\":true".to_string());
        }
        format!("{{{}}}", fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).expect("test request parses")
    }

    #[test]
    fn run_request_resolves_artifacts() {
        let r = RunRequest::from_json(&parse(
            r#"{"artifacts":["figc1","tables"],"effort":"test"}"#,
        ))
        .unwrap();
        assert_eq!(r.artifacts.len(), 2);
        assert_eq!(r.artifacts[0].name, "figc1");
        assert_eq!(r.effort, Effort::Test);
        let all = RunRequest::from_json(&parse(r#"{"artifacts":["all"]}"#)).unwrap();
        assert_eq!(all.artifacts.len(), registry::all().len());
        assert_eq!(all.effort, Effort::Quick, "effort defaults to quick");
    }

    #[test]
    fn run_request_rejects_bad_shapes() {
        for (body, needle) in [
            (r#"{}"#, "missing field \"artifacts\""),
            (r#"{"artifacts":[]}"#, "must not be empty"),
            (r#"{"artifacts":["nope"]}"#, "unknown artifact"),
            (r#"{"artifacts":[1]}"#, "must be strings"),
            (r#"{"artifacts":["fig1"],"effort":"max"}"#, "unknown effort"),
            (
                r#"{"artifacts":["fig1"],"efort":"test"}"#,
                "unknown field \"efort\"",
            ),
            (r#"[1]"#, "must be a JSON object"),
        ] {
            let err = RunRequest::from_json(&parse(body)).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn run_request_matches_cli_envelope() {
        let req =
            RunRequest::from_json(&parse(r#"{"artifacts":["figc1"],"effort":"test"}"#)).unwrap();
        let ctx = RunContext::serial_cached();
        let body = req.run(&ctx);
        // Exactly what `varbench run figc1 --test --json` prints.
        let spec = registry::find("figc1").unwrap();
        let report = spec.run(Effort::Test, &RunContext::serial());
        let expect = json_envelope(Effort::Test, &[report.to_json()]) + "\n";
        assert_eq!(body, expect);
    }

    #[test]
    fn study_request_full_shape() {
        let r = StudyRequest::from_json(&parse(
            r#"{"workload":"synthetic-ridge","effort":"test","sources":["data_split"],
                "seeds":4,"base_seed":161,"budget":2,"algo":"Bayes Opt","gamma":0.75,
                "name":"my-study"}"#,
        ))
        .unwrap();
        assert_eq!(r.workload, "synthetic-ridge");
        assert_eq!(r.sources, Some(vec![VarianceSource::DataSplit]));
        assert_eq!(
            (r.seeds, r.base_seed, r.budget),
            (Some(4), Some(161), Some(2))
        );
        assert_eq!(r.algo, Some(HpoAlgorithm::BayesOpt));
        assert_eq!(r.gamma, Some(0.75));
        let report = r.run(&RunContext::serial()).unwrap();
        assert_eq!(report.name(), "my-study");
        let text = report.render_text();
        assert!(text.contains("synthetic-ridge"), "{text}");
        assert!(text.contains(">= 29 paired runs"), "{text}");
    }

    #[test]
    fn study_request_rejects_bad_values() {
        for (body, needle) in [
            (r#"{"seeds":3}"#, "missing string field \"workload\""),
            (r#"{"workload":"x","seeds":1}"#, "must be an integer >= 2"),
            (r#"{"workload":"x","gamma":0.5}"#, "in (0, 1)"),
            (r#"{"workload":"x","gamma":1.5}"#, "in (0, 1)"),
            (r#"{"workload":"x","algo":"sgd"}"#, "algorithm display name"),
            (
                r#"{"workload":"x","sources":["weights"]}"#,
                "unknown variance source",
            ),
            (r#"{"workload":"x","budget":-1}"#, "non-negative"),
            (r#"{"workload":"x","dispatch":1}"#, "must be a boolean"),
            (r#"{"workload":"x","extra":1}"#, "unknown field \"extra\""),
        ] {
            let err = StudyRequest::from_json(&parse(body)).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn study_request_semantic_errors_are_not_panics() {
        let ctx = RunContext::serial();
        let unknown = StudyRequest::from_json(&parse(r#"{"workload":"nope"}"#)).unwrap();
        assert!(unknown.run(&ctx).unwrap_err().contains("unknown workload"));
        // weights_init is inert for the closed-form ridge workload: the
        // builder would panic; the protocol reports a client error.
        let inert = StudyRequest::from_json(&parse(
            r#"{"workload":"synthetic-ridge","effort":"test","sources":["weights_init"]}"#,
        ))
        .unwrap();
        let err = inert.run(&ctx).unwrap_err();
        assert!(err.contains("no requested source is active"), "{err}");
        assert!(
            err.contains("data_split"),
            "error lists active sources: {err}"
        );
    }

    #[test]
    fn study_request_round_trips_through_json() {
        for body in [
            r#"{"workload":"synthetic-ridge"}"#,
            r#"{"workload":"linear-logreg","effort":"test","sources":["data_split","data_order"],
                "seeds":4,"base_seed":7,"budget":3,"algo":"Grid Search","gamma":0.75,
                "name":"rt","dispatch":true}"#,
        ] {
            let req = StudyRequest::from_json(&parse(body)).unwrap();
            let again = StudyRequest::from_json(&parse(&req.to_json())).unwrap();
            assert_eq!(req.workload, again.workload);
            assert_eq!(req.effort, again.effort);
            assert_eq!(req.sources, again.sources);
            assert_eq!(req.seeds, again.seeds);
            assert_eq!(req.base_seed, again.base_seed);
            assert_eq!(req.budget, again.budget);
            assert_eq!(req.algo, again.algo);
            assert_eq!(req.gamma, again.gamma);
            assert_eq!(req.name, again.name);
            assert_eq!(req.dispatch, again.dispatch);
        }
        // The flag only appears in the wire shape when set.
        let plain = StudyRequest::from_json(&parse(r#"{"workload":"synthetic-ridge"}"#)).unwrap();
        assert!(!plain.dispatch);
        assert!(!plain.to_json().contains("dispatch"));
    }

    #[test]
    fn source_and_algo_vocabularies() {
        assert_eq!(parse_source("data_split"), Some(VarianceSource::DataSplit));
        assert_eq!(parse_source("hyperopt"), Some(VarianceSource::HyperOpt));
        assert_eq!(parse_source("Data Split"), None);
        assert_eq!(
            parse_algo("Random Search"),
            Some(HpoAlgorithm::RandomSearch)
        );
        assert_eq!(
            parse_algo("Noisy Grid Search"),
            Some(HpoAlgorithm::NoisyGridSearch)
        );
        assert_eq!(parse_algo("random"), None);
    }
}
