//! Supervision of a `varbench worker` fleet for the study server.
//!
//! [`Supervisor::start`] spawns N long-lived `varbench worker` child
//! processes against a shared cache directory and watches them from a
//! monitor thread. A worker that exits while the fleet is supposed to be
//! running is respawned under the shared [`RetryPolicy`] schedule —
//! bounded restarts with exponential backoff — and a slot whose worker
//! keeps dying faster than [`SupervisorConfig::healthy_after`] is
//! eventually **quarantined**: the supervisor stops respawning it and
//! reports it in [`FleetStatus`], which `GET /v1/ready` surfaces to
//! clients. A slot's rapid-death count resets once its worker survives
//! `healthy_after` of accumulated monitor polls, so a fleet that crashes
//! once a day never exhausts its restart budget.
//!
//! Shutdown is a cooperative drain, not a `SIGKILL` volley:
//! [`Supervisor::shutdown`] writes a stop file that every worker polls
//! (`varbench worker --stop-file`), waits out a bounded drain budget for
//! the children to finish their in-flight row and exit, kills any
//! stragglers, and finally releases any lease still owned by this
//! fleet's workers so a later study never waits out a stall timeout on a
//! lease whose owner is gone.
//!
//! All waiting is paced by summing the `Duration`s the monitor sleeps —
//! the supervisor never reads a wall clock (lint L002).

#![deny(missing_docs)]

use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use varbench_core::retry::RetryPolicy;
use varbench_pipeline::faultpoint::faultpoint;
use varbench_pipeline::lease;

/// Configuration for a supervised worker fleet.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Cache directory the workers share (queue + leases + records).
    pub cache_dir: PathBuf,
    /// Number of worker slots to keep populated.
    pub workers: usize,
    /// Path to the `varbench` binary to spawn workers from; `None` falls
    /// back to [`std::env::current_exe`] at start.
    pub exe: Option<PathBuf>,
    /// Restart schedule per slot: `attempts() - 1` respawns, paced by the
    /// policy's backoff; exhaustion quarantines the slot.
    pub respawn: RetryPolicy,
    /// Accumulated survival after which a slot's respawn count resets to
    /// zero — distinguishes a worker that dies occasionally from one
    /// that dies on arrival.
    pub healthy_after: Duration,
    /// Monitor poll interval (also the unit the drain budget is paced in).
    pub poll: Duration,
    /// Test hook: replaces the *entire* worker command line (program +
    /// args). The stop file and owner id are appended semantics-free, so
    /// `["/bin/sh", "-c", "exit 1"]` makes an instantly-dying fleet.
    pub argv: Option<Vec<String>>,
}

impl SupervisorConfig {
    /// A fleet of `workers` slots over `cache_dir` with default pacing:
    /// 3 respawns per slot at 100 ms initial backoff, a slot is healthy
    /// after surviving 5 s, monitor polls every 100 ms.
    pub fn new(cache_dir: impl Into<PathBuf>, workers: usize) -> SupervisorConfig {
        SupervisorConfig {
            cache_dir: cache_dir.into(),
            workers,
            exe: None,
            respawn: RetryPolicy::new(4)
                .initial_backoff(Duration::from_millis(100))
                .max_backoff(Duration::from_secs(2)),
            healthy_after: Duration::from_secs(5),
            poll: Duration::from_millis(100),
            argv: None,
        }
    }
}

/// One worker slot's state as reported by [`Supervisor::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotStatus {
    /// Lease owner id of the slot's current (or last) worker.
    pub owner: String,
    /// Whether a worker process currently occupies the slot.
    pub running: bool,
    /// Respawns consumed since the slot last proved healthy.
    pub respawns: u32,
    /// The slot died too often and is no longer respawned.
    pub quarantined: bool,
}

/// Snapshot of fleet health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStatus {
    /// Per-slot states, in slot order.
    pub slots: Vec<SlotStatus>,
}

impl FleetStatus {
    /// Number of slots with a live worker process.
    pub fn running(&self) -> usize {
        self.slots.iter().filter(|s| s.running).count()
    }

    /// Number of quarantined slots.
    pub fn quarantined(&self) -> usize {
        self.slots.iter().filter(|s| s.quarantined).count()
    }

    /// Total respawns currently charged across all slots.
    pub fn respawns(&self) -> u32 {
        self.slots.iter().map(|s| s.respawns).sum()
    }
}

/// What [`Supervisor::shutdown`] did on the way out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainSummary {
    /// Workers that exited on their own within the drain budget.
    pub exited: usize,
    /// Stragglers killed after the budget ran out.
    pub killed: usize,
    /// Held leases released on behalf of the fleet's owners.
    pub leases_released: usize,
}

struct Slot {
    owner: String,
    child: Option<Child>,
    respawns: u32,
    healthy: Duration,
    cooldown: Option<Duration>,
    quarantined: bool,
}

struct Shared {
    stop: AtomicBool,
    slots: Mutex<Vec<Slot>>,
}

/// A running supervised fleet. Dropping without [`Supervisor::shutdown`]
/// still stops the monitor and kills the children (no orphan processes),
/// but skips the cooperative drain.
pub struct Supervisor {
    shared: Arc<Shared>,
    monitor: Mutex<Option<JoinHandle<()>>>,
    cfg: SupervisorConfig,
    stop_file: PathBuf,
    owner_prefix: String,
}

impl Supervisor {
    /// Spawns the fleet and the monitor thread.
    pub fn start(mut cfg: SupervisorConfig) -> io::Result<Supervisor> {
        std::fs::create_dir_all(&cfg.cache_dir)?;
        if cfg.exe.is_none() && cfg.argv.is_none() {
            cfg.exe = Some(std::env::current_exe()?);
        }
        let owner_prefix = format!("serve-fleet-{}-", std::process::id());
        let stop_file = cfg
            .cache_dir
            .join(format!("fleet-{}.stop", std::process::id()));
        let _ = std::fs::remove_file(&stop_file);

        let mut slots = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let owner = format!("{owner_prefix}s{i}");
            let child = spawn_worker(&cfg, &stop_file, &owner)?;
            slots.push(Slot {
                owner,
                child: Some(child),
                respawns: 0,
                healthy: Duration::ZERO,
                cooldown: None,
                quarantined: false,
            });
        }
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            slots: Mutex::new(slots),
        });
        let monitor = {
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            let stop_file = stop_file.clone();
            std::thread::spawn(move || monitor_loop(&shared, &cfg, &stop_file))
        };
        Ok(Supervisor {
            shared,
            monitor: Mutex::new(Some(monitor)),
            cfg,
            stop_file,
            owner_prefix,
        })
    }

    /// Current fleet health.
    pub fn status(&self) -> FleetStatus {
        let slots = self.shared.slots.lock().expect("fleet slots poisoned");
        FleetStatus {
            slots: slots
                .iter()
                .map(|s| SlotStatus {
                    owner: s.owner.clone(),
                    running: s.child.is_some(),
                    respawns: s.respawns,
                    quarantined: s.quarantined,
                })
                .collect(),
        }
    }

    /// The lease-owner prefix every worker in this fleet claims under.
    pub fn owner_prefix(&self) -> &str {
        &self.owner_prefix
    }

    /// Drains the fleet: stop respawning, ask the workers to exit via
    /// the stop file, wait up to `drain` for them to finish their
    /// in-flight row, kill stragglers, and release any lease still owned
    /// by this fleet.
    pub fn shutdown(&self, drain: Duration) -> DrainSummary {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.monitor.lock().expect("monitor poisoned").take() {
            let _ = handle.join();
        }
        let _ = std::fs::write(&self.stop_file, b"drain\n");

        let mut summary = DrainSummary::default();
        let mut slots = self.shared.slots.lock().expect("fleet slots poisoned");
        let mut waited = Duration::ZERO;
        while waited < drain {
            let mut alive = 0;
            for slot in slots.iter_mut() {
                if let Some(child) = slot.child.as_mut() {
                    match child.try_wait() {
                        Ok(Some(_)) => {
                            slot.child = None;
                            summary.exited += 1;
                        }
                        Ok(None) => alive += 1,
                        Err(_) => alive += 1,
                    }
                }
            }
            if alive == 0 {
                break;
            }
            std::thread::sleep(self.cfg.poll);
            waited += self.cfg.poll;
        }
        for slot in slots.iter_mut() {
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
                summary.killed += 1;
            }
        }
        drop(slots);

        // Leases a killed straggler (or an earlier crash the monitor had
        // already given up on) still holds: release them owner-checked so
        // the next study never waits out a stall timeout for a dead owner.
        for l in lease::scan_leases(&self.cfg.cache_dir) {
            if !l.open
                && l.owner.starts_with(&self.owner_prefix)
                && lease::release(&self.cfg.cache_dir, &l.job, &l.owner)
            {
                summary.leases_released += 1;
            }
        }
        let _ = std::fs::remove_file(&self.stop_file);
        summary
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.monitor.lock().expect("monitor poisoned").take() {
            let _ = handle.join();
        }
        let mut slots = self.shared.slots.lock().expect("fleet slots poisoned");
        for slot in slots.iter_mut() {
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

fn spawn_worker(cfg: &SupervisorConfig, stop_file: &Path, owner: &str) -> io::Result<Child> {
    let mut cmd = match &cfg.argv {
        Some(argv) => {
            let mut cmd = Command::new(argv.first().map(String::as_str).unwrap_or("true"));
            cmd.args(&argv[1..]);
            cmd
        }
        None => {
            let exe = cfg.exe.as_deref().expect("exe resolved in start");
            let mut cmd = Command::new(exe);
            cmd.arg("worker")
                .arg("--cache-dir")
                .arg(&cfg.cache_dir)
                .arg("--id")
                .arg(owner)
                // Long-lived: the stop file ends the worker, not idleness.
                .arg("--idle-rounds")
                .arg("1000000")
                .arg("--poll-ms")
                .arg("50")
                .arg("--stop-file")
                .arg(stop_file);
            cmd
        }
    };
    cmd.stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd.spawn()
}

fn monitor_loop(shared: &Shared, cfg: &SupervisorConfig, stop_file: &Path) {
    while !shared.stop.load(Ordering::SeqCst) {
        {
            let mut slots = shared.slots.lock().expect("fleet slots poisoned");
            for (i, slot) in slots.iter_mut().enumerate() {
                if slot.quarantined {
                    continue;
                }
                match slot.child.as_mut().map(Child::try_wait) {
                    Some(Ok(None)) => {
                        // Alive: accumulate survival; a slot that lasts
                        // `healthy_after` earns its respawn budget back.
                        slot.healthy = slot.healthy.saturating_add(cfg.poll);
                        if slot.healthy >= cfg.healthy_after {
                            slot.respawns = 0;
                        }
                    }
                    Some(Ok(Some(_))) | Some(Err(_)) => {
                        if let Some(mut child) = slot.child.take() {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                        slot.healthy = Duration::ZERO;
                        match cfg.respawn.backoff_after(slot.respawns) {
                            Some(pause) => slot.cooldown = Some(pause),
                            None => {
                                slot.quarantined = true;
                                eprintln!(
                                    "supervisor: slot {i} quarantined after {} rapid death(s)",
                                    slot.respawns + 1
                                );
                            }
                        }
                    }
                    None => {
                        // Dead and cooling down towards a respawn.
                        let left = slot.cooldown.unwrap_or(Duration::ZERO);
                        if left > cfg.poll {
                            slot.cooldown = Some(left - cfg.poll);
                        } else {
                            slot.cooldown = None;
                            slot.respawns += 1;
                            faultpoint("supervisor:before-respawn");
                            let owner = format!("{}r{}", slot.owner, slot.respawns);
                            match spawn_worker(cfg, stop_file, &owner) {
                                Ok(child) => slot.child = Some(child),
                                Err(e) => {
                                    eprintln!("supervisor: respawn of slot {i} failed: {e}");
                                    slot.quarantined = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        std::thread::sleep(cfg.poll);
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("varbench-sup-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sh(script: &str) -> Option<Vec<String>> {
        Some(vec!["/bin/sh".into(), "-c".into(), script.into()])
    }

    fn wait_until(mut done: impl FnMut() -> bool) {
        for _ in 0..500 {
            if done() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("condition not reached within 5s");
    }

    #[test]
    fn instantly_dying_workers_exhaust_their_respawns_and_quarantine() {
        let dir = fresh_dir("quarantine");
        let mut cfg = SupervisorConfig::new(&dir, 2);
        cfg.argv = sh("exit 1");
        cfg.respawn = RetryPolicy::new(3)
            .initial_backoff(Duration::from_millis(1))
            .max_backoff(Duration::from_millis(1));
        cfg.poll = Duration::from_millis(5);
        cfg.healthy_after = Duration::from_secs(3600);
        let sup = Supervisor::start(cfg).unwrap();
        wait_until(|| sup.status().quarantined() == 2);
        let status = sup.status();
        assert_eq!(status.running(), 0);
        assert_eq!(status.respawns(), 4, "2 respawns per slot before giving up");
        let summary = sup.shutdown(Duration::from_millis(50));
        assert_eq!(summary.killed, 0, "nothing left to kill");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn long_lived_workers_stay_running_and_drain_kills_stragglers() {
        let dir = fresh_dir("drain");
        let mut cfg = SupervisorConfig::new(&dir, 2);
        // Ignores the stop file: drain must fall back to kill.
        cfg.argv = sh("sleep 60");
        cfg.poll = Duration::from_millis(5);
        let sup = Supervisor::start(cfg).unwrap();
        wait_until(|| sup.status().running() == 2);
        assert_eq!(sup.status().quarantined(), 0);
        let summary = sup.shutdown(Duration::from_millis(30));
        assert_eq!(summary.killed, 2, "sleepers ignore the stop file");
        assert_eq!(summary.leases_released, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_crashed_worker_is_respawned() {
        let dir = fresh_dir("respawn");
        let marker = dir.join("spawned");
        let mut cfg = SupervisorConfig::new(&dir, 1);
        // First run dies instantly; the respawn (marker exists) sleeps.
        cfg.argv = sh(&format!(
            "if [ -e {m} ]; then sleep 60; else : > {m}; exit 7; fi",
            m = marker.display()
        ));
        cfg.respawn = RetryPolicy::new(4)
            .initial_backoff(Duration::from_millis(1))
            .max_backoff(Duration::from_millis(1));
        cfg.poll = Duration::from_millis(5);
        let sup = Supervisor::start(cfg).unwrap();
        wait_until(|| {
            let s = sup.status();
            s.running() == 1 && s.respawns() >= 1
        });
        assert_eq!(sup.status().quarantined(), 0);
        sup.shutdown(Duration::from_millis(20));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_releases_leases_left_by_fleet_owners() {
        let dir = fresh_dir("sweep");
        let mut cfg = SupervisorConfig::new(&dir, 1);
        cfg.argv = sh("sleep 60");
        cfg.poll = Duration::from_millis(5);
        let sup = Supervisor::start(cfg).unwrap();
        // Simulate a fleet worker dying between claim and release.
        let owner = format!("{}s0", sup.owner_prefix());
        lease::enqueue(&dir, "job-held", "").unwrap();
        lease::claim(&dir, "job-held", &owner).unwrap();
        // A foreign owner's lease must survive the sweep untouched.
        lease::enqueue(&dir, "job-foreign", "").unwrap();
        lease::claim(&dir, "job-foreign", "someone-else").unwrap();
        let summary = sup.shutdown(Duration::from_millis(20));
        assert_eq!(summary.leases_released, 1);
        let leases = lease::scan_leases(&dir);
        assert_eq!(leases.len(), 1, "foreign lease intact: {leases:?}");
        assert_eq!(leases[0].owner, "someone-else");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
