//! Experiment harness regenerating every table and figure of
//! *Accounting for Variance in Machine Learning Benchmarks*.
//!
//! Each paper artifact has a module under [`figures`] exposing a `Config`
//! (with `test()`/`quick()`/`full()` presets selected uniformly via
//! `for_effort`) and a `report_with` entry point returning a structured
//! [`varbench_core::report::Report`]. The [`registry`] wires every
//! artifact to the single `varbench` CLI binary
//! (`cargo run -p varbench-bench --release --bin varbench -- run fig1 --full`),
//! which schedules independent artifacts in parallel and shares one
//! measurement cache (`varbench_pipeline::MeasureCache`) across them.
//!
//! | Paper artifact | Module | What it shows |
//! |---|---|---|
//! | Fig. 1 | [`figures::fig1`] | variance of each ξ source vs bootstrap |
//! | Fig. 2 | [`figures::fig2`] | binomial model of test-set noise |
//! | Fig. 3 | [`figures::fig3`] | SOTA increments vs benchmark σ |
//! | Fig. 5 / H.4 | [`figures::fig5`] | estimator standard errors vs k |
//! | Fig. 6 | [`figures::fig6`] | detection rates of decision criteria |
//! | Fig. C.1 | [`figures::figc1`] | Noether sample sizes vs γ |
//! | Fig. F.2 | [`figures::figf2`] | HPO optimization curves |
//! | Fig. G.3 | [`figures::figg3`] | Shapiro–Wilk normality panel |
//! | Fig. H.5 | [`figures::figh5`] | bias/variance/ρ/MSE decomposition |
//! | Fig. I.6 | [`figures::figi6`] | robustness vs sample size and γ |
//! | Tables 1–10 | [`figures::tables`] | configs, spaces, Table 8 baselines |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod calibrate;
pub mod figures;
pub mod leaderboard;
pub mod protocol;
pub mod registry;
pub mod serve;
pub mod suites;
pub mod supervisor;
pub mod timing;
pub mod worker;
pub mod workloads;
