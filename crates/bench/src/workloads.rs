//! The workload registry behind `varbench workloads` and the
//! `workload-*` artifacts: every built-in [`Workload`] the CLI can
//! measure, constructed at a given scale.
//!
//! The five MLP-backed case studies and the two non-MLP workloads
//! ([`varbench_pipeline::LinearWorkload`],
//! [`varbench_pipeline::SyntheticWorkload`]) all go through the same
//! [`Study`] builder, so `varbench run workload-linear --test` produces a
//! variance profile with the exact machinery the paper figures use.

use crate::args::Effort;
use varbench_core::ctx::RunContext;
use varbench_core::report::Report;
use varbench_core::study::Study;
use varbench_pipeline::{CaseStudy, LinearWorkload, Scale, SyntheticWorkload, Workload};

/// Every built-in workload at `scale`, case studies first.
pub fn all(scale: Scale) -> Vec<Box<dyn Workload>> {
    let mut out: Vec<Box<dyn Workload>> = CaseStudy::all(scale)
        .into_iter()
        .map(|cs| Box::new(cs) as Box<dyn Workload>)
        .collect();
    out.push(Box::new(LinearWorkload::new(scale)));
    out.push(Box::new(SyntheticWorkload::new(scale)));
    out
}

/// Looks a workload up by registered name at `scale` (the serve
/// protocol's workload resolution).
pub fn find(name: &str, scale: Scale) -> Option<Box<dyn Workload>> {
    all(scale).into_iter().find(|w| w.name() == name)
}

/// The registry artifact that measures `workload_name`'s variance
/// profile (`varbench run <artifact>`), if one exists. The five case
/// studies are measured by the paper-figure artifacts instead.
pub fn artifact_for(workload_name: &str) -> Option<&'static str> {
    match workload_name {
        "linear-logreg" => Some("workload-linear"),
        "synthetic-ridge" => Some("workload-synth"),
        _ => None,
    }
}

/// Study sizing per effort: `(seeds per source, HPO budget)`.
fn study_preset(effort: Effort) -> (usize, usize) {
    match effort {
        Effort::Test => (4, 3),
        Effort::Quick => (20, 15),
        Effort::Full => (100, 50),
    }
}

/// Runs the shared-seed study of one workload (the body of the
/// `workload-*` artifacts).
fn study_report(workload: &dyn Workload, name: &str, effort: Effort, ctx: &RunContext) -> Report {
    let (seeds, budget) = study_preset(effort);
    // One shared study seed so repeated runs can share cached matrices.
    Study::new(workload)
        .named(name)
        .seeds(seeds)
        .budget(budget)
        .base_seed(crate::figures::SOURCE_STUDY_SEED)
        .run(ctx)
}

/// The `workload-linear` artifact: variance profile of the
/// logistic-regression workload.
pub fn linear_report(effort: Effort, ctx: &RunContext) -> Report {
    let w = LinearWorkload::new(effort.scale());
    study_report(&w, "workload-linear", effort, ctx)
}

/// The `workload-synth` artifact: variance profile of the closed-form
/// ridge workload.
pub fn synth_report(effort: Effort, ctx: &RunContext) -> Report {
    let w = SyntheticWorkload::new(effort.scale());
    study_report(&w, "workload-synth", effort, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_seven_unique_workloads() {
        let ws = all(Scale::Test);
        assert_eq!(ws.len(), 7);
        let mut names: Vec<String> = ws.iter().map(|w| w.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 7, "workload names must be unique");
        assert!(names.iter().any(|n| n == "linear-logreg"));
        assert!(names.iter().any(|n| n == "synthetic-ridge"));
        for w in &ws {
            assert_eq!(w.default_params().len(), w.search_space().len());
            assert!(!w.active_sources().is_empty());
        }
    }

    #[test]
    fn reports_render_variance_profiles() {
        let ctx = RunContext::serial_cached();
        let linear = linear_report(Effort::Test, &ctx);
        assert_eq!(linear.name(), "workload-linear");
        assert!(linear.render_text().contains("Weights init"));
        let synth = synth_report(Effort::Test, &ctx);
        assert_eq!(synth.name(), "workload-synth");
        assert!(synth.render_text().contains("HyperOpt"));
    }
}
