//! Minimal command-line flag handling shared by the figure binaries.

use varbench_pipeline::Scale;

/// Effort preset selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// `--test`: smallest sizes (CI smoke run).
    Test,
    /// Default: minutes-scale reproduction.
    Quick,
    /// `--full`: paper-faithful sizes (hours).
    Full,
}

impl Effort {
    /// Parses the effort from raw process arguments.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Effort {
        let mut effort = Effort::Quick;
        for a in args {
            match a.as_str() {
                "--full" => effort = Effort::Full,
                "--test" => effort = Effort::Test,
                "--quick" => effort = Effort::Quick,
                _ => {}
            }
        }
        effort
    }

    /// Parses from the current process environment.
    pub fn from_env() -> Effort {
        Effort::from_args(std::env::args().skip(1))
    }

    /// The case-study scale this effort implies.
    pub fn scale(&self) -> Scale {
        match self {
            Effort::Test => Scale::Test,
            Effort::Quick => Scale::Quick,
            Effort::Full => Scale::Full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(Effort::from_args(args(&[])), Effort::Quick);
        assert_eq!(Effort::from_args(args(&["--full"])), Effort::Full);
        assert_eq!(Effort::from_args(args(&["--test"])), Effort::Test);
        assert_eq!(
            Effort::from_args(args(&["ignored", "--quick"])),
            Effort::Quick
        );
    }

    #[test]
    fn scales_map() {
        assert_eq!(Effort::Test.scale(), Scale::Test);
        assert_eq!(Effort::Quick.scale(), Scale::Quick);
        assert_eq!(Effort::Full.scale(), Scale::Full);
    }
}
