//! Command-line effort handling shared by the `varbench` CLI and the
//! artifact registry.

use varbench_pipeline::Scale;

/// Effort preset selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// `--test`: smallest sizes (CI smoke run).
    Test,
    /// Default: minutes-scale reproduction.
    Quick,
    /// `--full`: paper-faithful sizes (hours).
    Full,
}

impl Effort {
    /// Parses the effort from raw process arguments.
    ///
    /// Unknown arguments are an **error**, not a no-op: a `--ful` typo
    /// must fail fast instead of silently running hours of Quick-effort
    /// measurements. This is the library-level parser for effort-only
    /// argument lists; the `varbench` CLI composes the same
    /// [`Effort::from_flag`] primitive with its own flag set and applies
    /// the same reject-unknown-flags policy (exercised in
    /// `scripts/ci.sh`).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Effort, String> {
        let mut effort = Effort::Quick;
        for a in args {
            match Effort::from_flag(&a) {
                Some(e) => effort = e,
                None => {
                    return Err(format!(
                        "unknown argument '{a}' (expected --test, --quick, or --full)"
                    ))
                }
            }
        }
        Ok(effort)
    }

    /// Maps a single effort flag (`--test` / `--quick` / `--full`) to its
    /// preset; `None` for anything else.
    pub fn from_flag(flag: &str) -> Option<Effort> {
        match flag {
            "--full" => Some(Effort::Full),
            "--test" => Some(Effort::Test),
            "--quick" => Some(Effort::Quick),
            _ => None,
        }
    }

    /// Maps a stable label (`test` / `quick` / `full` — the
    /// [`Effort::label`] vocabulary, used by the serve protocol) to its
    /// preset; `None` for anything else.
    pub fn from_label(label: &str) -> Option<Effort> {
        match label {
            "test" => Some(Effort::Test),
            "quick" => Some(Effort::Quick),
            "full" => Some(Effort::Full),
            _ => None,
        }
    }

    /// The case-study scale this effort implies.
    pub fn scale(&self) -> Scale {
        match self {
            Effort::Test => Scale::Test,
            Effort::Quick => Scale::Quick,
            Effort::Full => Scale::Full,
        }
    }

    /// Stable lowercase label (CLI/JSON output).
    pub fn label(&self) -> &'static str {
        match self {
            Effort::Test => "test",
            Effort::Quick => "quick",
            Effort::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(Effort::from_args(args(&[])), Ok(Effort::Quick));
        assert_eq!(Effort::from_args(args(&["--full"])), Ok(Effort::Full));
        assert_eq!(Effort::from_args(args(&["--test"])), Ok(Effort::Test));
        assert_eq!(
            Effort::from_args(args(&["--full", "--quick"])),
            Ok(Effort::Quick),
            "last flag wins"
        );
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let err = Effort::from_args(args(&["--ful"])).unwrap_err();
        assert!(err.contains("--ful"), "error names the bad flag: {err}");
        assert!(err.contains("--full"), "error suggests valid flags: {err}");
        assert!(Effort::from_args(args(&["ignored"])).is_err());
        assert!(Effort::from_args(args(&["--test", "-x"])).is_err());
    }

    #[test]
    fn scales_and_labels_map() {
        assert_eq!(Effort::Test.scale(), Scale::Test);
        assert_eq!(Effort::Quick.scale(), Scale::Quick);
        assert_eq!(Effort::Full.scale(), Scale::Full);
        assert_eq!(Effort::Full.label(), "full");
        assert_eq!(Effort::from_flag("--test"), Some(Effort::Test));
        assert_eq!(Effort::from_flag("--nope"), None);
    }

    #[test]
    fn labels_round_trip() {
        for e in [Effort::Test, Effort::Quick, Effort::Full] {
            assert_eq!(Effort::from_label(e.label()), Some(e));
        }
        assert_eq!(Effort::from_label("--test"), None);
        assert_eq!(Effort::from_label("Full"), None);
    }
}
