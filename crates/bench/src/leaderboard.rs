//! Published state-of-the-art timelines for Fig. 3.
//!
//! The paper plots accuracies "of publications, function of year, as
//! reported on paperswithcode.com" for CIFAR10 and SST-2. This module
//! embeds a transcription of those public leaderboard trajectories
//! (approximate values of well-known published results; the *increments*
//! between successive entries are what the figure analyses).

/// One published result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Publication year.
    pub year: u32,
    /// Reported accuracy in percent.
    pub accuracy: f64,
    /// Method name.
    pub method: &'static str,
}

/// CIFAR10 test-accuracy milestones (paperswithcode-style transcription).
pub const CIFAR10: [Entry; 12] = [
    Entry {
        year: 2013,
        accuracy: 90.65,
        method: "Maxout",
    },
    Entry {
        year: 2014,
        accuracy: 91.20,
        method: "Network in Network",
    },
    Entry {
        year: 2014,
        accuracy: 91.78,
        method: "Deeply-Supervised Nets",
    },
    Entry {
        year: 2015,
        accuracy: 92.75,
        method: "All-CNN",
    },
    Entry {
        year: 2015,
        accuracy: 93.45,
        method: "ELU network",
    },
    Entry {
        year: 2015,
        accuracy: 93.57,
        method: "ResNet-110",
    },
    Entry {
        year: 2016,
        accuracy: 95.38,
        method: "Wide ResNet",
    },
    Entry {
        year: 2016,
        accuracy: 96.54,
        method: "DenseNet-BC",
    },
    Entry {
        year: 2017,
        accuracy: 97.14,
        method: "Shake-Shake",
    },
    Entry {
        year: 2018,
        accuracy: 98.52,
        method: "AutoAugment",
    },
    Entry {
        year: 2019,
        accuracy: 99.00,
        method: "BiT-L",
    },
    Entry {
        year: 2020,
        accuracy: 99.37,
        method: "EffNet-L2 (SAM)",
    },
];

/// GLUE SST-2 accuracy milestones.
pub const SST2: [Entry; 10] = [
    Entry {
        year: 2013,
        accuracy: 85.40,
        method: "RNTN",
    },
    Entry {
        year: 2014,
        accuracy: 88.10,
        method: "CNN (Kim)",
    },
    Entry {
        year: 2015,
        accuracy: 88.00,
        method: "Tree-LSTM",
    },
    Entry {
        year: 2017,
        accuracy: 91.80,
        method: "bmLSTM",
    },
    Entry {
        year: 2018,
        accuracy: 93.50,
        method: "BERT-base",
    },
    Entry {
        year: 2018,
        accuracy: 94.90,
        method: "BERT-large",
    },
    Entry {
        year: 2019,
        accuracy: 96.40,
        method: "RoBERTa",
    },
    Entry {
        year: 2019,
        accuracy: 96.80,
        method: "XLNet",
    },
    Entry {
        year: 2019,
        accuracy: 97.50,
        method: "T5-11B",
    },
    Entry {
        year: 2020,
        accuracy: 97.50,
        method: "ALBERT ensemble",
    },
];

/// Successive increments over the running best (percentage points).
/// Entries that do not improve the running best yield no increment.
pub fn increments(entries: &[Entry]) -> Vec<(Entry, f64)> {
    let mut best = f64::NEG_INFINITY;
    let mut out = Vec::new();
    for e in entries {
        if e.accuracy > best {
            if best.is_finite() {
                out.push((*e, e.accuracy - best));
            }
            best = e.accuracy;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timelines_are_chronological_and_bounded() {
        for entries in [&CIFAR10[..], &SST2[..]] {
            for w in entries.windows(2) {
                assert!(w[0].year <= w[1].year, "chronological order");
            }
            for e in entries {
                assert!(e.accuracy > 80.0 && e.accuracy < 100.0);
            }
        }
    }

    #[test]
    fn increments_are_positive_and_small() {
        let inc = increments(&CIFAR10);
        assert!(!inc.is_empty());
        for (e, d) in &inc {
            assert!(*d > 0.0, "{}: increment {d}", e.method);
            assert!(*d < 3.0, "{}: suspicious jump {d}", e.method);
        }
    }

    #[test]
    fn non_improving_entries_skipped() {
        let inc = increments(&SST2);
        // Tree-LSTM (88.0 after 88.1) and the final tie must not appear.
        assert!(inc.iter().all(|(e, _)| e.method != "Tree-LSTM"));
        assert!(inc.iter().all(|(e, _)| e.method != "ALBERT ensemble"));
    }

    #[test]
    fn mean_increment_matches_paper_scale() {
        // The paper's δ = 1.9952σ calibration rests on increments being a
        // fraction of a percent to ~1.5%: check the average is in range.
        let inc = increments(&CIFAR10);
        let mean: f64 = inc.iter().map(|(_, d)| d).sum::<f64>() / inc.len() as f64;
        assert!(mean > 0.2 && mean < 1.5, "mean increment {mean}");
    }
}
