//! Extension experiment: interaction of variance sources (the paper's
//! "variances do not add up" remark, quantified).
use varbench_bench::args::Effort;
use varbench_bench::figures::interactions;

fn main() {
    let config = interactions::Config::for_effort(Effort::from_env());
    print!("{}", interactions::run(&config));
}
