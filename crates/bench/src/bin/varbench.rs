//! The `varbench` CLI — the single entry point to every paper artifact
//! and registered workload.
//!
//! ```text
//! varbench list
//! varbench workloads [--test|--quick|--full]
//! varbench run <name ...|all> [--test|--quick|--full] [--filter SUBSTR]
//!              [--json|--csv] [--out DIR] [--serial] [--no-cache]
//!              [--threads N]
//! varbench study <workload> [--seeds N] [--budget N] [--gamma G] ...
//! varbench serve [--addr HOST:PORT] [--ready-file FILE]
//! varbench query PATH [BODY] [--addr HOST:PORT]
//! varbench cache stats|gc|clear
//! varbench lint [--json|--list] [PATHS ...]
//! ```
//!
//! Artifacts share one measurement cache (persisted across runs when
//! `VARBENCH_CACHE_DIR` is set) and are scheduled in parallel on the
//! work-stealing executor; per-artifact output is byte-identical to
//! running each artifact alone, serially, without a cache — and
//! byte-identical again when served over HTTP by `varbench serve`.

#![forbid(unsafe_code)]

use varbench_bench::args::Effort;
use varbench_bench::protocol::{json_envelope, parse_algo, parse_source, StudyRequest};
use varbench_bench::registry::{self, RunContext, Spec};
use varbench_bench::serve::{http_request, http_request_retry, ServeState, Server};
use varbench_bench::timing::{parse_snapshot, BenchResult, Harness, Output};
use varbench_bench::worker::{
    dispatch, run_worker, study_jobs, DispatchConfig, DispatchJob, Job, WorkerConfig,
};
use varbench_bench::{suites, workloads};
use varbench_core::ctx::BootstrapMode;
use varbench_core::exec::Runner;
use varbench_core::report::Report;
use varbench_core::retry::RetryPolicy;
use varbench_pipeline::cache::{gc_dir, CACHE_DIR_ENV, CACHE_FORMAT_VERSION};
use varbench_pipeline::MeasureCache;

const USAGE: &str = "varbench — variance-aware benchmark reproduction harness

USAGE:
    varbench list
    varbench workloads [--test|--quick|--full]
    varbench run <name ...|all> [OPTIONS]
    varbench study <workload> [OPTIONS]
    varbench serve [OPTIONS]
    varbench query PATH [BODY] [--addr HOST:PORT] [--retries N] [--timeout-ms T]
    varbench worker [OPTIONS]
    varbench bench [SUITE ...] [--quick] [--json]
                   [--baseline FILE] [--max-regress PCT]
    varbench cache stats|gc|clear
    varbench lint [--json|--list] [PATHS ...]

OPTIONS (study):
    --test | --quick | --full   effort preset / workload scale (default: --quick)
    --seeds N                   measurements per source (default 10, min 2)
    --budget N                  HPO trials; > 0 adds the xi_H row (default 0)
    --gamma G                   add the Noether comparison-planning block for
                                detecting P(A > B) > G (G in (0,1), != 0.5)
    --sources a,b,...           restrict to these source labels (see workloads)
    --algo NAME                 HPO algorithm display name (e.g. 'Grid Search')
    --base-seed N               base seed every measurement derives from
    --name NAME                 report name override
    --json                      emit the varbench-report/1 envelope
    --addr HOST:PORT            run the study on a `varbench serve` instance
                                instead of in-process (response is identical)
    --serial / --threads N      local execution knobs (as for run)
    --workers N                 shard the study across N `varbench worker`
                                subprocesses over the shared cache dir (needs
                                VARBENCH_CACHE_DIR; output is byte-identical
                                to an unsharded run)
    --dispatch                  enqueue + wait for an external worker fleet
                                (no subprocesses spawned); degrades to
                                in-process computation if none shows up.
                                With --addr, the request carries
                                \"dispatch\": true and the *server's*
                                supervised fleet computes the rows
    --wait-ms T                 total fleet wait budget (default 20000)
    --row-timeout-ms T          reclaim a claimed row after T ms without
                                progress (default 2000)

OPTIONS (worker):
    --cache-dir DIR             shared cache directory (default: the
                                VARBENCH_CACHE_DIR environment variable)
    --id NAME                   lease owner label (default worker-<pid>)
    --drain                     exit once the queue is empty (fleet mode)
    --stop-file FILE            exit before the next claim once FILE exists
                                (how a supervisor drains its fleet)
    --poll-ms T                 pause between idle queue scans (default 100)
    --idle-rounds N             empty-handed scans before exiting (default 20)
    --serial / --threads N      executor knobs (as for run)

OPTIONS (serve):
    --addr HOST:PORT            listen address (default 127.0.0.1:7878; port 0
                                picks a free port)
    --ready-file FILE           write the bound address to FILE once listening
                                (lets scripts wait without polling)
    --handlers N                concurrent request handlers (default 8)
    --queue N                   accepted connections waiting for a handler;
                                beyond this, requests are shed with 503
                                (default 32; 0 = hand off or shed immediately)
    --workers N                 supervise N `varbench worker` children over
                                the shared cache dir; studies posted with
                                \"dispatch\": true compute in the fleet
                                (needs VARBENCH_CACHE_DIR)
    --max-respawns M            respawns per worker slot before quarantine
                                (default 4; backoff doubles from 100 ms)
    --drain-ms T                graceful-drain budget on shutdown: stop
                                accepting, finish in-flight requests, let
                                workers exit, release fleet leases
                                (default 2000)
    --wait-ms T                 dispatched-study fleet wait budget
                                (default 20000)
    --row-timeout-ms T          reclaim a dispatched row after T ms without
                                progress (default 2000)
    --serial / --threads N      executor knobs shared by all requests
    --par-bootstrap             as for run
    endpoints: GET /health /v1/ready /v1/workloads /v1/artifacts
    /v1/cache/stats; POST /v1/run /v1/study /v1/shutdown
    (JSON; see README 'Serving')

OPTIONS (query):
    PATH                        endpoint path (e.g. /v1/workloads)
    BODY                        JSON request body (implies POST)
    --addr HOST:PORT            server address (default 127.0.0.1:7878)
    --post                      force POST without a body (e.g. /v1/shutdown)
    --retries N                 retry transport failures (connection refused,
                                reset, timeouts) and 503 responses (honoring
                                Retry-After, clamped to the backoff cap) up
                                to N times with doubling backoff; other HTTP
                                statuses are final
    --timeout-ms T              total backoff budget across retries
                                (default 60000)

OPTIONS (lint):
    PATHS ...                   files or directories to check, relative to the
                                workspace root (default: the whole repo)
    --json                      emit the varbench-lint/1 JSON document
    --list                      print the lint catalogue and exit
    exits 1 when any diagnostic fires; suppress a finding with an inline
    `// lint:allow(L00N): <reason>` marker on or above the offending line

OPTIONS (bench):
    SUITE ...                   suites to run (default: all; see `varbench bench --list`)
    --quick                     fast smoke knobs (5 reps, 2 ms targets)
    --json                      emit the BENCH_*.json snapshot on stdout
                                (bench lines go to stderr)
    --baseline FILE             compare medians against a committed snapshot
    --max-regress PCT           fail if any shared bench is slower by more
                                than PCT percent (default 25; needs --baseline)

OPTIONS (run):
    --test | --quick | --full   effort preset (default: --quick)
    --filter SUBSTR             keep only artifacts whose name contains SUBSTR
    --json                      emit one JSON document instead of text
    --csv                       emit the tables as CSV instead of text
    --out DIR                   write per-artifact files to DIR instead of stdout
    --serial                    run artifacts one at a time on one thread
    --no-cache                  give every artifact a private measurement cache
    --threads N                 worker threads (default: VARBENCH_THREADS or all cores)
    --workers N                 shard the artifacts across N `varbench worker`
                                subprocesses over the shared cache dir (needs
                                VARBENCH_CACHE_DIR; incompatible with
                                --no-cache and --par-bootstrap)
    --par-bootstrap             split-stream parallel bootstrap: resample loops
                                fan out across cores (bit-identical for any
                                thread count, but a different randomization
                                than the committed serial-bootstrap artifacts;
                                cached measurements use a quarantined key space)

ENVIRONMENT:
    VARBENCH_THREADS            default worker thread count (0 = all cores)
    VARBENCH_CACHE_DIR          persist the measurement cache to this directory
    VARBENCH_PAR_BOOTSTRAP      1/true = default `run` to --par-bootstrap

Run `varbench list` for artifact names and `varbench workloads` for the
registered workloads (measure one with `varbench run workload-linear`).";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Csv,
}

impl Format {
    fn extension(self) -> &'static str {
        match self {
            Format::Text => "txt",
            Format::Json => "json",
            Format::Csv => "csv",
        }
    }

    /// Renders one report for a per-artifact output file. JSON files get
    /// the same `varbench-report/1` envelope as the stdout document (with
    /// a one-element `artifacts` array), so consumers parse both shapes
    /// identically.
    fn render(self, report: &Report, effort: Effort) -> String {
        match self {
            Format::Text => report.render_text(),
            Format::Json => json_envelope(effort, &[report.to_json()]),
            Format::Csv => report.to_csv(),
        }
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `varbench --help` for usage");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
        Some("--help") | Some("-h") | Some("help") => println!("{USAGE}"),
        Some("list") => {
            if args.len() > 1 {
                fail(&format!("unexpected argument '{}' after list", args[1]));
            }
            list();
        }
        Some("workloads") => list_workloads(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("study") => study_command(&args[1..]),
        Some("serve") => serve_command(&args[1..]),
        Some("query") => query_command(&args[1..]),
        Some("worker") => worker_command(&args[1..]),
        Some("bench") => bench_command(&args[1..]),
        Some("cache") => cache_command(&args[1..]),
        Some("lint") => lint_command(&args[1..]),
        Some(other) => fail(&format!(
            "unknown command '{other}' (expected list, workloads, run, study, serve, \
             query, worker, bench, cache, or lint)"
        )),
    }
}

fn list() {
    let mut t = varbench_core::report::Table::new(vec![
        "name".into(),
        "title".into(),
        "description".into(),
    ]);
    for spec in registry::all() {
        t.add_row(vec![
            spec.name.to_string(),
            spec.title.to_string(),
            spec.description.to_string(),
        ]);
    }
    print!("{t}");
}

fn list_workloads(args: &[String]) {
    let mut effort = Effort::Quick;
    for a in args {
        match Effort::from_flag(a) {
            Some(e) => effort = e,
            None => fail(&format!(
                "unknown argument '{a}' after workloads (expected --test, --quick, or --full)"
            )),
        }
    }
    let mut t = varbench_core::report::Table::new(vec![
        "name".into(),
        "metric".into(),
        "search dims".into(),
        "active sources".into(),
        "cache id".into(),
        "run via".into(),
    ]);
    for w in workloads::all(effort.scale()) {
        let sources: Vec<&str> = w.active_sources().iter().map(|s| s.label()).collect();
        let run_via = workloads::artifact_for(w.name())
            .map(|a| format!("run {a}"))
            .unwrap_or_else(|| "paper figures (fig1 ...)".into());
        t.add_row(vec![
            w.name().to_string(),
            w.metric_name().to_string(),
            w.search_space().len().to_string(),
            sources.join("+"),
            w.cache_id(),
            run_via,
        ]);
    }
    print!("{t}");
}

/// The cache-owned `v<N>` record subdirectories under `dir` — the only
/// paths `cache clear` is allowed to touch (the user may point
/// `VARBENCH_CACHE_DIR` at a directory holding unrelated files).
fn cache_version_dirs(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let is_version = name
                .strip_prefix('v')
                .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()));
            if is_version && entry.path().is_dir() {
                out.push(entry.path());
            }
        }
    }
    out.sort();
    out
}

/// `varbench lint [--json|--list] [PATHS ...]` — run the repo-invariant
/// checker (see `varbench_lint` for the catalogue). Exits 0 when clean,
/// 1 when any diagnostic fires, 2 on usage errors.
fn lint_command(args: &[String]) {
    let mut json = false;
    let mut list = false;
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            flag if flag.starts_with('-') => fail(&format!(
                "unknown lint option '{flag}' (expected --json or --list)"
            )),
            path => paths.push(std::path::PathBuf::from(path)),
        }
    }
    if list {
        if json || !paths.is_empty() {
            fail("--list takes no other arguments");
        }
        for info in varbench_lint::CATALOGUE {
            println!("{} {:<20} {}", info.id, info.name, info.summary);
        }
        return;
    }
    let cwd = std::env::current_dir().unwrap_or_else(|e| fail(&format!("cannot read cwd: {e}")));
    let Some(root) = varbench_lint::find_workspace_root(&cwd) else {
        fail("not inside a varbench workspace (no root Cargo.toml with [workspace] found)");
    };
    // Relative PATHS are workspace-root-relative so diagnostics always
    // print repo-relative locations regardless of the caller's cwd.
    for p in &mut paths {
        if p.is_relative() {
            *p = root.join(&p);
        }
    }
    let diags = match varbench_lint::check_paths(&root, &paths) {
        Ok(d) => d,
        Err(e) => fail(&format!("lint failed: {e}")),
    };
    if json {
        println!("{}", varbench_lint::render_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if !diags.is_empty() {
            let n = diags.len();
            eprintln!(
                "lint: {n} finding{} (suppress with `// lint:allow(<id>): <reason>`)",
                if n == 1 { "" } else { "s" }
            );
        }
    }
    if !diags.is_empty() {
        std::process::exit(1);
    }
}

fn cache_command(args: &[String]) {
    if args.len() > 1 {
        fail(&format!(
            "unexpected argument '{}' after cache {}",
            args[1], args[0]
        ));
    }
    let dir = match std::env::var(CACHE_DIR_ENV) {
        Ok(d) if !d.is_empty() => Some(std::path::PathBuf::from(d)),
        _ => None,
    };
    match args.first().map(String::as_str) {
        Some("stats") => {
            let Some(dir) = dir else {
                println!("cache: in-memory only ({CACHE_DIR_ENV} not set); nothing persisted");
                return;
            };
            println!(
                "cache dir: {} (format v{CACHE_FORMAT_VERSION})",
                dir.display()
            );
            let versions = cache_version_dirs(&dir);
            if versions.is_empty() {
                println!("no records on disk yet");
                return;
            }
            for vdir in versions {
                let (mut files, mut bytes) = (0u64, 0u64);
                if let Ok(records) = std::fs::read_dir(&vdir) {
                    for rec in records.flatten() {
                        if let Ok(meta) = rec.metadata() {
                            files += 1;
                            bytes += meta.len();
                        }
                    }
                }
                let version = vdir.file_name().unwrap_or_default().to_string_lossy();
                let current = if version == format!("v{CACHE_FORMAT_VERSION}") {
                    " (current)"
                } else {
                    " (stale format, never read)"
                };
                println!("  {version}{current}: {files} records, {bytes} bytes");
            }
            let t = varbench_pipeline::lease::tally(&dir);
            if t != varbench_pipeline::lease::LeaseTally::default() {
                println!(
                    "fleet: {} active lease(s), {} reclaimed awaiting takeover, \
                     {} takeover(s) recorded, {} queued job(s)",
                    t.active, t.reclaimed, t.takeovers, t.queued
                );
            }
        }
        Some("gc") => {
            let Some(dir) = dir else {
                fail(&format!("{CACHE_DIR_ENV} not set; nothing to collect"));
            };
            let report = gc_dir(&dir)
                .unwrap_or_else(|e| fail(&format!("cache gc failed in {}: {e}", dir.display())));
            println!(
                "cache gc: kept {} records ({} bytes) under {}",
                report.kept_records,
                report.kept_bytes,
                dir.display()
            );
            println!(
                "removed {} files (stale-format {}, torn {}, orphan-tmp {}, \
                 stale-lease {}); reclaimed {} bytes",
                report.files_removed(),
                report.stale_version_files,
                report.torn_files,
                report.tmp_files,
                report.stale_leases,
                report.bytes_reclaimed
            );
        }
        Some("clear") => {
            let Some(dir) = dir else {
                fail(&format!("{CACHE_DIR_ENV} not set; nothing to clear"));
            };
            // Delete only the versioned record subdirectories the cache
            // wrote — never the directory itself or anything else in it.
            let versions = cache_version_dirs(&dir);
            if versions.is_empty() {
                println!("no cache records under {}; nothing to clear", dir.display());
                return;
            }
            for vdir in versions {
                match std::fs::remove_dir_all(&vdir) {
                    Ok(()) => println!("cleared {}", vdir.display()),
                    Err(e) => fail(&format!("cannot clear {}: {e}", vdir.display())),
                }
            }
        }
        Some(other) => fail(&format!(
            "unknown cache subcommand '{other}' (expected stats, gc, or clear)"
        )),
        None => fail("cache needs a subcommand: stats, gc, or clear"),
    }
}

/// Builds the execution context `serve`/`study` run against: executor
/// knobs plus the (possibly disk-backed) shared measurement cache.
fn build_ctx(serial: bool, threads: Option<usize>, par_bootstrap: bool) -> RunContext {
    let runner = match (serial, threads) {
        (true, _) => Runner::serial(),
        (false, Some(n)) => Runner::new(n),
        (false, None) => Runner::from_env(),
    };
    let bootstrap = if par_bootstrap {
        BootstrapMode::SplitPerReplicate
    } else {
        BootstrapMode::from_env()
    };
    RunContext::new(runner, MeasureCache::from_env()).with_bootstrap(bootstrap)
}

/// Validates the sharded-dispatch preconditions and returns the shared
/// cache directory the fleet coordinates through. Workers always
/// publish records under the default serial-bootstrap key variant (the
/// only one whose bytes match the committed artifacts), so the
/// dispatching driver must be probing that same variant, and both sides
/// need a disk cache they can actually share.
fn dispatch_cache_dir(ctx: &RunContext) -> std::path::PathBuf {
    if BootstrapMode::from_env() != BootstrapMode::Serial {
        fail(&format!(
            "sharded dispatch watches serial-bootstrap cache keys; unset {} first",
            varbench_core::ctx::PAR_BOOTSTRAP_ENV
        ));
    }
    match ctx.cache().dir() {
        Some(dir) => dir.to_path_buf(),
        None => fail(&format!(
            "sharded dispatch needs a shared disk cache; set {CACHE_DIR_ENV} to a directory"
        )),
    }
}

/// One line of dispatch accounting on stderr (stdout stays reserved for
/// the report, which must be byte-identical to an unsharded run).
fn report_dispatch(outcome: &varbench_bench::worker::DispatchOutcome) {
    eprintln!(
        "dispatch: {} unit(s), {} already cached, {} fleet-completed, {} lease reclaim(s){}",
        outcome.jobs,
        outcome.satisfied_upfront,
        outcome.completed,
        outcome.reclaims,
        if outcome.timed_out {
            "; wait budget expired — computing the rest in-process"
        } else {
            ""
        },
    );
}

fn resolve_addr(addr: &str) -> std::net::SocketAddr {
    use std::net::ToSocketAddrs;
    addr.to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .unwrap_or_else(|| fail(&format!("cannot resolve address '{addr}'")))
}

/// `varbench serve`: the long-running study server. All requests share
/// one executor and one measurement cache, so repeated and overlapping
/// studies answer from warm matrices (see `varbench_bench::serve`).
fn serve_command(args: &[String]) {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut serial = false;
    let mut threads: Option<usize> = None;
    let mut par_bootstrap = false;
    let mut ready_file: Option<std::path::PathBuf> = None;
    let mut handlers: Option<usize> = None;
    let mut queue: Option<usize> = None;
    let mut fleet_workers = 0usize;
    let mut max_respawns = 4u32;
    let mut drain_ms = 2_000u64;
    let mut wait_ms: Option<u64> = None;
    let mut row_timeout_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--serial" => serial = true,
            "--par-bootstrap" => par_bootstrap = true,
            "--workers" => {
                let v = it.next().unwrap_or_else(|| fail("--workers needs a count"));
                fleet_workers = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid worker count '{v}'")));
            }
            "--max-respawns" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--max-respawns needs a count"));
                max_respawns = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid respawn count '{v}'")));
            }
            "--drain-ms" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--drain-ms needs milliseconds"));
                drain_ms = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid drain budget '{v}'")));
            }
            "--wait-ms" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--wait-ms needs milliseconds"));
                wait_ms = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid wait '{v}'"))),
                );
            }
            "--row-timeout-ms" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--row-timeout-ms needs milliseconds"));
                row_timeout_ms = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid timeout '{v}'"))),
                );
            }
            "--addr" => {
                addr = it
                    .next()
                    .unwrap_or_else(|| fail("--addr needs HOST:PORT"))
                    .clone();
            }
            "--threads" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--threads needs a number"));
                threads = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid thread count '{v}'"))),
                );
            }
            "--handlers" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--handlers needs a count"));
                handlers = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid handler count '{v}'"))),
                );
            }
            "--queue" => {
                let v = it.next().unwrap_or_else(|| fail("--queue needs a depth"));
                queue = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid queue depth '{v}'"))),
                );
            }
            "--ready-file" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--ready-file needs a path"));
                ready_file = Some(v.into());
            }
            other => fail(&format!("unknown serve argument '{other}'")),
        }
    }
    let ctx = build_ctx(serial, threads, par_bootstrap);
    let persistent = ctx.cache().is_persistent();
    // Fleet mode: supervise `--workers` child processes over the shared
    // disk cache so dispatched studies (`"dispatch": true`) compute in
    // the fleet. Same preconditions as local sharding: a disk cache the
    // children can see, publishing serial-bootstrap records.
    let fleet = if fleet_workers > 0 {
        if par_bootstrap {
            fail("--workers publishes serial-bootstrap records; drop --par-bootstrap");
        }
        let dir = dispatch_cache_dir(&ctx);
        let mut cfg = varbench_bench::supervisor::SupervisorConfig::new(dir, fleet_workers);
        // `--max-respawns M` = M respawns after the initial spawn.
        cfg.respawn = RetryPolicy::new(max_respawns + 1)
            .initial_backoff(std::time::Duration::from_millis(100))
            .max_backoff(std::time::Duration::from_secs(2));
        Some(
            varbench_bench::supervisor::Supervisor::start(cfg)
                .unwrap_or_else(|e| fail(&format!("cannot start the worker fleet: {e}"))),
        )
    } else {
        None
    };
    let mut state = ServeState::new(ctx);
    if let Some(sup) = fleet {
        state = state.with_fleet(sup);
    }
    if wait_ms.is_some() || row_timeout_ms.is_some() {
        state = state.with_dispatch_tuning(
            std::time::Duration::from_millis(wait_ms.unwrap_or(20_000)),
            std::time::Duration::from_millis(row_timeout_ms.unwrap_or(2_000)),
        );
    }
    let mut server = Server::bind(&addr, state)
        .unwrap_or_else(|e| fail(&format!("cannot bind {addr}: {e}")))
        .with_drain(std::time::Duration::from_millis(drain_ms));
    if handlers.is_some() || queue.is_some() {
        server = server.with_pool(
            handlers.unwrap_or(varbench_bench::serve::DEFAULT_HANDLERS),
            queue.unwrap_or(varbench_bench::serve::DEFAULT_QUEUE),
        );
    }
    let local = server
        .local_addr()
        .unwrap_or_else(|e| fail(&format!("cannot read bound address: {e}")));
    eprintln!(
        "varbench serve: listening on {local} (measurement cache: {})",
        if persistent {
            "disk-backed"
        } else {
            "in-memory"
        }
    );
    if fleet_workers > 0 {
        eprintln!(
            "varbench serve: supervising {fleet_workers} worker(s), \
             {max_respawns} respawn(s) each before quarantine"
        );
    }
    if let Some(path) = ready_file {
        // Written only once the listener is live: a script that waits for
        // this file never races the bind.
        if let Err(e) = std::fs::write(&path, format!("{local}\n")) {
            fail(&format!("cannot write {}: {e}", path.display()));
        }
    }
    if let Err(e) = server.run() {
        fail(&format!("serve failed: {e}"));
    }
    eprintln!("varbench serve: shut down");
}

/// `varbench query`: one HTTP exchange with a running server, body to
/// stdout — the std-only curl stand-in used by scripts/ci.sh.
fn query_command(args: &[String]) {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut post = false;
    let mut retries = 0u32;
    let mut timeout_ms = 60_000u64;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--post" => post = true,
            "--addr" => {
                addr = it
                    .next()
                    .unwrap_or_else(|| fail("--addr needs HOST:PORT"))
                    .clone();
            }
            "--retries" => {
                let v = it.next().unwrap_or_else(|| fail("--retries needs a count"));
                retries = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid retry count '{v}'")));
            }
            "--timeout-ms" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--timeout-ms needs milliseconds"));
                timeout_ms = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid timeout '{v}'")));
            }
            flag if flag.starts_with('-') => fail(&format!("unknown query flag '{flag}'")),
            _ => positional.push(a),
        }
    }
    let Some(path) = positional.first() else {
        fail("query needs an endpoint PATH (e.g. /v1/workloads)");
    };
    if positional.len() > 2 {
        fail("query takes at most PATH and BODY");
    }
    let body = positional.get(1).map(|s| s.as_str());
    let method = if post || body.is_some() {
        "POST"
    } else {
        "GET"
    };
    // One attempt plus `retries` more, doubling the pause between them
    // and never sleeping past the --timeout-ms budget in total. Transport
    // failures and 503 (server shedding or draining; Retry-After honored
    // up to the backoff cap) retry; any other HTTP status is final.
    let policy = RetryPolicy::new(retries + 1).budget(std::time::Duration::from_millis(timeout_ms));
    let (status, response) = http_request_retry(resolve_addr(&addr), method, path, body, &policy)
        .unwrap_or_else(|e| {
            // Exhausted transport retries is a runtime failure (exit 1),
            // not a usage error: scripts distinguish the two.
            eprintln!(
                "error: request to {addr} failed after {} attempt(s): {e} \
                 (is `varbench serve` running there?)",
                retries + 1
            );
            std::process::exit(1);
        });
    print!("{response}");
    if status != 200 {
        eprintln!("HTTP {status}");
        std::process::exit(1);
    }
}

/// `varbench worker`: one member of a sharded-study fleet. Scans the
/// shared cache directory's job queue, claims rows through crash-safe
/// leases, computes them, and publishes the measurement records the
/// dispatching driver assembles into the final report (see
/// `varbench_bench::worker` for the fault model).
fn worker_command(args: &[String]) {
    let mut cache_dir: Option<std::path::PathBuf> = match std::env::var(CACHE_DIR_ENV) {
        Ok(d) if !d.is_empty() => Some(d.into()),
        _ => None,
    };
    let mut serial = false;
    let mut threads: Option<usize> = None;
    let mut drain = false;
    let mut poll_ms: Option<u64> = None;
    let mut idle_rounds: Option<u32> = None;
    let mut owner: Option<String> = None;
    let mut stop_file: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str, what: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs {what}")))
                .clone()
        };
        match a.as_str() {
            "--serial" => serial = true,
            "--drain" => drain = true,
            "--cache-dir" => cache_dir = Some(value("--cache-dir", "a directory").into()),
            "--id" => owner = Some(value("--id", "a name")),
            "--stop-file" => stop_file = Some(value("--stop-file", "a path").into()),
            "--poll-ms" => {
                let v = value("--poll-ms", "milliseconds");
                poll_ms = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid poll interval '{v}'"))),
                );
            }
            "--idle-rounds" => {
                let v = value("--idle-rounds", "a count");
                idle_rounds = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid round count '{v}'"))),
                );
            }
            "--threads" => {
                let v = value("--threads", "a number");
                threads = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid thread count '{v}'"))),
                );
            }
            other => fail(&format!("unknown worker argument '{other}'")),
        }
    }
    let Some(cache_dir) = cache_dir else {
        fail(&format!(
            "worker needs the fleet's shared cache directory (--cache-dir or {CACHE_DIR_ENV})"
        ));
    };
    let mut cfg = WorkerConfig::new(cache_dir);
    cfg.drain = drain;
    cfg.serial = serial;
    cfg.threads = threads;
    if let Some(ms) = poll_ms {
        cfg.poll = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = idle_rounds {
        cfg.idle_rounds = n;
    }
    if let Some(name) = owner {
        cfg.owner = name;
    }
    cfg.stop_file = stop_file;
    let summary = run_worker(&cfg);
    // stderr only: a worker's stdout must never pollute a driver's
    // report stream.
    eprintln!(
        "varbench worker ({}): {} job(s) computed, {} already satisfied, {} skipped",
        cfg.owner, summary.completed, summary.satisfied, summary.skipped
    );
}

/// `varbench study`: the Study builder as a first-class subcommand —
/// locally in-process, or (with --addr) on a running `varbench serve`,
/// with byte-identical JSON either way.
fn study_command(args: &[String]) {
    let mut workload: Option<String> = None;
    let mut effort = Effort::Quick;
    let mut sources: Option<Vec<varbench_pipeline::VarianceSource>> = None;
    let mut seeds: Option<usize> = None;
    let mut base_seed: Option<u64> = None;
    let mut budget: Option<usize> = None;
    let mut algo: Option<varbench_pipeline::HpoAlgorithm> = None;
    let mut gamma: Option<f64> = None;
    let mut name: Option<String> = None;
    let mut json = false;
    let mut serial = false;
    let mut threads: Option<usize> = None;
    let mut remote: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut dispatch_only = false;
    let mut wait_ms: Option<u64> = None;
    let mut row_timeout_ms: Option<u64> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str, what: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs {what}")))
                .clone()
        };
        match a.as_str() {
            "--json" => json = true,
            "--serial" => serial = true,
            "--dispatch" => dispatch_only = true,
            "--addr" => remote = Some(value("--addr", "HOST:PORT")),
            "--workers" => {
                let v = value("--workers", "a worker count");
                workers = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid worker count '{v}'"))),
                );
            }
            "--wait-ms" => {
                let v = value("--wait-ms", "milliseconds");
                wait_ms = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid wait '{v}'"))),
                );
            }
            "--row-timeout-ms" => {
                let v = value("--row-timeout-ms", "milliseconds");
                row_timeout_ms = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid timeout '{v}'"))),
                );
            }
            "--name" => name = Some(value("--name", "a report name")),
            "--seeds" => {
                let v = value("--seeds", "a count >= 2");
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid seed count '{v}'")));
                if n < 2 {
                    fail("a variance study needs at least 2 seeds");
                }
                seeds = Some(n);
            }
            "--budget" => {
                let v = value("--budget", "a trial count");
                budget = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid budget '{v}'"))),
                );
            }
            "--base-seed" => {
                let v = value("--base-seed", "a seed");
                base_seed = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid seed '{v}'"))),
                );
            }
            "--threads" => {
                let v = value("--threads", "a number");
                threads = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid thread count '{v}'"))),
                );
            }
            "--gamma" => {
                let v = value("--gamma", "a probability");
                let g: f64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid gamma '{v}'")));
                if !(g > 0.0 && g < 1.0) || (g - 0.5).abs() <= 1e-9 {
                    fail("--gamma must be in (0, 1) and differ from 0.5");
                }
                gamma = Some(g);
            }
            "--sources" => {
                let v = value("--sources", "a comma-separated label list");
                let parsed: Vec<_> = v
                    .split(',')
                    .map(|label| {
                        parse_source(label.trim()).unwrap_or_else(|| {
                            fail(&format!(
                                "unknown variance source '{label}' (see `varbench workloads`)"
                            ))
                        })
                    })
                    .collect();
                sources = Some(parsed);
            }
            "--algo" => {
                let v = value("--algo", "an algorithm name");
                algo = Some(parse_algo(&v).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown algorithm '{v}' (expected 'Random Search', 'Grid Search', \
                         'Noisy Grid Search', or 'Bayes Opt')"
                    ))
                }));
            }
            flag if Effort::from_flag(flag).is_some() => {
                effort = Effort::from_flag(flag).expect("checked");
            }
            flag if flag.starts_with('-') => fail(&format!("unknown study flag '{flag}'")),
            positional => {
                if workload.is_some() {
                    fail(&format!(
                        "study takes one workload, got extra '{positional}'"
                    ));
                }
                workload = Some(positional.to_string());
            }
        }
    }
    let Some(workload) = workload else {
        fail("study needs a workload name (run `varbench workloads` for the registry)");
    };
    let req = StudyRequest {
        workload,
        effort,
        sources,
        seeds,
        base_seed,
        budget,
        algo,
        gamma,
        name,
        // Locally, --dispatch routes through the lease queue below; with
        // --addr it rides in the request body and the *server's* fleet
        // computes the rows (the response bytes are identical either way).
        dispatch: dispatch_only,
    };

    if let Some(addr) = remote {
        if serial || threads.is_some() {
            fail("--serial/--threads are local knobs; the server owns remote execution");
        }
        if workers.is_some() {
            fail("--workers spawns subprocesses locally over the cache dir; drop --addr");
        }
        if wait_ms.is_some() || row_timeout_ms.is_some() {
            fail("--wait-ms/--row-timeout-ms tune local dispatch; the server owns its own");
        }
        let (status, response) = http_request(
            resolve_addr(&addr),
            "POST",
            "/v1/study",
            Some(&req.to_json()),
        )
        .unwrap_or_else(|e| {
            fail(&format!(
                "request to {addr} failed: {e} (is `varbench serve` running there?)"
            ))
        });
        if status != 200 {
            eprint!("{response}");
            fail(&format!("server rejected the study (HTTP {status})"));
        }
        // The server's envelope is byte-identical to local --json output.
        print!("{response}");
        return;
    }

    let ctx = build_ctx(serial, threads, false);

    // Sharded path: enqueue the study's measurement plan for a worker
    // fleet, wait (with reclaim of stalled rows), then fall through to
    // the normal in-process run below — which assembles the report from
    // the now-warm shared cache, computing only what the fleet did not
    // deliver. The report bytes are identical either way.
    if workers.is_some() || dispatch_only {
        let dir = dispatch_cache_dir(&ctx);
        let mut dcfg = DispatchConfig::new(dir, workers.unwrap_or(0));
        if dispatch_only {
            // Rely on an externally managed fleet; spawn nothing.
            dcfg.exe = None;
        }
        if let Some(ms) = wait_ms {
            dcfg.wait = std::time::Duration::from_millis(ms);
        }
        if let Some(ms) = row_timeout_ms {
            dcfg.row_timeout = std::time::Duration::from_millis(ms);
        }
        let w = req.find_workload().unwrap_or_else(|e| fail(&e));
        let study = req.configure(w.as_ref()).unwrap_or_else(|e| fail(&e));
        let jobs = study_jobs(&req.workload, req.effort, w.as_ref(), study.plan(), &ctx);
        report_dispatch(&dispatch(&dcfg, jobs, &ctx));
    }

    if json {
        match req.run_json(&ctx) {
            Ok(body) => print!("{body}"),
            Err(e) => fail(&e),
        }
    } else {
        match req.run(&ctx) {
            Ok(report) => print!("{}", report.render_text()),
            Err(e) => fail(&e),
        }
    }
}

/// `varbench bench`: run the timing suites in-process and optionally gate
/// the medians against a committed `BENCH_*.json` snapshot — the shipped
/// binary reproduces the perf trajectory without cargo.
fn bench_command(args: &[String]) {
    let mut selected: Vec<&str> = Vec::new();
    let mut quick = false;
    let mut json = false;
    let mut baseline: Option<std::path::PathBuf> = None;
    let mut max_regress = 25.0_f64;
    let mut max_regress_set = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--list" => {
                for (name, _) in suites::SUITES {
                    println!("{name}");
                }
                return;
            }
            "--baseline" => {
                let v = it.next().unwrap_or_else(|| fail("--baseline needs a file"));
                baseline = Some(v.into());
            }
            "--max-regress" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--max-regress needs a percentage"));
                max_regress = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid percentage '{v}'")));
                if max_regress <= 0.0 || max_regress.is_nan() {
                    fail("--max-regress must be > 0");
                }
                max_regress_set = true;
            }
            flag if flag.starts_with('-') => fail(&format!("unknown flag '{flag}'")),
            name => selected.push(name),
        }
    }
    for name in &selected {
        if suites::find(name).is_none() {
            fail(&format!(
                "unknown suite '{name}' (run `varbench bench --list`)"
            ));
        }
    }
    if max_regress_set && baseline.is_none() {
        fail("--max-regress needs --baseline (no gate would run otherwise)");
    }

    let output = if json { Output::Stderr } else { Output::Stdout };
    let mut results: Vec<BenchResult> = Vec::new();
    for &(name, body) in suites::SUITES {
        if !selected.is_empty() && !selected.contains(&name) {
            continue;
        }
        let mut h = if quick {
            Harness::with_config(name, 5, 2)
        } else {
            Harness::new(name)
        }
        .with_output(output);
        body(&mut h);
        results.extend(h.into_results());
    }

    if json {
        print!("{}", varbench_bench::timing::render_snapshot(&results));
    }

    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
        let base = parse_snapshot(&text)
            .unwrap_or_else(|e| fail(&format!("cannot parse {}: {e}", path.display())));
        let mut regressions = 0usize;
        let mut compared = 0usize;
        eprintln!(
            "perf gate vs {} (max regression {max_regress:.0}%):",
            path.display()
        );
        // Aligned columns: benchmark, current median, baseline median,
        // speedup (baseline/current — >1x is faster than the snapshot),
        // signed delta, verdict.
        let name_w = results
            .iter()
            .map(|r| r.suite.len() + r.name.len() + 1)
            .max()
            .unwrap_or(0)
            .max("benchmark".len());
        eprintln!(
            "  {:<name_w$}  {:>12}  {:>12}  {:>8}  {:>8}  verdict",
            "benchmark", "median_ns", "base_ns", "speedup", "delta"
        );
        for r in &results {
            let label = format!("{}/{}", r.suite, r.name);
            let Some(b) = base.iter().find(|b| b.suite == r.suite && b.name == r.name) else {
                eprintln!("  {label:<name_w$}  (not in baseline; skipped)");
                continue;
            };
            compared += 1;
            let base_ns = b.median_ns.max(1) as f64;
            let delta = r.median_ns as f64 / base_ns - 1.0;
            let speedup = base_ns / (r.median_ns.max(1) as f64);
            let verdict = if delta * 100.0 > max_regress {
                regressions += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            eprintln!(
                "  {label:<name_w$}  {:>12}  {:>12}  {:>7.2}x  {:>+7.1}%  {verdict}",
                r.median_ns,
                b.median_ns,
                speedup,
                delta * 100.0,
            );
        }
        eprintln!("{compared} benches compared, {regressions} regression(s)");
        if compared == 0 {
            fail("baseline shares no benches with this run");
        }
        if regressions > 0 {
            std::process::exit(1);
        }
    }
}

fn run(args: &[String]) {
    let mut names: Vec<&str> = Vec::new();
    let mut effort = Effort::Quick;
    let mut filter: Option<String> = None;
    let mut format = Format::Text;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut serial = false;
    let mut no_cache = false;
    let mut par_bootstrap = false;
    let mut threads: Option<usize> = None;
    let mut workers: Option<usize> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => format = Format::Json,
            "--csv" => format = Format::Csv,
            "--serial" => serial = true,
            "--no-cache" => no_cache = true,
            "--par-bootstrap" => par_bootstrap = true,
            "--workers" => {
                let v = it.next().unwrap_or_else(|| fail("--workers needs a count"));
                workers = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid worker count '{v}'"))),
                );
            }
            "--filter" => {
                let v = it.next().unwrap_or_else(|| fail("--filter needs a value"));
                filter = Some(v.clone());
            }
            "--out" => {
                let v = it.next().unwrap_or_else(|| fail("--out needs a directory"));
                out_dir = Some(v.into());
            }
            "--threads" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--threads needs a number"));
                threads = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid thread count '{v}'"))),
                );
            }
            flag if Effort::from_flag(flag).is_some() => {
                effort = Effort::from_flag(flag).expect("checked");
            }
            flag if flag.starts_with('-') => {
                fail(&format!("unknown flag '{flag}'"));
            }
            name => names.push(name),
        }
    }

    // Resolve the artifact selection.
    if names.is_empty() {
        fail("run needs at least one artifact name (or 'all')");
    }
    let mut specs: Vec<&'static Spec> = if names == ["all"] {
        registry::all().iter().collect()
    } else {
        names
            .iter()
            .map(|n| {
                registry::find(n).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown artifact '{n}' (run `varbench list` for names)"
                    ))
                })
            })
            .collect()
    };
    if let Some(f) = &filter {
        specs.retain(|s| s.name.contains(f.as_str()));
        if specs.is_empty() {
            fail(&format!("--filter {f} matched no artifacts"));
        }
    }

    let runner = match (serial, threads) {
        (true, _) => Runner::serial(),
        (false, Some(n)) => Runner::new(n),
        (false, None) => Runner::from_env(),
    };
    let bootstrap = if par_bootstrap {
        BootstrapMode::SplitPerReplicate
    } else {
        BootstrapMode::from_env()
    };
    if bootstrap == BootstrapMode::SplitPerReplicate {
        eprintln!(
            "bootstrap: split-stream (parallel) — output is thread-count stable but \
             not byte-comparable to serial-bootstrap artifacts"
        );
    }

    // Sharded path: farm each selected artifact out to a worker fleet
    // over the shared disk cache, then assemble the reports in-process
    // below from the warm cache — byte-identical to an unsharded run.
    if let Some(n) = workers {
        if no_cache {
            fail("--workers shards through the shared cache; drop --no-cache");
        }
        if bootstrap != BootstrapMode::Serial {
            fail("--workers publishes serial-bootstrap records; drop --par-bootstrap");
        }
        let probe_ctx = RunContext::new(runner, MeasureCache::from_env());
        let dir = dispatch_cache_dir(&probe_ctx);
        let jobs: Vec<DispatchJob> = specs
            .iter()
            .map(|s| DispatchJob {
                id: Job::artifact_id(s.name, effort),
                job: Job::Artifact {
                    name: s.name.to_string(),
                    effort,
                },
                probe: None,
            })
            .collect();
        report_dispatch(&dispatch(&DispatchConfig::new(dir, n), jobs, &probe_ctx));
    }
    // --no-cache: each artifact gets its own throwaway in-memory cache,
    // so nothing is shared across artifacts or persisted — but the batch
    // is still scheduled in parallel, intra-artifact memoization (e.g.
    // the HPO record shared by the FixHOpt variants) is preserved, and
    // per-artifact output is bit-identical either way.
    let reports = if no_cache {
        runner.map_indexed(specs.len(), |i| {
            let ctx = RunContext::new(runner, MeasureCache::new()).with_bootstrap(bootstrap);
            registry::run_specs(&[specs[i]], effort, &ctx)
                .pop()
                .expect("one report per spec")
        })
    } else {
        let ctx = RunContext::new(runner, MeasureCache::from_env()).with_bootstrap(bootstrap);
        let reports = registry::run_specs(&specs, effort, &ctx);
        let s = ctx.cache().stats();
        eprintln!(
            "cache: {} full hits, {} extensions, {} misses; {} rows computed, {} served; {} hopt records computed ({} fits), {} served{}",
            s.full_hits,
            s.extensions,
            s.misses,
            s.rows_computed,
            s.rows_served,
            s.records_computed,
            s.record_fits_computed,
            s.records_served,
            if ctx.cache().is_persistent() { " [disk]" } else { "" },
        );
        reports
    };
    if no_cache {
        eprintln!("cache: per-artifact private caches (--no-cache)");
    }

    // Emit.
    if let Some(dir) = out_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            fail(&format!("cannot create {}: {e}", dir.display()));
        }
        for report in &reports {
            let path = dir.join(format!("{}.{}", report.name(), format.extension()));
            if let Err(e) = std::fs::write(&path, format.render(report, effort)) {
                fail(&format!("cannot write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
        }
        return;
    }
    match format {
        Format::Text => {
            if reports.len() == 1 {
                print!("{}", reports[0].render_text());
            } else {
                for report in &reports {
                    println!("\n================ {} ================\n", report.title());
                    print!("{}", report.render_text());
                }
            }
        }
        Format::Json => {
            let docs: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
            println!("{}", json_envelope(effort, &docs));
        }
        Format::Csv => {
            for (i, report) in reports.iter().enumerate() {
                if i > 0 {
                    println!();
                }
                print!("{}", report.to_csv());
            }
        }
    }
}
