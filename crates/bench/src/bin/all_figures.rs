//! Runs every figure and table reproduction in sequence (quick mode by
//! default; pass --test or --full to change effort).
use varbench_bench::args::Effort;
use varbench_bench::figures::*;

fn main() {
    let effort = Effort::from_env();
    let run_one = |name: &str, body: String| {
        println!("\n================ {name} ================\n");
        print!("{body}");
    };
    run_one("Figure 1", fig1::run(&fig1::Config::for_effort(effort)));
    run_one("Figure 2", fig2::run(&fig2::Config::for_effort(effort)));
    run_one("Figure 3", fig3::run(&fig3::Config::default()));
    run_one(
        "Figure 5 / H.4",
        fig5::run(&fig5::Config::for_effort(effort)),
    );
    run_one("Figure 6", fig6::run(&fig6::Config::for_effort(effort)));
    run_one("Figure C.1", figc1::run());
    run_one("Figure F.2", figf2::run(&figf2::Config::for_effort(effort)));
    run_one("Figure G.3", figg3::run(&figg3::Config::for_effort(effort)));
    run_one("Figure H.5", figh5::run(&figh5::Config::for_effort(effort)));
    let i6 = match effort {
        Effort::Test => figi6::Config::test(),
        Effort::Quick => figi6::Config::quick(),
        Effort::Full => figi6::Config::full(),
    };
    run_one("Figure I.6", figi6::run(&i6));
    run_one("Tables", tables::run(&tables::Config::for_effort(effort)));
    run_one(
        "Extension: interactions",
        interactions::run(&interactions::Config::for_effort(effort)),
    );
    run_one(
        "Extension: ablations",
        ablations::run(&ablations::Config::for_effort(effort)),
    );
}
