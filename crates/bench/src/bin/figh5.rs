//! Regenerates the paper's Figure H.5 (MSE decomposition of estimators).
use varbench_bench::args::Effort;
use varbench_bench::figures::figh5;

fn main() {
    let config = figh5::Config::for_effort(Effort::from_env());
    print!("{}", figh5::run(&config));
}
