//! Regenerates the paper's Figure 2 (binomial model of test-set noise).
use varbench_bench::args::Effort;
use varbench_bench::figures::fig2;

fn main() {
    let config = fig2::Config::for_effort(Effort::from_env());
    print!("{}", fig2::run(&config));
}
