//! Regenerates the paper's Figure I.6 (robustness of comparison methods).
use varbench_bench::args::Effort;
use varbench_bench::figures::figi6;

fn main() {
    let config = match Effort::from_env() {
        Effort::Test => figi6::Config::test(),
        Effort::Quick => figi6::Config::quick(),
        Effort::Full => figi6::Config::full(),
    };
    print!("{}", figi6::run(&config));
}
