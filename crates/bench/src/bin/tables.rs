//! Regenerates the paper's Tables 1-10 (configs and Table 8 experiment).
use varbench_bench::args::Effort;
use varbench_bench::figures::tables;

fn main() {
    let config = tables::Config::for_effort(Effort::from_env());
    print!("{}", tables::run(&config));
}
