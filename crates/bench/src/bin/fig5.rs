//! Regenerates the paper's Figure 5 / H.4 (estimator standard errors).
use varbench_bench::args::Effort;
use varbench_bench::figures::fig5;

fn main() {
    let config = fig5::Config::for_effort(Effort::from_env());
    print!("{}", fig5::run(&config));
}
