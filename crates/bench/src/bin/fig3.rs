//! Regenerates the paper's Figure 3 (published improvements vs variance).
use varbench_bench::figures::fig3;

fn main() {
    print!("{}", fig3::run(&fig3::Config::default()));
}
