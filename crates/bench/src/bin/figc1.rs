//! Regenerates the paper's Figure C.1 (Noether sample sizes).
use varbench_bench::figures::figc1;

fn main() {
    print!("{}", figc1::run());
}
