//! Regenerates the paper's Figure 1 (variance of each source of variation).
use varbench_bench::args::Effort;
use varbench_bench::figures::fig1;

fn main() {
    let config = fig1::Config::for_effort(Effort::from_env());
    print!("{}", fig1::run(&config));
}
