//! Regenerates the paper's Figure F.2 (HPO optimization curves).
use varbench_bench::args::Effort;
use varbench_bench::figures::figf2;

fn main() {
    let config = figf2::Config::for_effort(Effort::from_env());
    print!("{}", figf2::run(&config));
}
