//! Regenerates the paper's Figure 6 (detection rates of decision criteria).
use varbench_bench::args::Effort;
use varbench_bench::figures::fig6;

fn main() {
    let config = fig6::Config::for_effort(Effort::from_env());
    print!("{}", fig6::run(&config));
}
