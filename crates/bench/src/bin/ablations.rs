//! Extension ablations: HPO-budget effect on xi_H variance, and
//! bootstrap-vs-cross-validation resampling comparison.
use varbench_bench::args::Effort;
use varbench_bench::figures::ablations;

fn main() {
    let config = ablations::Config::for_effort(Effort::from_env());
    print!("{}", ablations::run(&config));
}
