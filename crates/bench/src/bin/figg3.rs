//! Regenerates the paper's Figure G.3 (Shapiro-Wilk normality panel).
use varbench_bench::args::Effort;
use varbench_bench::figures::figg3;

fn main() {
    let config = figg3::Config::for_effort(Effort::from_env());
    print!("{}", figg3::run(&config));
}
