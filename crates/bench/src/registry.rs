//! The artifact registry: one [`Spec`] per paper artifact, replacing the
//! former 14 one-shot binaries with a single uniform surface.
//!
//! Every artifact — figure, table, or extension experiment — is a pure
//! function `(Effort, &RunContext) -> Report`. The registry gives each a
//! stable name, a display title and a description, so the `varbench` CLI
//! can list, filter, and run them uniformly, and so independent artifacts
//! can be scheduled in parallel ([`run_specs`]) while sharing one
//! measurement cache.

use crate::args::Effort;
use crate::figures::*;
use crate::workloads;
use varbench_core::report::Report;

pub use varbench_core::ctx::RunContext;

/// A registered artifact: identity plus its entry point.
pub struct Spec {
    /// Stable registry name (the CLI argument), e.g. `fig1`.
    pub name: &'static str,
    /// Display title matching the paper, e.g. `Figure 5 / H.4`.
    pub title: &'static str,
    /// One-line description of what the artifact shows.
    pub description: &'static str,
    run: fn(Effort, &RunContext) -> Report,
}

impl Spec {
    /// Runs the artifact at the given effort.
    pub fn run(&self, effort: Effort, ctx: &RunContext) -> Report {
        (self.run)(effort, ctx)
    }
}

impl std::fmt::Debug for Spec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spec")
            .field("name", &self.name)
            .field("title", &self.title)
            .finish()
    }
}

static REGISTRY: [Spec; 15] = [
    Spec {
        name: "fig1",
        title: "Figure 1",
        description: "variance of each source of variation vs bootstrap",
        run: |e, ctx| fig1::report_with(&fig1::Config::for_effort(e), ctx),
    },
    Spec {
        name: "fig2",
        title: "Figure 2",
        description: "binomial model of test-set sampling noise",
        run: |e, ctx| fig2::report_with(&fig2::Config::for_effort(e), ctx),
    },
    Spec {
        name: "fig3",
        title: "Figure 3",
        description: "published SOTA increments vs benchmark sigma",
        run: |e, ctx| fig3::report_with(&fig3::Config::for_effort(e), ctx),
    },
    Spec {
        name: "fig5",
        title: "Figure 5 / H.4",
        description: "standard error of estimators vs number of samples k",
        run: |e, ctx| fig5::report_with(&fig5::Config::for_effort(e), ctx),
    },
    Spec {
        name: "fig6",
        title: "Figure 6",
        description: "detection rates of comparison criteria (calibrated simulation)",
        run: |e, ctx| fig6::report_with(&fig6::Config::for_effort(e), ctx),
    },
    Spec {
        name: "figc1",
        title: "Figure C.1",
        description: "Noether minimal sample sizes vs gamma",
        run: |e, ctx| figc1::report_with(&figc1::Config::for_effort(e), ctx),
    },
    Spec {
        name: "figf2",
        title: "Figure F.2",
        description: "HPO best-so-far optimization curves",
        run: |e, ctx| figf2::report_with(&figf2::Config::for_effort(e), ctx),
    },
    Spec {
        name: "figg3",
        title: "Figure G.3",
        description: "Shapiro-Wilk normality of per-source performance",
        run: |e, ctx| figg3::report_with(&figg3::Config::for_effort(e), ctx),
    },
    Spec {
        name: "figh5",
        title: "Figure H.5",
        description: "bias/variance/rho/MSE decomposition of estimators",
        run: |e, ctx| figh5::report_with(&figh5::Config::for_effort(e), ctx),
    },
    Spec {
        name: "figi6",
        title: "Figure I.6",
        description: "robustness of comparison methods vs N and gamma",
        run: |e, ctx| figi6::report_with(&figi6::Config::for_effort(e), ctx),
    },
    Spec {
        name: "tables",
        title: "Tables",
        description: "configuration tables and the Table 8 model comparison",
        run: |e, ctx| tables::report_with(&tables::Config::for_effort(e), ctx),
    },
    Spec {
        name: "interactions",
        title: "Extension: interactions",
        description: "interaction of variance sources (joint vs sum of marginals)",
        run: |e, ctx| interactions::report_with(&interactions::Config::for_effort(e), ctx),
    },
    Spec {
        name: "ablations",
        title: "Extension: ablations",
        description: "HPO-budget sweep and bootstrap-vs-CV ablations",
        run: |e, ctx| ablations::report_with(&ablations::Config::for_effort(e), ctx),
    },
    Spec {
        name: "workload-linear",
        title: "Workload: linear",
        description: "variance profile of the logistic-regression workload",
        run: workloads::linear_report,
    },
    Spec {
        name: "workload-synth",
        title: "Workload: synthetic",
        description: "variance profile of the closed-form ridge workload",
        run: workloads::synth_report,
    },
];

/// Every registered artifact, in the canonical report order (the order
/// the old `all_figures` binary printed).
pub fn all() -> &'static [Spec] {
    &REGISTRY
}

/// Looks an artifact up by registry name.
pub fn find(name: &str) -> Option<&'static Spec> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// Runs a batch of artifacts, returning their reports in input order.
///
/// Batches are scheduled **across** artifacts on `runner`, and every
/// artifact also receives the full runner for its internal fan-out: the
/// modest thread oversubscription while several artifacts overlap is far
/// cheaper than leaving cores idle during the expensive tail artifact
/// (at `--full`, one figure can dominate the whole batch). Each report
/// is byte-identical to running that artifact alone, serially, without a
/// cache: scheduling and cache sharing change who computes a
/// measurement, never its value.
pub fn run_specs(specs: &[&'static Spec], effort: Effort, ctx: &RunContext) -> Vec<Report> {
    if specs.len() <= 1 {
        return specs.iter().map(|s| s.run(effort, ctx)).collect();
    }
    ctx.runner()
        .map_indexed(specs.len(), |i| specs[i].run(effort, ctx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = all().iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 15);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15, "duplicate registry names");
        assert!(find("fig5").is_some());
        assert!(find("tables").is_some());
        assert!(find("workload-linear").is_some());
        assert!(find("workload-synth").is_some());
        assert!(find("all_figures").is_none());
        assert_eq!(find("fig1").unwrap().title, "Figure 1");
    }

    #[test]
    fn registry_order_matches_canonical_report_order() {
        let order: Vec<&str> = all().iter().map(|s| s.name).collect();
        assert_eq!(order[0], "fig1");
        assert_eq!(order[order.len() - 1], "workload-synth");
        let fig5 = order.iter().position(|n| *n == "fig5").unwrap();
        let fig6 = order.iter().position(|n| *n == "fig6").unwrap();
        assert!(fig5 < fig6);
        let ablations = order.iter().position(|n| *n == "ablations").unwrap();
        let linear = order.iter().position(|n| *n == "workload-linear").unwrap();
        assert!(ablations < linear, "workload artifacts come last");
    }

    #[test]
    fn single_cheap_artifact_runs_via_registry() {
        let spec = find("figc1").expect("registered");
        let report = spec.run(Effort::Test, &RunContext::serial());
        assert_eq!(report.name(), "figc1");
        assert!(report.render_text().contains("N = 29"));
    }

    #[test]
    fn workload_artifacts_run_via_registry() {
        let ctx = RunContext::serial_cached();
        for (name, workload_name) in [
            ("workload-linear", "linear-logreg"),
            ("workload-synth", "synthetic-ridge"),
        ] {
            let spec = find(name).expect("registered");
            let report = spec.run(Effort::Test, &ctx);
            assert_eq!(report.name(), name);
            let text = report.render_text();
            assert!(text.contains(workload_name), "{name}: {text}");
            assert!(text.contains("Data (bootstrap)"), "{name}");
        }
    }
}
