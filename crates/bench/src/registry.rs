//! The artifact registry: one [`Spec`] per paper artifact, replacing the
//! former 14 one-shot binaries with a single uniform surface.
//!
//! Every artifact — figure, table, or extension experiment — is a pure
//! function `(Effort, &RunContext) -> Report`. The registry gives each a
//! stable name, a display title and a description, so the `varbench` CLI
//! can list, filter, and run them uniformly, and so independent artifacts
//! can be scheduled in parallel ([`run_specs`]) while sharing one
//! measurement cache.

use crate::args::Effort;
use crate::figures::*;
use varbench_core::exec::Runner;
use varbench_core::report::Report;
use varbench_pipeline::MeasureCache;

/// Everything an artifact needs from its environment: an executor and the
/// shared measurement cache. Pure configuration stays in the per-artifact
/// `Config` types.
#[derive(Clone, Copy)]
pub struct RunContext<'a> {
    /// Executor for fanning measurements across cores (results are
    /// bit-identical for any thread count).
    pub runner: &'a Runner,
    /// Shared measurement cache; artifacts run with a fresh cache behave
    /// identically (bit-for-bit) to artifacts run with a warm one.
    pub cache: &'a MeasureCache,
}

impl<'a> RunContext<'a> {
    /// Bundles an executor and a cache.
    pub fn new(runner: &'a Runner, cache: &'a MeasureCache) -> RunContext<'a> {
        RunContext { runner, cache }
    }
}

/// A registered artifact: identity plus its entry point.
pub struct Spec {
    /// Stable registry name (the CLI argument), e.g. `fig1`.
    pub name: &'static str,
    /// Display title matching the paper, e.g. `Figure 5 / H.4`.
    pub title: &'static str,
    /// One-line description of what the artifact shows.
    pub description: &'static str,
    run: fn(Effort, &RunContext) -> Report,
}

impl Spec {
    /// Runs the artifact at the given effort.
    pub fn run(&self, effort: Effort, ctx: &RunContext) -> Report {
        (self.run)(effort, ctx)
    }
}

impl std::fmt::Debug for Spec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spec")
            .field("name", &self.name)
            .field("title", &self.title)
            .finish()
    }
}

static REGISTRY: [Spec; 13] = [
    Spec {
        name: "fig1",
        title: "Figure 1",
        description: "variance of each source of variation vs bootstrap",
        run: |e, ctx| fig1::report_with(&fig1::Config::for_effort(e), ctx),
    },
    Spec {
        name: "fig2",
        title: "Figure 2",
        description: "binomial model of test-set sampling noise",
        run: |e, ctx| fig2::report_with(&fig2::Config::for_effort(e), ctx),
    },
    Spec {
        name: "fig3",
        title: "Figure 3",
        description: "published SOTA increments vs benchmark sigma",
        run: |e, ctx| fig3::report_with(&fig3::Config::for_effort(e), ctx),
    },
    Spec {
        name: "fig5",
        title: "Figure 5 / H.4",
        description: "standard error of estimators vs number of samples k",
        run: |e, ctx| fig5::report_with(&fig5::Config::for_effort(e), ctx),
    },
    Spec {
        name: "fig6",
        title: "Figure 6",
        description: "detection rates of comparison criteria (calibrated simulation)",
        run: |e, ctx| fig6::report_with(&fig6::Config::for_effort(e), ctx),
    },
    Spec {
        name: "figc1",
        title: "Figure C.1",
        description: "Noether minimal sample sizes vs gamma",
        run: |e, ctx| figc1::report_with(&figc1::Config::for_effort(e), ctx),
    },
    Spec {
        name: "figf2",
        title: "Figure F.2",
        description: "HPO best-so-far optimization curves",
        run: |e, ctx| figf2::report_with(&figf2::Config::for_effort(e), ctx),
    },
    Spec {
        name: "figg3",
        title: "Figure G.3",
        description: "Shapiro-Wilk normality of per-source performance",
        run: |e, ctx| figg3::report_with(&figg3::Config::for_effort(e), ctx),
    },
    Spec {
        name: "figh5",
        title: "Figure H.5",
        description: "bias/variance/rho/MSE decomposition of estimators",
        run: |e, ctx| figh5::report_with(&figh5::Config::for_effort(e), ctx),
    },
    Spec {
        name: "figi6",
        title: "Figure I.6",
        description: "robustness of comparison methods vs N and gamma",
        run: |e, ctx| figi6::report_with(&figi6::Config::for_effort(e), ctx),
    },
    Spec {
        name: "tables",
        title: "Tables",
        description: "configuration tables and the Table 8 model comparison",
        run: |e, ctx| tables::report_with(&tables::Config::for_effort(e), ctx),
    },
    Spec {
        name: "interactions",
        title: "Extension: interactions",
        description: "interaction of variance sources (joint vs sum of marginals)",
        run: |e, ctx| interactions::report_with(&interactions::Config::for_effort(e), ctx),
    },
    Spec {
        name: "ablations",
        title: "Extension: ablations",
        description: "HPO-budget sweep and bootstrap-vs-CV ablations",
        run: |e, ctx| ablations::report_with(&ablations::Config::for_effort(e), ctx),
    },
];

/// Every registered artifact, in the canonical report order (the order
/// the old `all_figures` binary printed).
pub fn all() -> &'static [Spec] {
    &REGISTRY
}

/// Looks an artifact up by registry name.
pub fn find(name: &str) -> Option<&'static Spec> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// Runs a batch of artifacts, returning their reports in input order.
///
/// Batches are scheduled **across** artifacts on `runner`, and every
/// artifact also receives the full runner for its internal fan-out: the
/// modest thread oversubscription while several artifacts overlap is far
/// cheaper than leaving cores idle during the expensive tail artifact
/// (at `--full`, one figure can dominate the whole batch). Each report
/// is byte-identical to running that artifact alone, serially, without a
/// cache: scheduling and cache sharing change who computes a
/// measurement, never its value.
pub fn run_specs(
    specs: &[&'static Spec],
    effort: Effort,
    runner: &Runner,
    cache: &MeasureCache,
) -> Vec<Report> {
    let ctx = RunContext::new(runner, cache);
    if specs.len() <= 1 {
        return specs.iter().map(|s| s.run(effort, &ctx)).collect();
    }
    runner.map_indexed(specs.len(), |i| specs[i].run(effort, &ctx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = all().iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 13);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13, "duplicate registry names");
        assert!(find("fig5").is_some());
        assert!(find("tables").is_some());
        assert!(find("all_figures").is_none());
        assert_eq!(find("fig1").unwrap().title, "Figure 1");
    }

    #[test]
    fn registry_order_matches_canonical_report_order() {
        let order: Vec<&str> = all().iter().map(|s| s.name).collect();
        assert_eq!(order[0], "fig1");
        assert_eq!(order[order.len() - 1], "ablations");
        let fig5 = order.iter().position(|n| *n == "fig5").unwrap();
        let fig6 = order.iter().position(|n| *n == "fig6").unwrap();
        assert!(fig5 < fig6);
    }

    #[test]
    fn single_cheap_artifact_runs_via_registry() {
        let cache = MeasureCache::new();
        let runner = Runner::serial();
        let spec = find("figc1").expect("registered");
        let report = spec.run(Effort::Test, &RunContext::new(&runner, &cache));
        assert_eq!(report.name(), "figc1");
        assert!(report.render_text().contains("N = 29"));
    }
}
