//! `varbench serve` — a std-only HTTP/1.1 + JSON study server over the
//! shared measurement cache.
//!
//! The paper's score matrices are community infrastructure: queried far
//! more often than they are computed. This module turns the one-shot CLI
//! into a long-running service — a bounded pool of handler threads fed
//! by a fixed-capacity accept queue, where every request runs against
//! **one** [`RunContext`], so the `MeasureCache` answers warm requests
//! instantly from memory or disk, schedules only the missing matrix
//! delta for cold ones, and coalesces concurrent identical requests
//! into a single computation.
//!
//! When every handler is busy and the queue is full, new connections
//! are **shed** with `503 Service Unavailable` instead of being read:
//! the listener stays responsive under overload, and clients retry
//! with backoff ([`http_request_retry`] is the matching transport).
//!
//! # Endpoints
//!
//! | method & path | body | answers |
//! |---|---|---|
//! | `GET /health` | — | liveness probe (the process answers) |
//! | `GET /v1/ready` | — | readiness: fleet health, 503 when all quarantined |
//! | `GET /v1/workloads` | — | registered workload names + sources |
//! | `GET /v1/artifacts` | — | registry artifact names |
//! | `GET /v1/cache/stats` | — | cache hit/miss/coalescing counters |
//! | `POST /v1/run` | [`RunRequest`] | `varbench-report/1` envelope |
//! | `POST /v1/study` | [`StudyRequest`] | `varbench-report/1` envelope |
//! | `POST /v1/shutdown` | — | acks, then drains and stops |
//!
//! # Connections and the fleet
//!
//! Connections are HTTP/1.1 **keep-alive** by default: a handler serves
//! up to [`MAX_KEEPALIVE_REQUESTS`] requests per connection, waiting
//! [`KEEPALIVE_IDLE`] between them and giving each request
//! [`REQUEST_READ`] per read to arrive (`Connection: close`, HTTP/1.0,
//! or either limit ends the session). Every `503` carries a
//! `Retry-After` hint that [`http_request_retry`] honors.
//!
//! A [`StudyRequest`] with `"dispatch": true` routes the study's plan
//! through the PR-9 worker-fleet machinery: rows are enqueued into the
//! cache-dir lease queue, a supervised fleet (see [`crate::supervisor`])
//! computes them, the driver's stall-detection reclaims dead owners'
//! leases, and the response is then assembled **in-process from the warm
//! cache** — so served bytes stay identical to offline runs no matter
//! which process computed which row. Shutdown drains gracefully: stop
//! accepting, finish in-flight requests, stop the fleet via its stop
//! file, release any lease the fleet still holds, then exit.
//!
//! Report responses are **byte-identical** to the equivalent offline CLI
//! invocation (`varbench run ... --json` / `varbench study ... --json`):
//! the protocol layer shares the CLI's envelope and builders, and the
//! cache guarantees cached == uncached bytes, so where a value is
//! computed — this process, an earlier process, a fleet worker — never
//! shows in the response.
//!
//! The server reads no wall clock (socket timeouts are plain
//! `Duration`s); it is deterministic in its inputs like everything else
//! in the workspace.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::args::Effort;
use crate::protocol::{RunRequest, StudyRequest};
use crate::registry;
use crate::supervisor::Supervisor;
use crate::worker;
use crate::workloads;
use varbench_core::ctx::{BootstrapMode, RunContext};
use varbench_core::json::Json;
use varbench_core::report::json_string;
use varbench_pipeline::faultpoint::faultpoint;

/// Per-connection write timeout (and the client-side socket timeout).
/// Generous: a cold `--full` study computes for a while before the
/// response starts.
const IO_TIMEOUT: Duration = Duration::from_secs(600);

/// Per-read deadline while a request is arriving. Bounded reads
/// (`MAX_HEAD`/`MAX_BODY`) make this an effective per-request
/// deadline: a half-sent request cannot hold a handler forever.
pub const REQUEST_READ: Duration = Duration::from_secs(30);

/// How long a keep-alive connection may sit idle between requests
/// before the server closes it and returns the handler to the pool.
pub const KEEPALIVE_IDLE: Duration = Duration::from_secs(5);

/// Requests served per connection before the server closes it (bounds
/// how long one chatty client can monopolize a handler).
pub const MAX_KEEPALIVE_REQUESTS: usize = 1024;

/// Maximum accepted request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;

/// Maximum accepted request body.
const MAX_BODY: usize = 1024 * 1024;

/// Default handler-pool size.
pub const DEFAULT_HANDLERS: usize = 8;

/// Default accept-queue capacity (connections waiting for a handler
/// beyond the ones being served; past this, connections are shed).
pub const DEFAULT_QUEUE: usize = 32;

/// Shared server state: the one execution context every request runs
/// against (sharing the context is the entire point — it is what makes
/// request N answerable from the matrices requests 1..N-1 computed),
/// plus the optional supervised worker fleet behind `"dispatch": true`
/// studies.
pub struct ServeState {
    ctx: RunContext,
    fleet: Option<Supervisor>,
    dispatch_wait: Duration,
    dispatch_row_timeout: Duration,
    dispatch_poll: Duration,
}

impl ServeState {
    /// Wraps an execution context for serving (no fleet; dispatch
    /// requests still work — they degrade to the in-process fallback
    /// after the dispatch wait, exactly like an offline driver whose
    /// fleet never showed up).
    pub fn new(ctx: RunContext) -> ServeState {
        ServeState {
            ctx,
            fleet: None,
            dispatch_wait: Duration::from_millis(20_000),
            dispatch_row_timeout: Duration::from_millis(2_000),
            dispatch_poll: Duration::from_millis(50),
        }
    }

    /// Attaches a supervised worker fleet: dispatched studies are
    /// computed by its workers, and `GET /v1/ready` reflects its health.
    pub fn with_fleet(mut self, fleet: Supervisor) -> ServeState {
        self.fleet = Some(fleet);
        self
    }

    /// Overrides the dispatch pacing: total wait budget before the
    /// in-process fallback, and the per-row stall timeout after which a
    /// held lease is reclaimed.
    pub fn with_dispatch_tuning(mut self, wait: Duration, row_timeout: Duration) -> ServeState {
        self.dispatch_wait = wait;
        self.dispatch_row_timeout = row_timeout;
        self.dispatch_poll = row_timeout
            .min(Duration::from_millis(50))
            .max(Duration::from_millis(1));
        self
    }

    /// The shared execution context.
    pub fn ctx(&self) -> &RunContext {
        &self.ctx
    }

    /// The supervised fleet, if one is attached.
    pub fn fleet(&self) -> Option<&Supervisor> {
        self.fleet.as_ref()
    }
}

/// Dispatches one parsed request to its handler — the pure core of the
/// server (no sockets), so tests and benches drive it directly.
/// Returns `(status, body)`; bodies are JSON and newline-terminated.
pub fn route(state: &ServeState, method: &str, path: &str, body: &str) -> (u16, String) {
    match (method, path) {
        ("GET", "/health") => (200, "{\"ok\":true}\n".into()),
        ("GET", "/v1/ready") => ready_body(state),
        ("GET", "/v1/workloads") => (200, workloads_body()),
        ("GET", "/v1/artifacts") => (200, artifacts_body()),
        ("GET", "/v1/cache/stats") => (200, cache_stats_body(state)),
        ("POST", "/v1/run") => match parse_body(body).and_then(|doc| RunRequest::from_json(&doc)) {
            Ok(req) => (200, req.run(state.ctx())),
            Err(e) => (400, error_body(&e)),
        },
        ("POST", "/v1/study") => {
            match parse_body(body).and_then(|doc| StudyRequest::from_json(&doc)) {
                Ok(req) if req.dispatch => match run_study_dispatched(state, &req) {
                    Ok(body) => (200, body),
                    Err(e) => (400, error_body(&e)),
                },
                Ok(req) => match req.run_json(state.ctx()) {
                    Ok(body) => (200, body),
                    Err(e) => (400, error_body(&e)),
                },
                Err(e) => (400, error_body(&e)),
            }
        }
        ("POST", "/v1/shutdown") => (200, "{\"ok\":true,\"shutting_down\":true}\n".into()),
        // Known path, wrong method → 405; anything else → 404.
        (_, "/health" | "/v1/ready" | "/v1/workloads" | "/v1/artifacts" | "/v1/cache/stats") => {
            (405, error_body("use GET for this endpoint"))
        }
        (_, "/v1/run" | "/v1/study" | "/v1/shutdown") => {
            (405, error_body("use POST for this endpoint"))
        }
        _ => (404, error_body(&format!("no such endpoint: {path}"))),
    }
}

fn parse_body(body: &str) -> Result<Json, String> {
    if body.trim().is_empty() {
        return Err("request body must be a JSON object".into());
    }
    Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))
}

fn error_body(message: &str) -> String {
    format!("{{\"error\":{}}}\n", json_string(message))
}

fn workloads_body() -> String {
    let items: Vec<String> = workloads::all(Effort::Quick.scale())
        .iter()
        .map(|w| {
            let sources: Vec<String> = w
                .active_sources()
                .iter()
                .map(|s| json_string(s.label()))
                .collect();
            format!(
                "{{\"name\":{},\"metric\":{},\"sources\":[{}]}}",
                json_string(w.name()),
                json_string(w.metric_name()),
                sources.join(",")
            )
        })
        .collect();
    format!("{{\"workloads\":[{}]}}\n", items.join(","))
}

fn artifacts_body() -> String {
    let items: Vec<String> = registry::all()
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":{},\"title\":{},\"description\":{}}}",
                json_string(s.name),
                json_string(s.title),
                json_string(s.description)
            )
        })
        .collect();
    format!("{{\"artifacts\":[{}]}}\n", items.join(","))
}

fn cache_stats_body(state: &ServeState) -> String {
    let s = state.ctx().cache().stats();
    format!(
        "{{\"full_hits\":{},\"extensions\":{},\"misses\":{},\"rows_computed\":{},\
         \"rows_served\":{},\"records_computed\":{},\"records_served\":{},\
         \"record_fits_computed\":{},\"disk_loads\":{},\"coalesced\":{},\
         \"persistent\":{}}}\n",
        s.full_hits,
        s.extensions,
        s.misses,
        s.rows_computed,
        s.rows_served,
        s.records_computed,
        s.records_served,
        s.record_fits_computed,
        s.disk_loads,
        s.coalesced,
        state.ctx().cache().is_persistent(),
    )
}

/// `GET /v1/ready`: readiness as distinct from `/health` liveness. A
/// fleetless server is ready (every request computes in-process); a
/// fleet-backed one is ready while at least one worker slot is live —
/// when the whole fleet is quarantined, dispatched studies would all
/// burn the dispatch wait before falling back, so the server says 503
/// and lets the load balancer route elsewhere.
fn ready_body(state: &ServeState) -> (u16, String) {
    match state.fleet() {
        None => (200, "{\"ready\":true,\"fleet\":null}\n".into()),
        Some(fleet) => {
            let s = fleet.status();
            let ready = s.slots.is_empty() || s.running() > 0;
            let body = format!(
                "{{\"ready\":{ready},\"fleet\":{{\"workers\":{},\"running\":{},\
                 \"quarantined\":{},\"respawns\":{}}}}}\n",
                s.slots.len(),
                s.running(),
                s.quarantined(),
                s.respawns(),
            );
            (if ready { 200 } else { 503 }, body)
        }
    }
}

/// The fleet-backed study path (`"dispatch": true`): enqueue the plan
/// into the lease queue, wait on the fleet with the offline driver's
/// stall-detection/reclaim loop, then assemble the response in-process
/// from the warm cache. The assembly step is what pins the bytes: it is
/// the same single-process code path as a non-dispatched request, so
/// fleet or no fleet, crashes or none, equal requests answer equal
/// bytes.
fn run_study_dispatched(state: &ServeState, req: &StudyRequest) -> Result<String, String> {
    let ctx = state.ctx();
    let Some(dir) = ctx.cache().dir() else {
        return Err(
            "dispatch needs a disk-backed cache: restart serve with VARBENCH_CACHE_DIR set".into(),
        );
    };
    if ctx.bootstrap() != BootstrapMode::Serial {
        return Err(
            "dispatch requires the default serial bootstrap mode: restart serve without \
             VARBENCH_PAR_BOOTSTRAP"
                .into(),
        );
    }
    let workload = req.find_workload()?;
    let plan = req.configure(workload.as_ref())?.plan();
    let jobs = worker::study_jobs(&req.workload, req.effort, workload.as_ref(), plan, ctx);
    faultpoint("serve:mid-dispatch");
    let mut dcfg = worker::DispatchConfig::new(dir, 0);
    // The serve fleet is supervised and long-lived: never spawn
    // per-request workers, just enqueue and watch the cache.
    dcfg.exe = None;
    dcfg.wait = state.dispatch_wait;
    dcfg.row_timeout = state.dispatch_row_timeout;
    dcfg.poll = state.dispatch_poll;
    let outcome = worker::dispatch(&dcfg, jobs, ctx);
    eprintln!(
        "serve dispatch: {} unit(s), {} already cached, {} fleet-completed, {} lease reclaim(s){}",
        outcome.jobs,
        outcome.satisfied_upfront,
        outcome.completed,
        outcome.reclaims,
        if outcome.timed_out {
            "; wait budget expired — computing the rest in-process"
        } else {
            ""
        }
    );
    req.run_json(ctx)
}

struct Request {
    method: String,
    path: String,
    body: String,
    /// The client asked for (or its HTTP version defaults to) connection
    /// close after this response.
    close: bool,
}

/// What one attempt to read a request produced.
enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Clean EOF or idle timeout *before any request bytes*: the normal
    /// end of a keep-alive session — close silently, nothing to answer.
    Quiet,
    /// A broken or oversized request, as a ready-to-send `(status,
    /// body)`; the connection closes after the error response.
    Failed(u16, String),
}

/// Reads and parses one HTTP/1.x request. The caller sets the read
/// timeout for the *first* byte (the keep-alive idle window); once
/// request bytes start arriving this switches to the per-read
/// [`REQUEST_READ`] deadline.
fn read_request(stream: &mut TcpStream) -> ReadOutcome {
    use ReadOutcome::Failed;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > MAX_HEAD {
            return Failed(413, error_body("request head too large"));
        }
        match stream.read(&mut chunk) {
            Ok(0) if buf.is_empty() => return ReadOutcome::Quiet,
            Ok(0) => return Failed(400, error_body("connection closed mid-request")),
            Ok(n) => {
                if buf.is_empty() {
                    // First bytes of a request: idle window over, the
                    // per-request read deadline applies from here.
                    let _ = stream.set_read_timeout(Some(REQUEST_READ));
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if is_timeout(&e) && buf.is_empty() => return ReadOutcome::Quiet,
            Err(e) => return Failed(408, error_body(&format!("read failed: {e}"))),
        }
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(head) => head,
        Err(_) => return Failed(400, error_body("request head is not UTF-8")),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let (method, path, http11) = match parse_request_line(request_line) {
        Ok(parsed) => parsed,
        Err(e) => return Failed(400, error_body(&format!("malformed request line: {e}"))),
    };
    let mut content_length = 0usize;
    let mut connection: Option<String> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => return Failed(400, error_body("bad Content-Length")),
                };
            } else if name.eq_ignore_ascii_case("connection") {
                connection = Some(value.trim().to_ascii_lowercase());
            }
        }
    }
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
    // Connection header overrides either way.
    let close = match connection.as_deref() {
        Some("close") => true,
        Some("keep-alive") => false,
        _ => !http11,
    };
    if content_length > MAX_BODY {
        return Failed(413, error_body("request body too large"));
    }
    let mut body_bytes = buf[head_end + 4..].to_vec();
    while body_bytes.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Failed(400, error_body("connection closed mid-body")),
            Ok(n) => body_bytes.extend_from_slice(&chunk[..n]),
            Err(e) => return Failed(408, error_body(&format!("read failed: {e}"))),
        }
    }
    body_bytes.truncate(content_length);
    let body = match String::from_utf8(body_bytes) {
        Ok(body) => body,
        Err(_) => return Failed(400, error_body("request body is not UTF-8")),
    };
    ReadOutcome::Request(Request {
        method,
        path,
        body,
        close,
    })
}

/// Whether `e` is a read-timeout (both kinds a blocking socket with
/// `SO_RCVTIMEO` reports, platform-dependent).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

/// Parses an HTTP/1.x request line into `(method, path, is_http11)`.
/// Pure, so the error taxonomy — empty line, too few tokens, wrong
/// protocol — is unit-testable without a socket. Every failure maps to
/// a 400.
fn parse_request_line(line: &str) -> Result<(String, String, bool), String> {
    let mut parts = line.split_whitespace();
    let Some(method) = parts.next() else {
        return Err("empty request line".into());
    };
    let (Some(path), Some(version)) = (parts.next(), parts.next()) else {
        return Err(format!("expected `METHOD PATH VERSION`, got {line:?}"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol version {version:?}"));
    }
    Ok((method.to_string(), path.to_string(), version == "HTTP/1.1"))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn render_response(status: u16, body: &str, close: bool) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    // Every 503 — shed, unready, whatever — carries the pacing hint
    // `varbench query` honors.
    let retry_after = if status == 503 {
        "Retry-After: 1\r\n"
    } else {
        ""
    };
    let connection = if close { "close" } else { "keep-alive" };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{retry_after}Connection: {connection}\r\n\r\n{body}",
        body.len()
    )
}

/// Serves one connection — up to [`MAX_KEEPALIVE_REQUESTS`] requests,
/// keep-alive between them — and returns whether a shutdown request was
/// acknowledged on it.
fn handle_connection(mut stream: TcpStream, state: &ServeState) -> bool {
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut shutdown = false;
    for served in 0..MAX_KEEPALIVE_REQUESTS {
        // First request: a whole request-read window. Afterwards: the
        // shorter keep-alive idle window, so a silent client returns
        // this handler to the pool quickly.
        let idle = if served == 0 {
            REQUEST_READ
        } else {
            KEEPALIVE_IDLE
        };
        let _ = stream.set_read_timeout(Some(idle));
        match read_request(&mut stream) {
            ReadOutcome::Request(req) => {
                // A panicking handler (a bug, or a workload assert) must
                // kill one response, not the server.
                let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    route(state, &req.method, &req.path, &req.body)
                }));
                let (status, body) = routed.unwrap_or_else(|_| {
                    (500, error_body("internal error: request handler panicked"))
                });
                let is_shutdown =
                    status == 200 && req.method == "POST" && req.path == "/v1/shutdown";
                shutdown |= is_shutdown;
                let close = req.close || is_shutdown || served + 1 == MAX_KEEPALIVE_REQUESTS;
                let _ = stream.write_all(render_response(status, &body, close).as_bytes());
                let _ = stream.flush();
                if close {
                    break;
                }
            }
            ReadOutcome::Quiet => break,
            ReadOutcome::Failed(status, body) => {
                let _ = stream.write_all(render_response(status, &body, true).as_bytes());
                let _ = stream.flush();
                break;
            }
        }
    }
    shutdown
}

/// Rejects a connection at the accept gate without reading it: the
/// queue is full, so the client gets an immediate `503` and the
/// listener moves on. Shedding is what keeps the server answering
/// health checks while a burst drains.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let body = error_body("server at capacity; retry with backoff");
    let _ = stream.write_all(render_response(503, &body, true).as_bytes());
    let _ = stream.flush();
    // Drain whatever the client already sent before closing: dropping
    // a socket with unread bytes in its receive buffer turns the close
    // into an RST, which can destroy the 503 on its way out.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    handlers: usize,
    queue: usize,
    drain: Duration,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, or port `0` for an
    /// OS-assigned one) with the default pool shape (8 handlers, a
    /// queue of 32 waiting connections) and a 2 s fleet-drain budget.
    pub fn bind(addr: &str, state: ServeState) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(state),
            handlers: DEFAULT_HANDLERS,
            queue: DEFAULT_QUEUE,
            drain: Duration::from_secs(2),
        })
    }

    /// Overrides the drain budget: how long shutdown waits for fleet
    /// workers to finish their in-flight row before killing them.
    pub fn with_drain(mut self, drain: Duration) -> Server {
        self.drain = drain;
        self
    }

    /// Overrides the pool shape: `handlers` concurrent request threads
    /// (clamped to at least 1) fed by a queue holding up to `queue`
    /// waiting connections. `queue = 0` is a rendezvous: a connection
    /// is either handed to an idle handler immediately or shed.
    pub fn with_pool(mut self, handlers: usize, queue: usize) -> Server {
        self.handlers = handlers.max(1);
        self.queue = queue;
        self
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until a `POST /v1/shutdown` is acknowledged,
    /// dispatching each to the handler pool — or shedding it with a
    /// `503` when the pool and queue are both full — then drains
    /// queued and in-flight requests and returns.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(self.queue);
        let rx = Arc::new(std::sync::Mutex::new(rx));
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::with_capacity(self.handlers);
        for _ in 0..self.handlers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            let shutdown_flag = Arc::clone(&shutdown);
            workers.push(std::thread::spawn(move || loop {
                // Hold the lock only to dequeue, never while handling,
                // so the other handlers keep draining the queue.
                let next = { rx.lock().expect("accept queue lock").recv() };
                let Ok(stream) = next else { break };
                if handle_connection(stream, &state) {
                    shutdown_flag.store(true, Ordering::SeqCst);
                    // Poke the accept loop so it observes the flag; the
                    // poke connection is accepted and dropped unserved.
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        for conn in self.listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(std::sync::mpsc::TrySendError::Full(stream)) => shed(stream),
                Err(std::sync::mpsc::TrySendError::Disconnected(_)) => break,
            }
        }
        // Closing the sender lets each handler finish its queue drain
        // and fall out of `recv()`.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        // In-flight requests are done; now drain the fleet — stop file,
        // bounded wait, kill stragglers, release held leases.
        if let Some(fleet) = self.state.fleet() {
            let d = fleet.shutdown(self.drain);
            eprintln!(
                "serve: fleet drained ({} exited, {} killed, {} lease(s) released)",
                d.exited, d.killed, d.leases_released
            );
        }
        Ok(())
    }
}

/// A response as the client transport sees it: status, body, and the
/// two headers the clients act on.
struct RawResponse {
    status: u16,
    /// `Retry-After` seconds, when the server sent one (503s do).
    retry_after: Option<u64>,
    /// The server announced it will close the connection.
    close: bool,
    body: String,
}

fn write_request(
    stream: &mut TcpStream,
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    close: bool,
) -> std::io::Result<()> {
    let body = body.unwrap_or("");
    let connection = if close { "close" } else { "keep-alive" };
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
             Connection: {connection}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.flush()
}

/// Reads one Content-Length-framed response. EOF before a complete
/// response maps to `ConnectionAborted` — the server died mid-exchange,
/// which is a *transient* transport failure for the retrying clients
/// (the restarted server answers the retry from its warm cache).
fn read_response(stream: &mut TcpStream) -> std::io::Result<RawResponse> {
    let aborted = || {
        std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            "connection closed before a complete response",
        )
    };
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        match stream.read(&mut chunk)? {
            0 => return Err(aborted()),
            n => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let invalid =
        || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response head");
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| invalid())?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(invalid)?;
    let mut content_length: Option<usize> = None;
    let mut retry_after = None;
    let mut close = false;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(value.parse().map_err(|_| invalid())?);
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.parse().ok();
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.eq_ignore_ascii_case("close");
            }
        }
    }
    let content_length = content_length.ok_or_else(invalid)?;
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk)? {
            0 => return Err(aborted()),
            n => body.extend_from_slice(&chunk[..n]),
        }
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| invalid())?;
    Ok(RawResponse {
        status,
        retry_after,
        close,
        body,
    })
}

/// A minimal std-only HTTP/1.1 client for one request/response exchange
/// (`Connection: close`) — the `varbench query` transport, the CI smoke
/// test's curl replacement, and the serve bench driver.
///
/// `body = None` sends a bare request (GET-style); `Some` posts it.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let resp = http_request_raw(addr, method, path, body)?;
    Ok((resp.status, resp.body))
}

fn http_request_raw(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<RawResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write_request(&mut stream, addr, method, path, body, true)?;
    read_response(&mut stream)
}

/// A keep-alive HTTP/1.1 client: one connection reused across
/// requests, reconnecting transparently when the server closes it (idle
/// timeout, per-connection request cap, or restart). The serve bench
/// uses this to measure reused-connection throughput; anything issuing
/// many requests against one server should prefer it over per-request
/// [`http_request`].
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
}

impl HttpClient {
    /// Connects to `addr` (eagerly, so a dead server fails here, not on
    /// the first request).
    pub fn connect(addr: SocketAddr) -> std::io::Result<HttpClient> {
        Ok(HttpClient {
            addr,
            stream: Some(Self::open(addr)?),
        })
    }

    fn open(addr: SocketAddr) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        Ok(stream)
    }

    /// One request/response exchange over the held connection. A failed
    /// exchange on a *reused* connection (the server idle-closed it
    /// under us) is retried once on a fresh connection before the error
    /// surfaces.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        for fresh in [false, true] {
            if fresh || self.stream.is_none() {
                self.stream = Some(Self::open(self.addr)?);
            }
            let stream = self.stream.as_mut().expect("connection just ensured");
            let exchange = write_request(stream, self.addr, method, path, body, false)
                .and_then(|()| read_response(stream));
            match exchange {
                Ok(resp) => {
                    if resp.close {
                        self.stream = None;
                    }
                    return Ok((resp.status, resp.body));
                }
                Err(e) if fresh => return Err(e),
                Err(_) => self.stream = None,
            }
        }
        unreachable!("second iteration returns either way")
    }
}

/// [`http_request`] with bounded retry under `policy`'s backoff
/// schedule — the `varbench query --retries` transport. Retried:
/// *transport* failures (connection refused/reset/aborted and timeouts:
/// the server is starting up, restarting, or died mid-exchange) and
/// `503` responses (load shedding or an unready fleet), pausing at
/// least the server's `Retry-After` hint — clamped to the policy's
/// per-pause cap, schedule-paced, no wall clock. Any other HTTP
/// response is an answer and is returned as-is; exhaustion surfaces the
/// last transport error or the last `503`.
pub fn http_request_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &varbench_core::retry::RetryPolicy,
) -> std::io::Result<(u16, String)> {
    let mut attempt = 0u32;
    loop {
        match http_request_raw(addr, method, path, body) {
            Ok(resp) if resp.status == 503 => match policy.backoff_after(attempt) {
                Some(pause) => {
                    let hinted =
                        Duration::from_secs(resp.retry_after.unwrap_or(0)).min(policy.max_pause());
                    std::thread::sleep(pause.max(hinted));
                    attempt += 1;
                }
                None => return Ok((resp.status, resp.body)),
            },
            Ok(resp) => return Ok((resp.status, resp.body)),
            Err(e) => {
                let transient = matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused
                        | std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::Interrupted
                );
                match policy.backoff_after(attempt) {
                    Some(pause) if transient => std::thread::sleep(pause),
                    _ => return Err(e),
                }
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
fn parse_response(raw: &[u8]) -> Option<(u16, String)> {
    let head_end = find_head_end(raw)?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    let body = String::from_utf8(raw[head_end + 4..].to_vec()).ok()?;
    Some((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::json_envelope;

    fn state() -> ServeState {
        ServeState::new(RunContext::serial_cached())
    }

    #[test]
    fn route_serves_discovery_endpoints() {
        let s = state();
        let (status, body) = route(&s, "GET", "/health", "");
        assert_eq!((status, body.as_str()), (200, "{\"ok\":true}\n"));

        let (status, body) = route(&s, "GET", "/v1/workloads", "");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).expect("workloads body is valid JSON");
        let items = doc.get("workloads").and_then(Json::as_array).unwrap();
        assert_eq!(items.len(), 7);
        assert!(items
            .iter()
            .any(|w| w.get("name").and_then(Json::as_str) == Some("synthetic-ridge")));

        let (status, body) = route(&s, "GET", "/v1/artifacts", "");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).expect("artifacts body is valid JSON");
        let items = doc.get("artifacts").and_then(Json::as_array).unwrap();
        assert_eq!(items.len(), registry::all().len());

        let (status, body) = route(&s, "GET", "/v1/cache/stats", "");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).expect("stats body is valid JSON");
        assert_eq!(doc.get("full_hits").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("coalesced").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn route_maps_errors_to_statuses() {
        let s = state();
        assert_eq!(route(&s, "GET", "/nope", "").0, 404);
        assert_eq!(route(&s, "POST", "/health", "").0, 405);
        assert_eq!(route(&s, "GET", "/v1/run", "").0, 405);
        let (status, body) = route(&s, "POST", "/v1/run", "{not json");
        assert_eq!(status, 400);
        assert!(body.contains("invalid JSON"), "{body}");
        let (status, body) = route(&s, "POST", "/v1/run", "");
        assert_eq!(status, 400);
        assert!(body.contains("JSON object"), "{body}");
        let (status, body) = route(&s, "POST", "/v1/study", r#"{"workload":"nope"}"#);
        assert_eq!(status, 400);
        assert!(body.contains("unknown workload"), "{body}");
    }

    #[test]
    fn route_run_matches_cli_bytes_and_reuses_the_cache() {
        let s = state();
        let (status, body) = route(
            &s,
            "POST",
            "/v1/run",
            r#"{"artifacts":["workload-synth"],"effort":"test"}"#,
        );
        assert_eq!(status, 200);
        let spec = registry::find("workload-synth").unwrap();
        let report = spec.run(Effort::Test, &RunContext::serial());
        let expect = json_envelope(Effort::Test, &[report.to_json()]) + "\n";
        assert_eq!(body, expect, "serve response == CLI --json stdout");

        let computed = s.ctx().cache().stats().rows_computed;
        assert!(computed > 0, "cold request computed the matrices");
        // Same request again: answered entirely from the shared cache.
        let (status, warm) = route(
            &s,
            "POST",
            "/v1/run",
            r#"{"artifacts":["workload-synth"],"effort":"test"}"#,
        );
        assert_eq!(status, 200);
        assert_eq!(warm, body, "warm response is bit-identical");
        assert_eq!(
            s.ctx().cache().stats().rows_computed,
            computed,
            "warm request computed nothing new"
        );
    }

    #[test]
    fn server_round_trips_over_a_real_socket() {
        let server = Server::bind("127.0.0.1:0", state()).expect("bind loopback");
        let addr = server.local_addr().expect("bound addr");
        let handle = std::thread::spawn(move || server.run());

        let (status, body) = http_request(addr, "GET", "/health", None).unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"ok\":true}\n"));

        let study = r#"{"workload":"synthetic-ridge","effort":"test","seeds":3}"#;
        let (status, body) = http_request(addr, "POST", "/v1/study", Some(study)).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(
            body.starts_with("{\"schema\":\"varbench-report/1\""),
            "{body}"
        );
        assert!(body.ends_with('\n'));

        let (status, _) = http_request(addr, "GET", "/bogus", None).unwrap();
        assert_eq!(status, 404);

        let (status, body) = http_request(addr, "POST", "/v1/shutdown", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("shutting_down"), "{body}");
        handle
            .join()
            .expect("server thread exits cleanly")
            .expect("accept loop exits without io error");
    }

    #[test]
    fn request_line_parser_names_each_failure() {
        let err = parse_request_line("").unwrap_err();
        assert!(err.contains("empty request line"), "{err}");

        let err = parse_request_line("GET").unwrap_err();
        assert!(err.contains("expected `METHOD PATH VERSION`"), "{err}");

        let err = parse_request_line("GET /health").unwrap_err();
        assert!(err.contains("expected `METHOD PATH VERSION`"), "{err}");

        let err = parse_request_line("BLARGH blargh blargh").unwrap_err();
        assert!(err.contains("unsupported protocol version"), "{err}");

        let err = parse_request_line("GET /health HTTP/2").unwrap_err();
        assert!(err.contains("unsupported protocol version"), "{err}");

        let ok = parse_request_line("POST /v1/study HTTP/1.1").unwrap();
        assert_eq!(ok, ("POST".to_string(), "/v1/study".to_string(), true));
        let ok = parse_request_line("GET /health HTTP/1.0").unwrap();
        assert!(!ok.2, "HTTP/1.0 is accepted but not 1.1");
    }

    #[test]
    fn full_queue_sheds_connections_with_503() {
        // One handler, rendezvous queue: a connection is either handed
        // to the idle handler immediately or shed.
        let server = Server::bind("127.0.0.1:0", state())
            .expect("bind loopback")
            .with_pool(1, 0);
        let addr = server.local_addr().expect("bound addr");
        let handle = std::thread::spawn(move || server.run());

        // Prove the pipeline works (retrying: right after startup the
        // handler may not have reached the queue yet, shedding the
        // probe), then give the handler time to return to the queue.
        loop {
            let (status, _) = http_request(addr, "GET", "/health", None).unwrap();
            if status == 200 {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        std::thread::sleep(Duration::from_millis(200));

        // Occupy the single handler with a half-sent request: it
        // blocks reading the head, holding the only handler slot.
        let mut hog = TcpStream::connect(addr).unwrap();
        hog.write_all(b"GET /health HTTP/1.1\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(200));

        // The next connection finds no idle handler and no queue room.
        let (status, body) = http_request(addr, "GET", "/health", None).unwrap();
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("at capacity"), "{body}");

        // Releasing the hog frees the handler; service resumes.
        drop(hog);
        std::thread::sleep(Duration::from_millis(200));
        let (status, _) = http_request(addr, "GET", "/health", None).unwrap();
        assert_eq!(status, 200);
        // A rendezvous queue can shed even the shutdown request (the
        // handler may not be back on the queue yet): retry until acked.
        loop {
            let (status, _) = http_request(addr, "POST", "/v1/shutdown", None).unwrap();
            if status == 200 {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn retry_transport_exhausts_on_dead_addr_and_passes_responses_through() {
        use varbench_core::retry::RetryPolicy;

        // Dead address: retries, exhausts the budget, surfaces the
        // last transport error.
        let dead = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
            // listener dropped: nothing is bound here any more
        };
        let policy = RetryPolicy::new(3).initial_backoff(Duration::from_millis(1));
        let err = http_request_retry(dead, "GET", "/health", None, &policy).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);

        // A live server's responses — including error statuses — pass
        // through without burning retry attempts on them.
        let server = Server::bind("127.0.0.1:0", state()).expect("bind loopback");
        let addr = server.local_addr().expect("bound addr");
        let handle = std::thread::spawn(move || server.run());
        let policy = RetryPolicy::new(5).initial_backoff(Duration::from_millis(1));
        let (status, _) = http_request_retry(addr, "GET", "/health", None, &policy).unwrap();
        assert_eq!(status, 200);
        let (status, _) = http_request_retry(addr, "GET", "/bogus", None, &policy).unwrap();
        assert_eq!(status, 404, "HTTP errors are answers, not outages");
        let _ = http_request(addr, "POST", "/v1/shutdown", None).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let server = Server::bind("127.0.0.1:0", state()).expect("bind loopback");
        let addr = server.local_addr().expect("bound addr");
        let handle = std::thread::spawn(move || server.run());

        let mut client = HttpClient::connect(addr).expect("connect");
        let baseline = http_request(addr, "GET", "/health", None).unwrap();
        for _ in 0..5 {
            let (status, body) = client.request("GET", "/health", None).unwrap();
            assert_eq!((status, body), baseline, "keep-alive bytes == one-shot");
        }
        // Mixed methods and bodies frame correctly back to back.
        let study = r#"{"workload":"synthetic-ridge","effort":"test","seeds":3}"#;
        let (status, first) = client.request("POST", "/v1/study", Some(study)).unwrap();
        assert_eq!(status, 200, "{first}");
        let (_, second) = client.request("POST", "/v1/study", Some(study)).unwrap();
        assert_eq!(second, first, "warm keep-alive replay is byte-identical");
        drop(client);

        let _ = http_request(addr, "POST", "/v1/shutdown", None).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn ready_reflects_fleet_health() {
        // No fleet: always ready.
        let s = state();
        let (status, body) = route(&s, "GET", "/v1/ready", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"fleet\":null"), "{body}");

        // A fleet whose only worker dies on arrival quarantines; ready
        // flips to 503 once no slot is live.
        #[cfg(unix)]
        {
            use crate::supervisor::SupervisorConfig;
            use varbench_core::retry::RetryPolicy;
            let dir = std::env::temp_dir().join(format!("varbench-ready-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let mut cfg = SupervisorConfig::new(&dir, 1);
            cfg.argv = Some(vec!["/bin/sh".into(), "-c".into(), "exit 1".into()]);
            cfg.respawn = RetryPolicy::new(1);
            cfg.poll = Duration::from_millis(5);
            let s = state().with_fleet(Supervisor::start(cfg).unwrap());
            let mut last = (0, String::new());
            for _ in 0..500 {
                last = route(&s, "GET", "/v1/ready", "");
                if last.0 == 503 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            assert_eq!(last.0, 503, "{}", last.1);
            assert!(last.1.contains("\"ready\":false"), "{}", last.1);
            assert!(last.1.contains("\"quarantined\":1"), "{}", last.1);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn dispatched_study_without_a_fleet_falls_back_and_matches_plain_bytes() {
        use varbench_core::exec::Runner;
        use varbench_pipeline::MeasureCache;
        let dir = std::env::temp_dir().join(format!("varbench-dispatch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = RunContext::new(Runner::serial(), MeasureCache::with_dir(&dir));
        let s = ServeState::new(ctx)
            .with_dispatch_tuning(Duration::from_millis(100), Duration::from_millis(50));
        let req = r#"{"workload":"synthetic-ridge","effort":"test","seeds":3,"dispatch":true}"#;
        let (status, served) = route(&s, "POST", "/v1/study", req);
        assert_eq!(status, 200, "{served}");
        // Same study, no dispatch, fresh in-memory state: identical bytes.
        let plain_req = r#"{"workload":"synthetic-ridge","effort":"test","seeds":3}"#;
        let (_, plain) = route(&state(), "POST", "/v1/study", plain_req);
        assert_eq!(served, plain, "dispatch fallback == in-process bytes");
        assert!(
            varbench_pipeline::lease::scan_queue(&dir).is_empty(),
            "leftover jobs cancelled"
        );
        let _ = std::fs::remove_dir_all(&dir);

        // Dispatch against a memory-only cache is a client error, not a
        // hang: there is no queue directory a fleet could watch.
        let (status, body) = route(&state(), "POST", "/v1/study", req);
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("disk-backed cache"), "{body}");
    }

    #[test]
    fn malformed_requests_get_4xx_not_hangs() {
        let server = Server::bind("127.0.0.1:0", state()).expect("bind loopback");
        let addr = server.local_addr().expect("bound addr");
        let handle = std::thread::spawn(move || server.run());

        // Garbage request line.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"BLARGH\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        let (status, _) = parse_response(&raw).expect("well-formed error response");
        assert_eq!(status, 400);

        // Connection dropped before the head completes.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /health HTTP/1.1\r\n").unwrap();
        drop(s);

        // Server still answers afterwards.
        let (status, _) = http_request(addr, "GET", "/health", None).unwrap();
        assert_eq!(status, 200);
        let _ = http_request(addr, "POST", "/v1/shutdown", None).unwrap();
        handle.join().unwrap().unwrap();
    }
}
