//! `varbench serve` — a std-only HTTP/1.1 + JSON study server over the
//! shared measurement cache.
//!
//! The paper's score matrices are community infrastructure: queried far
//! more often than they are computed. This module turns the one-shot CLI
//! into a long-running service — a bounded pool of handler threads fed
//! by a fixed-capacity accept queue, where every request runs against
//! **one** [`RunContext`], so the `MeasureCache` answers warm requests
//! instantly from memory or disk, schedules only the missing matrix
//! delta for cold ones, and coalesces concurrent identical requests
//! into a single computation.
//!
//! When every handler is busy and the queue is full, new connections
//! are **shed** with `503 Service Unavailable` instead of being read:
//! the listener stays responsive under overload, and clients retry
//! with backoff ([`http_request_retry`] is the matching transport).
//!
//! # Endpoints
//!
//! | method & path | body | answers |
//! |---|---|---|
//! | `GET /health` | — | liveness probe |
//! | `GET /v1/workloads` | — | registered workload names + sources |
//! | `GET /v1/artifacts` | — | registry artifact names |
//! | `GET /v1/cache/stats` | — | cache hit/miss/coalescing counters |
//! | `POST /v1/run` | [`RunRequest`] | `varbench-report/1` envelope |
//! | `POST /v1/study` | [`StudyRequest`] | `varbench-report/1` envelope |
//! | `POST /v1/shutdown` | — | acks, then stops accepting |
//!
//! Every response is `Connection: close` JSON. Report responses are
//! **byte-identical** to the equivalent offline CLI invocation
//! (`varbench run ... --json` / `varbench study ... --json`): the
//! protocol layer shares the CLI's envelope and builders, and the cache
//! guarantees cached == uncached bytes, so where a value is computed —
//! this process, an earlier process, another thread — never shows in
//! the response.
//!
//! The server reads no wall clock (socket timeouts are plain
//! `Duration`s); it is deterministic in its inputs like everything else
//! in the workspace.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::args::Effort;
use crate::protocol::{RunRequest, StudyRequest};
use crate::registry;
use crate::workloads;
use varbench_core::ctx::RunContext;
use varbench_core::json::Json;
use varbench_core::report::json_string;

/// Per-connection socket timeout (read and write). Generous: a cold
/// `--full` study computes for a while before the response starts.
const IO_TIMEOUT: Duration = Duration::from_secs(600);

/// Maximum accepted request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;

/// Maximum accepted request body.
const MAX_BODY: usize = 1024 * 1024;

/// Default handler-pool size.
pub const DEFAULT_HANDLERS: usize = 8;

/// Default accept-queue capacity (connections waiting for a handler
/// beyond the ones being served; past this, connections are shed).
pub const DEFAULT_QUEUE: usize = 32;

/// Shared server state: the one execution context every request runs
/// against. Sharing the context is the entire point — it is what makes
/// request N answerable from the matrices requests 1..N-1 computed.
pub struct ServeState {
    ctx: RunContext,
}

impl ServeState {
    /// Wraps an execution context for serving.
    pub fn new(ctx: RunContext) -> ServeState {
        ServeState { ctx }
    }

    /// The shared execution context.
    pub fn ctx(&self) -> &RunContext {
        &self.ctx
    }
}

/// Dispatches one parsed request to its handler — the pure core of the
/// server (no sockets), so tests and benches drive it directly.
/// Returns `(status, body)`; bodies are JSON and newline-terminated.
pub fn route(state: &ServeState, method: &str, path: &str, body: &str) -> (u16, String) {
    match (method, path) {
        ("GET", "/health") => (200, "{\"ok\":true}\n".into()),
        ("GET", "/v1/workloads") => (200, workloads_body()),
        ("GET", "/v1/artifacts") => (200, artifacts_body()),
        ("GET", "/v1/cache/stats") => (200, cache_stats_body(state)),
        ("POST", "/v1/run") => match parse_body(body).and_then(|doc| RunRequest::from_json(&doc)) {
            Ok(req) => (200, req.run(state.ctx())),
            Err(e) => (400, error_body(&e)),
        },
        ("POST", "/v1/study") => {
            match parse_body(body).and_then(|doc| StudyRequest::from_json(&doc)) {
                Ok(req) => match req.run_json(state.ctx()) {
                    Ok(body) => (200, body),
                    Err(e) => (400, error_body(&e)),
                },
                Err(e) => (400, error_body(&e)),
            }
        }
        ("POST", "/v1/shutdown") => (200, "{\"ok\":true,\"shutting_down\":true}\n".into()),
        // Known path, wrong method → 405; anything else → 404.
        (_, "/health" | "/v1/workloads" | "/v1/artifacts" | "/v1/cache/stats") => {
            (405, error_body("use GET for this endpoint"))
        }
        (_, "/v1/run" | "/v1/study" | "/v1/shutdown") => {
            (405, error_body("use POST for this endpoint"))
        }
        _ => (404, error_body(&format!("no such endpoint: {path}"))),
    }
}

fn parse_body(body: &str) -> Result<Json, String> {
    if body.trim().is_empty() {
        return Err("request body must be a JSON object".into());
    }
    Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))
}

fn error_body(message: &str) -> String {
    format!("{{\"error\":{}}}\n", json_string(message))
}

fn workloads_body() -> String {
    let items: Vec<String> = workloads::all(Effort::Quick.scale())
        .iter()
        .map(|w| {
            let sources: Vec<String> = w
                .active_sources()
                .iter()
                .map(|s| json_string(s.label()))
                .collect();
            format!(
                "{{\"name\":{},\"metric\":{},\"sources\":[{}]}}",
                json_string(w.name()),
                json_string(w.metric_name()),
                sources.join(",")
            )
        })
        .collect();
    format!("{{\"workloads\":[{}]}}\n", items.join(","))
}

fn artifacts_body() -> String {
    let items: Vec<String> = registry::all()
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":{},\"title\":{},\"description\":{}}}",
                json_string(s.name),
                json_string(s.title),
                json_string(s.description)
            )
        })
        .collect();
    format!("{{\"artifacts\":[{}]}}\n", items.join(","))
}

fn cache_stats_body(state: &ServeState) -> String {
    let s = state.ctx().cache().stats();
    format!(
        "{{\"full_hits\":{},\"extensions\":{},\"misses\":{},\"rows_computed\":{},\
         \"rows_served\":{},\"records_computed\":{},\"records_served\":{},\
         \"record_fits_computed\":{},\"disk_loads\":{},\"coalesced\":{},\
         \"persistent\":{}}}\n",
        s.full_hits,
        s.extensions,
        s.misses,
        s.rows_computed,
        s.rows_served,
        s.records_computed,
        s.records_served,
        s.record_fits_computed,
        s.disk_loads,
        s.coalesced,
        state.ctx().cache().is_persistent(),
    )
}

struct Request {
    method: String,
    path: String,
    body: String,
}

/// Reads and parses one HTTP/1.x request. Errors map to a ready-to-send
/// `(status, body)` pair.
fn read_request(stream: &mut TcpStream) -> Result<Request, (u16, String)> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > MAX_HEAD {
            return Err((413, error_body("request head too large")));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err((400, error_body("connection closed mid-request"))),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err((408, error_body(&format!("read failed: {e}")))),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| (400, error_body("request head is not UTF-8")))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let (method, path) = parse_request_line(request_line)
        .map_err(|e| (400, error_body(&format!("malformed request line: {e}"))))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| (400, error_body("bad Content-Length")))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err((413, error_body("request body too large")));
    }
    let mut body_bytes = buf[head_end + 4..].to_vec();
    while body_bytes.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err((400, error_body("connection closed mid-body"))),
            Ok(n) => body_bytes.extend_from_slice(&chunk[..n]),
            Err(e) => return Err((408, error_body(&format!("read failed: {e}")))),
        }
    }
    body_bytes.truncate(content_length);
    let body = String::from_utf8(body_bytes)
        .map_err(|_| (400, error_body("request body is not UTF-8")))?;
    Ok(Request { method, path, body })
}

/// Parses an HTTP/1.x request line into `(method, path)`. Pure, so the
/// error taxonomy — empty line, too few tokens, wrong protocol — is
/// unit-testable without a socket. Every failure maps to a 400.
fn parse_request_line(line: &str) -> Result<(String, String), String> {
    let mut parts = line.split_whitespace();
    let Some(method) = parts.next() else {
        return Err("empty request line".into());
    };
    let (Some(path), Some(version)) = (parts.next(), parts.next()) else {
        return Err(format!("expected `METHOD PATH VERSION`, got {line:?}"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol version {version:?}"));
    }
    Ok((method.to_string(), path.to_string()))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn render_response(status: u16, body: &str) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Serves one connection; returns whether it was an acknowledged
/// shutdown request.
fn handle_connection(mut stream: TcpStream, state: &ServeState) -> bool {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let (status, body, shutdown) = match read_request(&mut stream) {
        Ok(req) => {
            // A panicking handler (a bug, or a workload assert) must kill
            // one response, not the server.
            let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                route(state, &req.method, &req.path, &req.body)
            }));
            let (status, body) = routed
                .unwrap_or_else(|_| (500, error_body("internal error: request handler panicked")));
            let is_shutdown = status == 200 && req.method == "POST" && req.path == "/v1/shutdown";
            (status, body, is_shutdown)
        }
        Err((status, body)) => (status, body, false),
    };
    let _ = stream.write_all(render_response(status, &body).as_bytes());
    let _ = stream.flush();
    shutdown
}

/// Rejects a connection at the accept gate without reading it: the
/// queue is full, so the client gets an immediate `503` and the
/// listener moves on. Shedding is what keeps the server answering
/// health checks while a burst drains.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let body = error_body("server at capacity; retry with backoff");
    let _ = stream.write_all(render_response(503, &body).as_bytes());
    let _ = stream.flush();
    // Drain whatever the client already sent before closing: dropping
    // a socket with unread bytes in its receive buffer turns the close
    // into an RST, which can destroy the 503 on its way out.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    handlers: usize,
    queue: usize,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, or port `0` for an
    /// OS-assigned one) with the default pool shape (8 handlers, a
    /// queue of 32 waiting connections).
    pub fn bind(addr: &str, state: ServeState) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(state),
            handlers: DEFAULT_HANDLERS,
            queue: DEFAULT_QUEUE,
        })
    }

    /// Overrides the pool shape: `handlers` concurrent request threads
    /// (clamped to at least 1) fed by a queue holding up to `queue`
    /// waiting connections. `queue = 0` is a rendezvous: a connection
    /// is either handed to an idle handler immediately or shed.
    pub fn with_pool(mut self, handlers: usize, queue: usize) -> Server {
        self.handlers = handlers.max(1);
        self.queue = queue;
        self
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until a `POST /v1/shutdown` is acknowledged,
    /// dispatching each to the handler pool — or shedding it with a
    /// `503` when the pool and queue are both full — then drains
    /// queued and in-flight requests and returns.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(self.queue);
        let rx = Arc::new(std::sync::Mutex::new(rx));
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::with_capacity(self.handlers);
        for _ in 0..self.handlers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            let shutdown_flag = Arc::clone(&shutdown);
            workers.push(std::thread::spawn(move || loop {
                // Hold the lock only to dequeue, never while handling,
                // so the other handlers keep draining the queue.
                let next = { rx.lock().expect("accept queue lock").recv() };
                let Ok(stream) = next else { break };
                if handle_connection(stream, &state) {
                    shutdown_flag.store(true, Ordering::SeqCst);
                    // Poke the accept loop so it observes the flag; the
                    // poke connection is accepted and dropped unserved.
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        for conn in self.listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(std::sync::mpsc::TrySendError::Full(stream)) => shed(stream),
                Err(std::sync::mpsc::TrySendError::Disconnected(_)) => break,
            }
        }
        // Closing the sender lets each handler finish its queue drain
        // and fall out of `recv()`.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// A minimal std-only HTTP/1.1 client for one request/response exchange
/// (`Connection: close`) — the `varbench query` transport, the CI smoke
/// test's curl replacement, and the serve bench driver.
///
/// `body = None` sends a bare request (GET-style); `Some` posts it.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.flush()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    parse_response(&response)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// [`http_request`] with bounded retry under `policy`'s backoff
/// schedule — the `varbench query --retries` transport. Only
/// *transport* failures are retried (connection refused/reset/aborted
/// and timeouts: the server is starting up, restarting, or shedding
/// load); any HTTP response — including 4xx/5xx — is an answer and is
/// returned as-is. After the attempt budget is exhausted the last
/// transport error is returned.
pub fn http_request_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &varbench_core::retry::RetryPolicy,
) -> std::io::Result<(u16, String)> {
    let mut attempt = 0u32;
    loop {
        match http_request(addr, method, path, body) {
            Ok(resp) => return Ok(resp),
            Err(e) => {
                let transient = matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused
                        | std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::Interrupted
                );
                match policy.backoff_after(attempt) {
                    Some(pause) if transient => std::thread::sleep(pause),
                    _ => return Err(e),
                }
                attempt += 1;
            }
        }
    }
}

fn parse_response(raw: &[u8]) -> Option<(u16, String)> {
    let head_end = find_head_end(raw)?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    let body = String::from_utf8(raw[head_end + 4..].to_vec()).ok()?;
    Some((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::json_envelope;

    fn state() -> ServeState {
        ServeState::new(RunContext::serial_cached())
    }

    #[test]
    fn route_serves_discovery_endpoints() {
        let s = state();
        let (status, body) = route(&s, "GET", "/health", "");
        assert_eq!((status, body.as_str()), (200, "{\"ok\":true}\n"));

        let (status, body) = route(&s, "GET", "/v1/workloads", "");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).expect("workloads body is valid JSON");
        let items = doc.get("workloads").and_then(Json::as_array).unwrap();
        assert_eq!(items.len(), 7);
        assert!(items
            .iter()
            .any(|w| w.get("name").and_then(Json::as_str) == Some("synthetic-ridge")));

        let (status, body) = route(&s, "GET", "/v1/artifacts", "");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).expect("artifacts body is valid JSON");
        let items = doc.get("artifacts").and_then(Json::as_array).unwrap();
        assert_eq!(items.len(), registry::all().len());

        let (status, body) = route(&s, "GET", "/v1/cache/stats", "");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).expect("stats body is valid JSON");
        assert_eq!(doc.get("full_hits").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("coalesced").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn route_maps_errors_to_statuses() {
        let s = state();
        assert_eq!(route(&s, "GET", "/nope", "").0, 404);
        assert_eq!(route(&s, "POST", "/health", "").0, 405);
        assert_eq!(route(&s, "GET", "/v1/run", "").0, 405);
        let (status, body) = route(&s, "POST", "/v1/run", "{not json");
        assert_eq!(status, 400);
        assert!(body.contains("invalid JSON"), "{body}");
        let (status, body) = route(&s, "POST", "/v1/run", "");
        assert_eq!(status, 400);
        assert!(body.contains("JSON object"), "{body}");
        let (status, body) = route(&s, "POST", "/v1/study", r#"{"workload":"nope"}"#);
        assert_eq!(status, 400);
        assert!(body.contains("unknown workload"), "{body}");
    }

    #[test]
    fn route_run_matches_cli_bytes_and_reuses_the_cache() {
        let s = state();
        let (status, body) = route(
            &s,
            "POST",
            "/v1/run",
            r#"{"artifacts":["workload-synth"],"effort":"test"}"#,
        );
        assert_eq!(status, 200);
        let spec = registry::find("workload-synth").unwrap();
        let report = spec.run(Effort::Test, &RunContext::serial());
        let expect = json_envelope(Effort::Test, &[report.to_json()]) + "\n";
        assert_eq!(body, expect, "serve response == CLI --json stdout");

        let computed = s.ctx().cache().stats().rows_computed;
        assert!(computed > 0, "cold request computed the matrices");
        // Same request again: answered entirely from the shared cache.
        let (status, warm) = route(
            &s,
            "POST",
            "/v1/run",
            r#"{"artifacts":["workload-synth"],"effort":"test"}"#,
        );
        assert_eq!(status, 200);
        assert_eq!(warm, body, "warm response is bit-identical");
        assert_eq!(
            s.ctx().cache().stats().rows_computed,
            computed,
            "warm request computed nothing new"
        );
    }

    #[test]
    fn server_round_trips_over_a_real_socket() {
        let server = Server::bind("127.0.0.1:0", state()).expect("bind loopback");
        let addr = server.local_addr().expect("bound addr");
        let handle = std::thread::spawn(move || server.run());

        let (status, body) = http_request(addr, "GET", "/health", None).unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"ok\":true}\n"));

        let study = r#"{"workload":"synthetic-ridge","effort":"test","seeds":3}"#;
        let (status, body) = http_request(addr, "POST", "/v1/study", Some(study)).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(
            body.starts_with("{\"schema\":\"varbench-report/1\""),
            "{body}"
        );
        assert!(body.ends_with('\n'));

        let (status, _) = http_request(addr, "GET", "/bogus", None).unwrap();
        assert_eq!(status, 404);

        let (status, body) = http_request(addr, "POST", "/v1/shutdown", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("shutting_down"), "{body}");
        handle
            .join()
            .expect("server thread exits cleanly")
            .expect("accept loop exits without io error");
    }

    #[test]
    fn request_line_parser_names_each_failure() {
        let err = parse_request_line("").unwrap_err();
        assert!(err.contains("empty request line"), "{err}");

        let err = parse_request_line("GET").unwrap_err();
        assert!(err.contains("expected `METHOD PATH VERSION`"), "{err}");

        let err = parse_request_line("GET /health").unwrap_err();
        assert!(err.contains("expected `METHOD PATH VERSION`"), "{err}");

        let err = parse_request_line("BLARGH blargh blargh").unwrap_err();
        assert!(err.contains("unsupported protocol version"), "{err}");

        let err = parse_request_line("GET /health HTTP/2").unwrap_err();
        assert!(err.contains("unsupported protocol version"), "{err}");

        let ok = parse_request_line("POST /v1/study HTTP/1.1").unwrap();
        assert_eq!(ok, ("POST".to_string(), "/v1/study".to_string()));
    }

    #[test]
    fn full_queue_sheds_connections_with_503() {
        // One handler, rendezvous queue: a connection is either handed
        // to the idle handler immediately or shed.
        let server = Server::bind("127.0.0.1:0", state())
            .expect("bind loopback")
            .with_pool(1, 0);
        let addr = server.local_addr().expect("bound addr");
        let handle = std::thread::spawn(move || server.run());

        // Prove the pipeline works (retrying: right after startup the
        // handler may not have reached the queue yet, shedding the
        // probe), then give the handler time to return to the queue.
        loop {
            let (status, _) = http_request(addr, "GET", "/health", None).unwrap();
            if status == 200 {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        std::thread::sleep(Duration::from_millis(200));

        // Occupy the single handler with a half-sent request: it
        // blocks reading the head, holding the only handler slot.
        let mut hog = TcpStream::connect(addr).unwrap();
        hog.write_all(b"GET /health HTTP/1.1\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(200));

        // The next connection finds no idle handler and no queue room.
        let (status, body) = http_request(addr, "GET", "/health", None).unwrap();
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("at capacity"), "{body}");

        // Releasing the hog frees the handler; service resumes.
        drop(hog);
        std::thread::sleep(Duration::from_millis(200));
        let (status, _) = http_request(addr, "GET", "/health", None).unwrap();
        assert_eq!(status, 200);
        // A rendezvous queue can shed even the shutdown request (the
        // handler may not be back on the queue yet): retry until acked.
        loop {
            let (status, _) = http_request(addr, "POST", "/v1/shutdown", None).unwrap();
            if status == 200 {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn retry_transport_exhausts_on_dead_addr_and_passes_responses_through() {
        use varbench_core::retry::RetryPolicy;

        // Dead address: retries, exhausts the budget, surfaces the
        // last transport error.
        let dead = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
            // listener dropped: nothing is bound here any more
        };
        let policy = RetryPolicy::new(3).initial_backoff(Duration::from_millis(1));
        let err = http_request_retry(dead, "GET", "/health", None, &policy).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);

        // A live server's responses — including error statuses — pass
        // through without burning retry attempts on them.
        let server = Server::bind("127.0.0.1:0", state()).expect("bind loopback");
        let addr = server.local_addr().expect("bound addr");
        let handle = std::thread::spawn(move || server.run());
        let policy = RetryPolicy::new(5).initial_backoff(Duration::from_millis(1));
        let (status, _) = http_request_retry(addr, "GET", "/health", None, &policy).unwrap();
        assert_eq!(status, 200);
        let (status, _) = http_request_retry(addr, "GET", "/bogus", None, &policy).unwrap();
        assert_eq!(status, 404, "HTTP errors are answers, not outages");
        let _ = http_request(addr, "POST", "/v1/shutdown", None).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_requests_get_4xx_not_hangs() {
        let server = Server::bind("127.0.0.1:0", state()).expect("bind loopback");
        let addr = server.local_addr().expect("bound addr");
        let handle = std::thread::spawn(move || server.run());

        // Garbage request line.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"BLARGH\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        let (status, _) = parse_response(&raw).expect("well-formed error response");
        assert_eq!(status, 400);

        // Connection dropped before the head completes.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /health HTTP/1.1\r\n").unwrap();
        drop(s);

        // Server still answers afterwards.
        let (status, _) = http_request(addr, "GET", "/health", None).unwrap();
        assert_eq!(status, 200);
        let _ = http_request(addr, "POST", "/v1/shutdown", None).unwrap();
        handle.join().unwrap().unwrap();
    }
}
