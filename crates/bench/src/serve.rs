//! `varbench serve` — a std-only HTTP/1.1 + JSON study server over the
//! shared measurement cache.
//!
//! The paper's score matrices are community infrastructure: queried far
//! more often than they are computed. This module turns the one-shot CLI
//! into a long-running service — a thread-per-connection loop where
//! every request runs against **one** [`RunContext`], so the
//! `MeasureCache` answers warm requests instantly from memory or disk,
//! schedules only the missing matrix delta for cold ones, and coalesces
//! concurrent identical requests into a single computation.
//!
//! # Endpoints
//!
//! | method & path | body | answers |
//! |---|---|---|
//! | `GET /health` | — | liveness probe |
//! | `GET /v1/workloads` | — | registered workload names + sources |
//! | `GET /v1/artifacts` | — | registry artifact names |
//! | `GET /v1/cache/stats` | — | cache hit/miss/coalescing counters |
//! | `POST /v1/run` | [`RunRequest`] | `varbench-report/1` envelope |
//! | `POST /v1/study` | [`StudyRequest`] | `varbench-report/1` envelope |
//! | `POST /v1/shutdown` | — | acks, then stops accepting |
//!
//! Every response is `Connection: close` JSON. Report responses are
//! **byte-identical** to the equivalent offline CLI invocation
//! (`varbench run ... --json` / `varbench study ... --json`): the
//! protocol layer shares the CLI's envelope and builders, and the cache
//! guarantees cached == uncached bytes, so where a value is computed —
//! this process, an earlier process, another thread — never shows in
//! the response.
//!
//! The server reads no wall clock (socket timeouts are plain
//! `Duration`s); it is deterministic in its inputs like everything else
//! in the workspace.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::args::Effort;
use crate::protocol::{RunRequest, StudyRequest};
use crate::registry;
use crate::workloads;
use varbench_core::ctx::RunContext;
use varbench_core::json::Json;
use varbench_core::report::json_string;

/// Per-connection socket timeout (read and write). Generous: a cold
/// `--full` study computes for a while before the response starts.
const IO_TIMEOUT: Duration = Duration::from_secs(600);

/// Maximum accepted request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;

/// Maximum accepted request body.
const MAX_BODY: usize = 1024 * 1024;

/// Shared server state: the one execution context every request runs
/// against. Sharing the context is the entire point — it is what makes
/// request N answerable from the matrices requests 1..N-1 computed.
pub struct ServeState {
    ctx: RunContext,
}

impl ServeState {
    /// Wraps an execution context for serving.
    pub fn new(ctx: RunContext) -> ServeState {
        ServeState { ctx }
    }

    /// The shared execution context.
    pub fn ctx(&self) -> &RunContext {
        &self.ctx
    }
}

/// Dispatches one parsed request to its handler — the pure core of the
/// server (no sockets), so tests and benches drive it directly.
/// Returns `(status, body)`; bodies are JSON and newline-terminated.
pub fn route(state: &ServeState, method: &str, path: &str, body: &str) -> (u16, String) {
    match (method, path) {
        ("GET", "/health") => (200, "{\"ok\":true}\n".into()),
        ("GET", "/v1/workloads") => (200, workloads_body()),
        ("GET", "/v1/artifacts") => (200, artifacts_body()),
        ("GET", "/v1/cache/stats") => (200, cache_stats_body(state)),
        ("POST", "/v1/run") => match parse_body(body).and_then(|doc| RunRequest::from_json(&doc)) {
            Ok(req) => (200, req.run(state.ctx())),
            Err(e) => (400, error_body(&e)),
        },
        ("POST", "/v1/study") => {
            match parse_body(body).and_then(|doc| StudyRequest::from_json(&doc)) {
                Ok(req) => match req.run_json(state.ctx()) {
                    Ok(body) => (200, body),
                    Err(e) => (400, error_body(&e)),
                },
                Err(e) => (400, error_body(&e)),
            }
        }
        ("POST", "/v1/shutdown") => (200, "{\"ok\":true,\"shutting_down\":true}\n".into()),
        // Known path, wrong method → 405; anything else → 404.
        (_, "/health" | "/v1/workloads" | "/v1/artifacts" | "/v1/cache/stats") => {
            (405, error_body("use GET for this endpoint"))
        }
        (_, "/v1/run" | "/v1/study" | "/v1/shutdown") => {
            (405, error_body("use POST for this endpoint"))
        }
        _ => (404, error_body(&format!("no such endpoint: {path}"))),
    }
}

fn parse_body(body: &str) -> Result<Json, String> {
    if body.trim().is_empty() {
        return Err("request body must be a JSON object".into());
    }
    Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))
}

fn error_body(message: &str) -> String {
    format!("{{\"error\":{}}}\n", json_string(message))
}

fn workloads_body() -> String {
    let items: Vec<String> = workloads::all(Effort::Quick.scale())
        .iter()
        .map(|w| {
            let sources: Vec<String> = w
                .active_sources()
                .iter()
                .map(|s| json_string(s.label()))
                .collect();
            format!(
                "{{\"name\":{},\"metric\":{},\"sources\":[{}]}}",
                json_string(w.name()),
                json_string(w.metric_name()),
                sources.join(",")
            )
        })
        .collect();
    format!("{{\"workloads\":[{}]}}\n", items.join(","))
}

fn artifacts_body() -> String {
    let items: Vec<String> = registry::all()
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":{},\"title\":{},\"description\":{}}}",
                json_string(s.name),
                json_string(s.title),
                json_string(s.description)
            )
        })
        .collect();
    format!("{{\"artifacts\":[{}]}}\n", items.join(","))
}

fn cache_stats_body(state: &ServeState) -> String {
    let s = state.ctx().cache().stats();
    format!(
        "{{\"full_hits\":{},\"extensions\":{},\"misses\":{},\"rows_computed\":{},\
         \"rows_served\":{},\"records_computed\":{},\"records_served\":{},\
         \"record_fits_computed\":{},\"disk_loads\":{},\"coalesced\":{},\
         \"persistent\":{}}}\n",
        s.full_hits,
        s.extensions,
        s.misses,
        s.rows_computed,
        s.rows_served,
        s.records_computed,
        s.records_served,
        s.record_fits_computed,
        s.disk_loads,
        s.coalesced,
        state.ctx().cache().is_persistent(),
    )
}

struct Request {
    method: String,
    path: String,
    body: String,
}

/// Reads and parses one HTTP/1.x request. Errors map to a ready-to-send
/// `(status, body)` pair.
fn read_request(stream: &mut TcpStream) -> Result<Request, (u16, String)> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > MAX_HEAD {
            return Err((413, error_body("request head too large")));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err((400, error_body("connection closed mid-request"))),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err((408, error_body(&format!("read failed: {e}")))),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| (400, error_body("request head is not UTF-8")))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = (
        parts.next().unwrap_or(""),
        parts.next().unwrap_or(""),
        parts.next().unwrap_or(""),
    );
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err((400, error_body("malformed request line")));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| (400, error_body("bad Content-Length")))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err((413, error_body("request body too large")));
    }
    let mut body_bytes = buf[head_end + 4..].to_vec();
    while body_bytes.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err((400, error_body("connection closed mid-body"))),
            Ok(n) => body_bytes.extend_from_slice(&chunk[..n]),
            Err(e) => return Err((408, error_body(&format!("read failed: {e}")))),
        }
    }
    body_bytes.truncate(content_length);
    let body = String::from_utf8(body_bytes)
        .map_err(|_| (400, error_body("request body is not UTF-8")))?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn render_response(status: u16, body: &str) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Serves one connection; returns whether it was an acknowledged
/// shutdown request.
fn handle_connection(mut stream: TcpStream, state: &ServeState) -> bool {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let (status, body, shutdown) = match read_request(&mut stream) {
        Ok(req) => {
            // A panicking handler (a bug, or a workload assert) must kill
            // one response, not the server.
            let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                route(state, &req.method, &req.path, &req.body)
            }));
            let (status, body) = routed
                .unwrap_or_else(|_| (500, error_body("internal error: request handler panicked")));
            let is_shutdown = status == 200 && req.method == "POST" && req.path == "/v1/shutdown";
            (status, body, is_shutdown)
        }
        Err((status, body)) => (status, body, false),
    };
    let _ = stream.write_all(render_response(status, &body).as_bytes());
    let _ = stream.flush();
    shutdown
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, or port `0` for an
    /// OS-assigned one).
    pub fn bind(addr: &str, state: ServeState) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(state),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until a `POST /v1/shutdown` is acknowledged,
    /// one handler thread per connection, then drains in-flight
    /// handlers and returns.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for conn in self.listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            workers.retain(|w| !w.is_finished());
            let state = Arc::clone(&self.state);
            let shutdown_flag = Arc::clone(&shutdown);
            workers.push(std::thread::spawn(move || {
                if handle_connection(stream, &state) {
                    shutdown_flag.store(true, Ordering::SeqCst);
                    // Poke the accept loop so it observes the flag; the
                    // poke connection is accepted and dropped unserved.
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// A minimal std-only HTTP/1.1 client for one request/response exchange
/// (`Connection: close`) — the `varbench query` transport, the CI smoke
/// test's curl replacement, and the serve bench driver.
///
/// `body = None` sends a bare request (GET-style); `Some` posts it.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.flush()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    parse_response(&response)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

fn parse_response(raw: &[u8]) -> Option<(u16, String)> {
    let head_end = find_head_end(raw)?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    let body = String::from_utf8(raw[head_end + 4..].to_vec()).ok()?;
    Some((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::json_envelope;

    fn state() -> ServeState {
        ServeState::new(RunContext::serial_cached())
    }

    #[test]
    fn route_serves_discovery_endpoints() {
        let s = state();
        let (status, body) = route(&s, "GET", "/health", "");
        assert_eq!((status, body.as_str()), (200, "{\"ok\":true}\n"));

        let (status, body) = route(&s, "GET", "/v1/workloads", "");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).expect("workloads body is valid JSON");
        let items = doc.get("workloads").and_then(Json::as_array).unwrap();
        assert_eq!(items.len(), 7);
        assert!(items
            .iter()
            .any(|w| w.get("name").and_then(Json::as_str) == Some("synthetic-ridge")));

        let (status, body) = route(&s, "GET", "/v1/artifacts", "");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).expect("artifacts body is valid JSON");
        let items = doc.get("artifacts").and_then(Json::as_array).unwrap();
        assert_eq!(items.len(), registry::all().len());

        let (status, body) = route(&s, "GET", "/v1/cache/stats", "");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).expect("stats body is valid JSON");
        assert_eq!(doc.get("full_hits").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("coalesced").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn route_maps_errors_to_statuses() {
        let s = state();
        assert_eq!(route(&s, "GET", "/nope", "").0, 404);
        assert_eq!(route(&s, "POST", "/health", "").0, 405);
        assert_eq!(route(&s, "GET", "/v1/run", "").0, 405);
        let (status, body) = route(&s, "POST", "/v1/run", "{not json");
        assert_eq!(status, 400);
        assert!(body.contains("invalid JSON"), "{body}");
        let (status, body) = route(&s, "POST", "/v1/run", "");
        assert_eq!(status, 400);
        assert!(body.contains("JSON object"), "{body}");
        let (status, body) = route(&s, "POST", "/v1/study", r#"{"workload":"nope"}"#);
        assert_eq!(status, 400);
        assert!(body.contains("unknown workload"), "{body}");
    }

    #[test]
    fn route_run_matches_cli_bytes_and_reuses_the_cache() {
        let s = state();
        let (status, body) = route(
            &s,
            "POST",
            "/v1/run",
            r#"{"artifacts":["workload-synth"],"effort":"test"}"#,
        );
        assert_eq!(status, 200);
        let spec = registry::find("workload-synth").unwrap();
        let report = spec.run(Effort::Test, &RunContext::serial());
        let expect = json_envelope(Effort::Test, &[report.to_json()]) + "\n";
        assert_eq!(body, expect, "serve response == CLI --json stdout");

        let computed = s.ctx().cache().stats().rows_computed;
        assert!(computed > 0, "cold request computed the matrices");
        // Same request again: answered entirely from the shared cache.
        let (status, warm) = route(
            &s,
            "POST",
            "/v1/run",
            r#"{"artifacts":["workload-synth"],"effort":"test"}"#,
        );
        assert_eq!(status, 200);
        assert_eq!(warm, body, "warm response is bit-identical");
        assert_eq!(
            s.ctx().cache().stats().rows_computed,
            computed,
            "warm request computed nothing new"
        );
    }

    #[test]
    fn server_round_trips_over_a_real_socket() {
        let server = Server::bind("127.0.0.1:0", state()).expect("bind loopback");
        let addr = server.local_addr().expect("bound addr");
        let handle = std::thread::spawn(move || server.run());

        let (status, body) = http_request(addr, "GET", "/health", None).unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"ok\":true}\n"));

        let study = r#"{"workload":"synthetic-ridge","effort":"test","seeds":3}"#;
        let (status, body) = http_request(addr, "POST", "/v1/study", Some(study)).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(
            body.starts_with("{\"schema\":\"varbench-report/1\""),
            "{body}"
        );
        assert!(body.ends_with('\n'));

        let (status, _) = http_request(addr, "GET", "/bogus", None).unwrap();
        assert_eq!(status, 404);

        let (status, body) = http_request(addr, "POST", "/v1/shutdown", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("shutting_down"), "{body}");
        handle
            .join()
            .expect("server thread exits cleanly")
            .expect("accept loop exits without io error");
    }

    #[test]
    fn malformed_requests_get_4xx_not_hangs() {
        let server = Server::bind("127.0.0.1:0", state()).expect("bind loopback");
        let addr = server.local_addr().expect("bound addr");
        let handle = std::thread::spawn(move || server.run());

        // Garbage request line.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"BLARGH\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        let (status, _) = parse_response(&raw).expect("well-formed error response");
        assert_eq!(status, 400);

        // Connection dropped before the head completes.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /health HTTP/1.1\r\n").unwrap();
        drop(s);

        // Server still answers afterwards.
        let (status, _) = http_request(addr, "GET", "/health", None).unwrap();
        assert_eq!(status, 200);
        let _ = http_request(addr, "POST", "/v1/shutdown", None).unwrap();
        handle.join().unwrap().unwrap();
    }
}
