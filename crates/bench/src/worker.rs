//! The `varbench worker` fleet: fault-tolerant sharded studies over the
//! shared measurement cache.
//!
//! A study's matrix is a set of independently computable units
//! ([`PlannedMeasurement`], enumerated by `Study::plan`). This module
//! shards those units across worker *processes* that coordinate through
//! nothing but the cache directory:
//!
//! * the **driver** ([`dispatch`]) enqueues one job file per unsatisfied
//!   unit (`varbench_pipeline::lease::enqueue`), optionally spawns a
//!   fleet of `varbench worker` subprocesses, then polls the cache for
//!   the published records — reclaiming the lease of any row that stops
//!   making progress, and finally running the study **in-process**
//!   against the now-warm cache. That last step is both the fallback
//!   (fleet never showed up, died, or timed out) and the assembly: the
//!   report is always produced by the same single-process code path, so
//!   a sharded study is byte-identical to an unsharded one *by
//!   construction*;
//! * each **worker** ([`run_worker`]) scans the queue in deterministic
//!   stem order, claims a unit through an atomic lease
//!   (`varbench_pipeline::lease::claim`), computes it through the exact
//!   estimator path the in-process study uses, publishes the record via
//!   the cache's atomic tmp + rename, then releases the lease and
//!   dequeues the job.
//!
//! # Fault model
//!
//! A worker can die at any instruction (the torture tests kill -9 real
//! subprocesses at injected fault points). Whatever survives is either
//! a whole published record (content-addressed, atomically renamed) or
//! garbage that never matches a read (torn tmp files, stale leases) —
//! reaped by `cache gc`, routed around by the driver's reclaim. Every
//! race degrades to duplicate computation of identical bytes, never to
//! corruption.
//!
//! Job ids for study units are the measurement's canonical cache key,
//! so the lease namespace is keyed by *what* is computed — two drivers
//! dispatching overlapping studies share workers' results for free. The
//! serial key canon itself is never touched (the L004 firewall): leases
//! and queue files live beside the records, not inside their keys.
//!
//! Sharding requires the default serial-bootstrap mode: a driver under
//! `--par-bootstrap` would assemble from quarantined key variants the
//! workers never compute. [`dispatch`] refuses the combination.

use std::path::PathBuf;
use std::time::Duration;

use crate::args::Effort;
use crate::protocol::{parse_algo, parse_source};
use crate::registry::{self, RunContext};
use crate::workloads;
use varbench_core::exec::Runner;
use varbench_core::retry::RetryPolicy;
use varbench_core::study::{PlannedMeasurement, StudyUnit};
use varbench_pipeline::faultpoint::faultpoint;
use varbench_pipeline::lease::{
    self, claim, dequeue, enqueue, job_path, read_lease, release, scan_queue, ClaimOutcome,
};
use varbench_pipeline::{MeasureCache, VarianceSource, Workload};

/// One unit of fleet work: a planned study measurement or a whole
/// registry artifact (the `run --workers` path).
#[derive(Debug, Clone, PartialEq)]
pub enum Job {
    /// One `Study::plan` unit of `workload` at `effort`.
    Study {
        /// Registered workload name.
        workload: String,
        /// Effort preset (fixes the workload scale).
        effort: Effort,
        /// The planned measurement to execute.
        pm: PlannedMeasurement,
    },
    /// One registry artifact (its measurements all land in the shared
    /// cache; the driver re-runs it warm for the report).
    Artifact {
        /// Registry artifact name.
        name: String,
        /// Effort preset.
        effort: Effort,
    },
}

impl Job {
    /// The job id this unit leases under. Study units use the
    /// measurement's canonical cache key — computed by the caller, who
    /// holds the context — so this returns `None` for them;
    /// [`Job::Artifact`] ids are derived here.
    pub fn artifact_id(name: &str, effort: Effort) -> String {
        format!("artifact/{name}/{}", effort.label())
    }

    /// Serializes the job payload (the text after the queue-file
    /// headers). Line-oriented `key value` pairs; everything round-trips
    /// through [`parse_job`].
    pub fn render(&self) -> String {
        match self {
            Job::Study {
                workload,
                effort,
                pm,
            } => {
                let unit = match &pm.unit {
                    StudyUnit::Source(src) => format!("source {}", src.label()),
                    StudyUnit::Joint(sources) => {
                        let labels: Vec<&str> = sources.iter().map(|s| s.label()).collect();
                        format!("joint {}", labels.join(","))
                    }
                    StudyUnit::HyperOpt => "hyperopt".to_string(),
                };
                format!(
                    "kind study\nworkload {workload}\neffort {}\nunit {unit}\n\
                     seeds {}\nalgo {}\nbudget {}\nbase-seed {}\n",
                    effort.label(),
                    pm.seeds,
                    pm.algo.display_name(),
                    pm.budget,
                    pm.base_seed
                )
            }
            Job::Artifact { name, effort } => {
                format!(
                    "kind artifact\nartifact {name}\neffort {}\n",
                    effort.label()
                )
            }
        }
    }
}

/// Parses a job payload rendered by [`Job::render`]. Returns `Err` for
/// torn or alien payloads (the worker skips those; `cache gc` reaps
/// them).
pub fn parse_job(payload: &str) -> Result<Job, String> {
    let mut kind = None;
    let mut fields: Vec<(&str, &str)> = Vec::new();
    for line in payload.lines() {
        let Some((key, value)) = line.split_once(' ') else {
            continue;
        };
        if key == "kind" {
            kind = Some(value);
        } else {
            fields.push((key, value));
        }
    }
    let get = |key: &str| -> Result<&str, String> {
        fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("job payload missing `{key}`"))
    };
    let effort = |label: &str| -> Result<Effort, String> {
        Effort::from_label(label).ok_or_else(|| format!("unknown effort `{label}`"))
    };
    match kind {
        Some("study") => {
            let unit_text = get("unit")?;
            let unit = match unit_text.split_once(' ') {
                Some(("source", label)) => StudyUnit::Source(
                    parse_source(label).ok_or_else(|| format!("unknown source `{label}`"))?,
                ),
                Some(("joint", labels)) => {
                    let sources: Result<Vec<VarianceSource>, String> = labels
                        .split(',')
                        .map(|l| parse_source(l).ok_or_else(|| format!("unknown source `{l}`")))
                        .collect();
                    StudyUnit::Joint(sources?)
                }
                None if unit_text == "hyperopt" => StudyUnit::HyperOpt,
                _ => return Err(format!("unknown study unit `{unit_text}`")),
            };
            let algo_name = get("algo")?;
            let pm = PlannedMeasurement {
                unit,
                seeds: get("seeds")?.parse().map_err(|_| "bad seeds".to_string())?,
                algo: parse_algo(algo_name)
                    .ok_or_else(|| format!("unknown algorithm `{algo_name}`"))?,
                budget: get("budget")?
                    .parse()
                    .map_err(|_| "bad budget".to_string())?,
                base_seed: get("base-seed")?
                    .parse()
                    .map_err(|_| "bad base-seed".to_string())?,
            };
            Ok(Job::Study {
                workload: get("workload")?.to_string(),
                effort: effort(get("effort")?)?,
                pm,
            })
        }
        Some("artifact") => Ok(Job::Artifact {
            name: get("artifact")?.to_string(),
            effort: effort(get("effort")?)?,
        }),
        Some(other) => Err(format!("unknown job kind `{other}`")),
        None => Err("job payload has no kind".to_string()),
    }
}

/// How a worker process runs: where the shared cache lives, who it
/// claims leases as, and when it gives up waiting for work.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The shared cache directory (records, queue, and leases).
    pub cache_dir: PathBuf,
    /// Lease owner label (default `worker-<pid>`).
    pub owner: String,
    /// Pause between queue scans that found nothing claimable.
    pub poll: Duration,
    /// Consecutive empty-handed scans before exiting (ignored rows
    /// someone else holds count as empty-handed).
    pub idle_rounds: u32,
    /// Exit as soon as the queue is empty instead of waiting
    /// `idle_rounds` polls for more work to appear.
    pub drain: bool,
    /// Run measurements single-threaded.
    pub serial: bool,
    /// Worker thread count (`None`: `VARBENCH_THREADS` or all cores).
    pub threads: Option<usize>,
    /// Cooperative-drain sentinel: the worker exits (between jobs, never
    /// mid-row) as soon as this path exists. How a supervisor stops a
    /// long-lived fleet without signals.
    pub stop_file: Option<PathBuf>,
}

impl WorkerConfig {
    /// A drain-mode worker over `cache_dir` with fleet defaults.
    pub fn new(cache_dir: impl Into<PathBuf>) -> WorkerConfig {
        WorkerConfig {
            cache_dir: cache_dir.into(),
            owner: format!("worker-{}", std::process::id()),
            poll: Duration::from_millis(100),
            idle_rounds: 20,
            drain: true,
            serial: false,
            threads: None,
            stop_file: None,
        }
    }
}

/// What one worker run accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Jobs claimed, computed, and released.
    pub completed: u64,
    /// Jobs found already satisfied in the cache (dequeued unclaimed).
    pub satisfied: u64,
    /// Jobs with unreadable or unexecutable payloads (left queued).
    pub skipped: u64,
}

/// Builds the execution context a worker computes in. Bootstrap mode is
/// pinned to the serial default — the only mode whose keys a dispatch
/// driver watches — regardless of `VARBENCH_PAR_BOOTSTRAP`.
fn worker_ctx(cfg: &WorkerConfig) -> RunContext {
    let runner = match (cfg.serial, cfg.threads) {
        (true, _) => Runner::serial(),
        (false, Some(n)) => Runner::new(n),
        (false, None) => Runner::from_env(),
    };
    RunContext::new(runner, MeasureCache::with_dir(&cfg.cache_dir))
}

/// Whether `job`'s output is already in the cache (the fast path that
/// lets a replacement worker dequeue a row whose first owner died
/// *after* publishing but before dequeueing). Artifact jobs never
/// short-circuit: re-running one against a warm cache recomputes
/// nothing anyway.
fn satisfied(job: &Job, ctx: &RunContext) -> bool {
    match job {
        Job::Study {
            workload,
            effort,
            pm,
        } => match workloads::find(workload, effort.scale()) {
            Some(w) => {
                let key = ctx.measure_key(w.as_ref(), pm.measure_kind(), pm.base_seed);
                ctx.cache().probe_rows(&key) >= pm.seeds
            }
            None => false,
        },
        Job::Artifact { .. } => false,
    }
}

/// Executes one claimed job through the same estimator paths the
/// in-process study and `run` commands use.
fn execute(job: &Job, ctx: &RunContext) -> Result<(), String> {
    faultpoint("worker:mid-row");
    match job {
        Job::Study {
            workload,
            effort,
            pm,
        } => {
            let w = workloads::find(workload, effort.scale())
                .ok_or_else(|| format!("unknown workload `{workload}`"))?;
            let _ = pm.execute(w.as_ref(), ctx);
            Ok(())
        }
        Job::Artifact { name, effort } => {
            let spec = registry::find(name).ok_or_else(|| format!("unknown artifact `{name}`"))?;
            let _ = spec.run(*effort, ctx);
            Ok(())
        }
    }
}

/// Owner-checked release of a held lease on every exit path. The worker
/// arms this right after claiming; a panic during `execute` (or any
/// early return) unwinds through the guard and releases the lease
/// immediately instead of leaving it for timeout-based reclaim — the
/// shutdown-lease-leak fix. The success path disarms after its explicit
/// release + dequeue. A hard kill skips destructors by design; that
/// shape stays covered by reclaim.
struct LeaseGuard<'a> {
    dir: &'a std::path::Path,
    id: &'a str,
    owner: &'a str,
    armed: bool,
}

impl Drop for LeaseGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            release(self.dir, self.id, self.owner);
        }
    }
}

/// Whether a stop file has asked this worker to exit.
fn stop_requested(cfg: &WorkerConfig) -> bool {
    cfg.stop_file.as_deref().is_some_and(|p| p.exists())
}

/// The worker loop: scan the queue in deterministic stem order, claim
/// what is claimable, compute, release, repeat — until the queue drains
/// (`cfg.drain`), `cfg.idle_rounds` scans come up empty-handed, or the
/// configured stop file appears (checked between jobs, so an in-flight
/// row always finishes and releases its lease before the exit).
///
/// Returns what was accomplished; errors are per-job and non-fatal (a
/// torn payload is skipped, not a crash — robustness means the fleet
/// outlives any single bad job).
pub fn run_worker(cfg: &WorkerConfig) -> WorkerSummary {
    let ctx = worker_ctx(cfg);
    let dir = cfg.cache_dir.as_path();
    let mut summary = WorkerSummary::default();
    let mut idle = 0u32;
    loop {
        let mut progressed = false;
        for id in scan_queue(dir) {
            if stop_requested(cfg) {
                return summary;
            }
            let Ok(text) = std::fs::read_to_string(job_path(dir, &id)) else {
                continue; // dequeued between scan and read
            };
            let payload: String = text.lines().skip(2).fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
            let job = match parse_job(&payload) {
                Ok(job) => job,
                Err(e) => {
                    eprintln!("worker {}: skipping job {id}: {e}", cfg.owner);
                    summary.skipped += 1;
                    continue;
                }
            };
            if satisfied(&job, &ctx) {
                // Published by someone who died before dequeueing (or by
                // an overlapping study): finish the bookkeeping.
                dequeue(dir, &id);
                summary.satisfied += 1;
                progressed = true;
                continue;
            }
            match claim(dir, &id, &cfg.owner) {
                Ok(ClaimOutcome::Acquired(_generation)) => {
                    let mut guard = LeaseGuard {
                        dir,
                        id: &id,
                        owner: &cfg.owner,
                        armed: true,
                    };
                    faultpoint("worker:after-claim");
                    match execute(&job, &ctx) {
                        Ok(()) => {
                            faultpoint("worker:before-release");
                            guard.armed = false;
                            if release(dir, &id, &cfg.owner) {
                                dequeue(dir, &id);
                            }
                            summary.completed += 1;
                            progressed = true;
                        }
                        Err(e) => {
                            // Unexecutable (unknown workload — likely an
                            // alien job): release so others may try, but
                            // leave it queued for the driver to cancel.
                            eprintln!("worker {}: cannot execute {id}: {e}", cfg.owner);
                            guard.armed = false;
                            release(dir, &id, &cfg.owner);
                            summary.skipped += 1;
                        }
                    }
                }
                Ok(ClaimOutcome::Busy(_)) | Err(_) => {}
            }
        }
        if stop_requested(cfg) || (cfg.drain && scan_queue(dir).is_empty()) {
            break;
        }
        if progressed {
            idle = 0;
        } else {
            idle += 1;
            if idle >= cfg.idle_rounds {
                break;
            }
            std::thread::sleep(cfg.poll);
        }
    }
    summary
}

/// How a dispatch driver runs its fleet and how long it waits before
/// degrading to in-process computation.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// The shared cache directory.
    pub cache_dir: PathBuf,
    /// Worker subprocesses to spawn (0: rely on an external fleet).
    pub workers: usize,
    /// The `varbench` binary to spawn workers from (`None` disables
    /// spawning even when `workers > 0` — unit tests use this).
    pub exe: Option<PathBuf>,
    /// Total wall budget to wait on the fleet before computing whatever
    /// is missing in-process. Tracked by summing the pauses actually
    /// slept (no wall clock is read).
    pub wait: Duration,
    /// How long a claimed row may go without progress (no new record,
    /// no ownership change) before its lease is reclaimed.
    pub row_timeout: Duration,
    /// Pause between cache probes.
    pub poll: Duration,
}

impl DispatchConfig {
    /// A driver over `cache_dir` spawning `workers` subprocesses of the
    /// current executable, with defaults sized for CI-scale studies.
    pub fn new(cache_dir: impl Into<PathBuf>, workers: usize) -> DispatchConfig {
        DispatchConfig {
            cache_dir: cache_dir.into(),
            workers,
            exe: std::env::current_exe().ok(),
            wait: Duration::from_millis(20_000),
            row_timeout: Duration::from_millis(2_000),
            poll: Duration::from_millis(50),
        }
    }
}

/// What a dispatch accomplished (the report itself is produced by the
/// caller's in-process run afterwards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// Units in the plan.
    pub jobs: usize,
    /// Units already satisfied before anything was enqueued.
    pub satisfied_upfront: usize,
    /// Units observed completed by the fleet within the wait budget.
    pub completed: usize,
    /// Leases reclaimed after stalling `row_timeout` without progress.
    pub reclaims: u64,
    /// Whether the wait budget expired with units still missing (the
    /// in-process fallback computes them).
    pub timed_out: bool,
}

/// One dispatchable unit: its lease id, payload, and (for study units)
/// the cache probe that signals completion.
pub struct DispatchJob {
    /// Lease/queue id (study units: the measurement key canon).
    pub id: String,
    /// The work itself.
    pub job: Job,
    /// `Some((key, rows))`: done when the cache holds `rows` rows under
    /// `key`. `None` (artifacts): done when the job file is dequeued.
    pub probe: Option<(varbench_pipeline::MeasureKey, usize)>,
}

struct Tracked {
    id: String,
    probe: Option<(varbench_pipeline::MeasureKey, usize)>,
    done: bool,
    last_generation: u64,
    stalled: Duration,
}

/// Dispatches `jobs` to a worker fleet over `cfg.cache_dir` and waits —
/// with reclaim on stalled leases and bounded retry pacing from
/// [`RetryPolicy`] — until every unit is satisfied or the wait budget
/// expires. On return (either way), leftover queue files for missing
/// units are cancelled and spawned workers are reaped; the caller then
/// runs its study/artifacts in-process against the warm cache, which
/// computes only what the fleet did not deliver.
///
/// `probe_ctx` is only used to probe the cache for published records;
/// it must address keys in the default serial-bootstrap variant (the
/// caller guarantees this — see the module docs).
pub fn dispatch(
    cfg: &DispatchConfig,
    jobs: Vec<DispatchJob>,
    probe_ctx: &RunContext,
) -> DispatchOutcome {
    let dir = cfg.cache_dir.as_path();
    let mut outcome = DispatchOutcome {
        jobs: jobs.len(),
        ..DispatchOutcome::default()
    };
    let mut tracked: Vec<Tracked> = Vec::new();
    for dj in jobs {
        let done_upfront = match &dj.probe {
            Some((key, rows)) => probe_ctx.cache().probe_rows(key) >= *rows,
            None => false,
        };
        if done_upfront {
            outcome.satisfied_upfront += 1;
            continue;
        }
        if let Err(e) = enqueue(dir, &dj.id, &dj.job.render()) {
            eprintln!("dispatch: cannot enqueue {}: {e}", dj.id);
        }
        tracked.push(Tracked {
            id: dj.id,
            probe: dj.probe,
            done: false,
            last_generation: 0,
            stalled: Duration::ZERO,
        });
    }

    let mut fleet: Vec<std::process::Child> = Vec::new();
    if !tracked.is_empty() {
        if let (Some(exe), true) = (&cfg.exe, cfg.workers > 0) {
            for i in 0..cfg.workers {
                let spawned = std::process::Command::new(exe)
                    .arg("worker")
                    .arg("--cache-dir")
                    .arg(dir)
                    .arg("--drain")
                    .arg("--id")
                    .arg(format!("fleet-{i}-{}", std::process::id()))
                    .stdin(std::process::Stdio::null())
                    .stdout(std::process::Stdio::null())
                    .spawn();
                match spawned {
                    Ok(child) => fleet.push(child),
                    Err(e) => eprintln!("dispatch: cannot spawn worker {i}: {e}"),
                }
            }
        }
    }

    // Wait on the fleet. Elapsed time is the sum of pauses actually
    // slept — the same discipline as RetryPolicy, no wall clock.
    let mut waited = Duration::ZERO;
    loop {
        let mut missing = 0usize;
        for t in tracked.iter_mut().filter(|t| !t.done) {
            let published = match &t.probe {
                Some((key, rows)) => probe_ctx.cache().probe_rows(key) >= *rows,
                None => false,
            };
            if published || !job_path(dir, &t.id).exists() {
                t.done = true;
                outcome.completed += 1;
                continue;
            }
            missing += 1;
            // Stall detection: a held lease whose generation has not
            // moved while the record stays unpublished is a dead owner.
            match read_lease(dir, &t.id) {
                Some(l) if !l.open => {
                    if l.generation == t.last_generation {
                        t.stalled += cfg.poll;
                        if t.stalled >= cfg.row_timeout {
                            match lease::reclaim(dir, &t.id, l.generation) {
                                Ok(true) => {
                                    outcome.reclaims += 1;
                                    t.stalled = Duration::ZERO;
                                }
                                Ok(false) => {}
                                Err(e) => eprintln!("dispatch: reclaim {} failed: {e}", t.id),
                            }
                        }
                    } else {
                        t.last_generation = l.generation;
                        t.stalled = Duration::ZERO;
                    }
                }
                _ => {}
            }
        }
        if missing == 0 {
            break;
        }
        if waited >= cfg.wait {
            outcome.timed_out = true;
            break;
        }
        std::thread::sleep(cfg.poll);
        waited += cfg.poll;
    }

    // Cancel what the fleet did not deliver: the in-process fallback
    // computes it, and a straggler worker must not burn time on it.
    for t in tracked.iter().filter(|t| !t.done) {
        dequeue(dir, &t.id);
    }
    reap(&mut fleet);
    outcome
}

/// Reaps spawned workers: waits briefly for the drain-mode exit (the
/// queue is empty or cancelled by now), then kills stragglers — records
/// they were mid-publishing are either whole or invisible, so killing
/// is always safe.
fn reap(fleet: &mut Vec<std::process::Child>) {
    let grace = RetryPolicy::new(8).initial_backoff(Duration::from_millis(50));
    for mut child in fleet.drain(..) {
        let mut attempt = 0u32;
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) => match grace.backoff_after(attempt) {
                    Some(pause) => {
                        std::thread::sleep(pause);
                        attempt += 1;
                    }
                    None => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                },
                Err(_) => break,
            }
        }
    }
}

/// Builds the [`DispatchJob`] list for a study plan: one job per
/// planned unit, leased under the unit's canonical cache key.
pub fn study_jobs(
    workload_name: &str,
    effort: Effort,
    w: &dyn Workload,
    plan: Vec<PlannedMeasurement>,
    ctx: &RunContext,
) -> Vec<DispatchJob> {
    plan.into_iter()
        .map(|pm| {
            let key = ctx.measure_key(w, pm.measure_kind(), pm.base_seed);
            DispatchJob {
                id: key.canon().to_string(),
                probe: Some((key, pm.seeds)),
                job: Job::Study {
                    workload: workload_name.to_string(),
                    effort,
                    pm,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_core::study::Study;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "varbench-worker-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn plan_for(workload: &str, effort: Effort, seeds: usize) -> Vec<PlannedMeasurement> {
        let w = workloads::find(workload, effort.scale()).unwrap();
        Study::new(w.as_ref()).seeds(seeds).budget(1).plan()
    }

    #[test]
    fn job_payloads_round_trip() {
        for pm in plan_for("glue-rte-bert", Effort::Test, 3) {
            let job = Job::Study {
                workload: "glue-rte-bert".into(),
                effort: Effort::Test,
                pm,
            };
            assert_eq!(parse_job(&job.render()).unwrap(), job);
        }
        let artifact = Job::Artifact {
            name: "workload-synth".into(),
            effort: Effort::Quick,
        };
        assert_eq!(parse_job(&artifact.render()).unwrap(), artifact);

        assert!(parse_job("garbage\n").is_err());
        assert!(parse_job("kind study\n").is_err(), "missing fields");
        assert!(parse_job("kind nope\n").is_err());
    }

    #[test]
    fn worker_drains_a_study_queue_and_publishes_the_records() {
        let dir = scratch("drain");
        let effort = Effort::Test;
        let plan = plan_for("synthetic-ridge", effort, 3);
        assert!(!plan.is_empty());
        let probe = RunContext::new(Runner::serial(), MeasureCache::with_dir(&dir));
        let w = workloads::find("synthetic-ridge", effort.scale()).unwrap();
        for pm in &plan {
            let job = Job::Study {
                workload: "synthetic-ridge".into(),
                effort,
                pm: pm.clone(),
            };
            let key = probe.measure_key(w.as_ref(), pm.measure_kind(), pm.base_seed);
            enqueue(&dir, key.canon(), &job.render()).unwrap();
        }
        let mut cfg = WorkerConfig::new(&dir);
        cfg.serial = true;
        let summary = run_worker(&cfg);
        assert_eq!(summary.completed as usize, plan.len());
        assert_eq!(summary.skipped, 0);
        assert!(scan_queue(&dir).is_empty(), "queue drained");
        assert!(lease::scan_leases(&dir).is_empty(), "leases released");
        for pm in &plan {
            let key = probe.measure_key(w.as_ref(), pm.measure_kind(), pm.base_seed);
            assert_eq!(probe.cache().probe_rows(&key), 3, "{}", pm.label());
        }
        // A second worker over the same queue finds nothing.
        assert_eq!(run_worker(&cfg), WorkerSummary::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_dequeues_already_satisfied_jobs_without_claiming() {
        let dir = scratch("satisfied");
        let effort = Effort::Test;
        let plan = plan_for("synthetic-ridge", effort, 2);
        let ctx = RunContext::new(Runner::serial(), MeasureCache::with_dir(&dir));
        let w = workloads::find("synthetic-ridge", effort.scale()).unwrap();
        // Publish the records first, then enqueue: the death-after-
        // publish-before-dequeue shape.
        for pm in &plan {
            let _ = pm.execute(w.as_ref(), &ctx);
            let key = ctx.measure_key(w.as_ref(), pm.measure_kind(), pm.base_seed);
            let job = Job::Study {
                workload: "synthetic-ridge".into(),
                effort,
                pm: pm.clone(),
            };
            enqueue(&dir, key.canon(), &job.render()).unwrap();
        }
        let mut cfg = WorkerConfig::new(&dir);
        cfg.serial = true;
        let summary = run_worker(&cfg);
        assert_eq!(summary.satisfied as usize, plan.len());
        assert_eq!(summary.completed, 0, "nothing recomputed");
        assert!(scan_queue(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dispatch_without_a_fleet_degrades_to_in_process() {
        let dir = scratch("nofleet");
        let effort = Effort::Test;
        let ctx = RunContext::new(Runner::serial(), MeasureCache::with_dir(&dir));
        let w = workloads::find("synthetic-ridge", effort.scale()).unwrap();
        let plan = plan_for("synthetic-ridge", effort, 2);
        let jobs = study_jobs("synthetic-ridge", effort, w.as_ref(), plan.clone(), &ctx);
        assert_eq!(jobs.len(), plan.len());
        let cfg = DispatchConfig {
            cache_dir: dir.clone(),
            workers: 0,
            exe: None,
            wait: Duration::from_millis(100),
            row_timeout: Duration::from_millis(50),
            poll: Duration::from_millis(10),
        };
        let outcome = dispatch(&cfg, jobs, &ctx);
        assert!(outcome.timed_out, "no fleet ever showed up");
        assert_eq!(outcome.completed, 0);
        assert!(
            scan_queue(&dir).is_empty(),
            "leftover jobs cancelled on the way out"
        );
        // The caller's in-process run now computes everything.
        let study = Study::new(w.as_ref()).seeds(2).budget(1);
        let report = study.run(&ctx);
        let baseline = Study::new(w.as_ref())
            .seeds(2)
            .budget(1)
            .run(&RunContext::serial());
        assert_eq!(report.render_text(), baseline.render_text());
        // Re-dispatching afterwards finds everything satisfied upfront.
        let jobs = study_jobs("synthetic-ridge", effort, w.as_ref(), plan, &ctx);
        let outcome = dispatch(&cfg, jobs, &ctx);
        assert_eq!(outcome.satisfied_upfront, outcome.jobs);
        assert!(!outcome.timed_out);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_panicking_row_releases_its_lease_on_the_way_out() {
        let dir = scratch("panic-release");
        let effort = Effort::Test;
        let plan = plan_for("synthetic-ridge", effort, 2);
        let probe = RunContext::new(Runner::serial(), MeasureCache::with_dir(&dir));
        let w = workloads::find("synthetic-ridge", effort.scale()).unwrap();
        let pm = plan[0].clone();
        let key = probe.measure_key(w.as_ref(), pm.measure_kind(), pm.base_seed);
        let job = Job::Study {
            workload: "synthetic-ridge".into(),
            effort,
            pm,
        };
        enqueue(&dir, key.canon(), &job.render()).unwrap();
        let mut cfg = WorkerConfig::new(&dir);
        cfg.serial = true;
        // An unwinding crash mid-row (drain's SIGTERM shape): the worker
        // must not leave its lease for timeout-based reclaim.
        let _arm = varbench_pipeline::faultpoint::arm_local("worker:mid-row:panic");
        let crashed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_worker(&cfg))).is_err();
        assert!(crashed, "armed panic fired");
        assert!(
            lease::scan_leases(&dir).is_empty(),
            "lease released on unwind, not leaked"
        );
        assert_eq!(
            scan_queue(&dir),
            vec![key.canon().to_string()],
            "job stays queued"
        );
        // A healthy successor claims the released lease and finishes.
        let summary = run_worker(&cfg);
        assert_eq!(summary.completed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_file_halts_the_worker_before_it_claims_anything() {
        let dir = scratch("stopfile");
        let effort = Effort::Test;
        let plan = plan_for("synthetic-ridge", effort, 2);
        let probe = RunContext::new(Runner::serial(), MeasureCache::with_dir(&dir));
        let w = workloads::find("synthetic-ridge", effort.scale()).unwrap();
        let pm = plan[0].clone();
        let key = probe.measure_key(w.as_ref(), pm.measure_kind(), pm.base_seed);
        let job = Job::Study {
            workload: "synthetic-ridge".into(),
            effort,
            pm,
        };
        enqueue(&dir, key.canon(), &job.render()).unwrap();
        let stop = dir.join("stop");
        std::fs::write(&stop, b"drain\n").unwrap();
        let mut cfg = WorkerConfig::new(&dir);
        cfg.serial = true;
        cfg.stop_file = Some(stop);
        let summary = run_worker(&cfg);
        assert_eq!(summary, WorkerSummary::default(), "exited without working");
        assert_eq!(scan_queue(&dir).len(), 1, "queue untouched");
        assert!(lease::scan_leases(&dir).is_empty(), "nothing claimed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dispatch_reclaims_a_stalled_lease() {
        let dir = scratch("reclaim");
        let effort = Effort::Test;
        let ctx = RunContext::new(Runner::serial(), MeasureCache::with_dir(&dir));
        let w = workloads::find("synthetic-ridge", effort.scale()).unwrap();
        let plan = plan_for("synthetic-ridge", effort, 2);
        let jobs = study_jobs("synthetic-ridge", effort, w.as_ref(), plan, &ctx);
        let id = jobs[0].id.clone();
        // A "worker" claims the row and dies (never computes).
        enqueue(&dir, &id, &jobs[0].job.render()).unwrap();
        claim(&dir, &id, "dead-worker").unwrap();
        let cfg = DispatchConfig {
            cache_dir: dir.clone(),
            workers: 0,
            exe: None,
            wait: Duration::from_millis(300),
            row_timeout: Duration::from_millis(50),
            poll: Duration::from_millis(10),
        };
        let outcome = dispatch(&cfg, jobs, &ctx);
        assert!(outcome.reclaims >= 1, "dead owner's lease reclaimed");
        assert!(outcome.timed_out, "nobody took the reclaimed lease over");
        let l = read_lease(&dir, &id).expect("lease survives for takeover");
        assert!(l.open, "left open for the next worker");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
