//! Calibration of simulation parameters from real estimator runs.
//!
//! The paper's Section 4.2 simulation is *calibrated*: its normal
//! distributions use the variances measured with the ideal and biased
//! estimators on the case studies. This module performs that measurement.

use crate::registry::RunContext;
use varbench_core::estimator::{fix_hopt_estimator, ideal_estimator, Randomize};
use varbench_core::simulation::SimulatedTask;
use varbench_pipeline::{CaseStudy, HpoAlgorithm};
use varbench_stats::describe::{mean, std_dev, variance};

/// Calibration output: the simulated task plus the raw pieces.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The simulation parameters (σ, bias std, measure std).
    pub task: SimulatedTask,
    /// Mean performance measured by the ideal estimator.
    pub mu: f64,
    /// Repetition groups of the biased estimator (for decomposition).
    pub groups: Vec<Vec<f64>>,
    /// Ideal-estimator measures.
    pub ideal_measures: Vec<f64>,
}

/// Measures a [`SimulatedTask`] for `cs`: σ from one ideal-estimator run
/// of `k_ideal` samples; `Var(µ̃|ξ)` and `Var(R̂|ξ)` from `reps`
/// repetitions of `FixHOptEst(k, All)`. The ideal run and the repetition
/// groups are served from (and stored into) the context's measurement
/// cache, so a calibration at Fig. 5's seed and budget reuses Fig. 5's
/// estimator matrices outright.
///
/// # Panics
///
/// Panics if `k_ideal < 2`, `k < 2`, or `reps < 2`.
#[allow(clippy::too_many_arguments)]
pub fn calibrate(
    cs: &CaseStudy,
    k_ideal: usize,
    k: usize,
    reps: usize,
    algo: HpoAlgorithm,
    budget: usize,
    seed: u64,
    ctx: &RunContext,
) -> Calibration {
    assert!(
        k_ideal >= 2 && k >= 2 && reps >= 2,
        "need at least 2 of everything"
    );
    let ideal = ideal_estimator(cs, k_ideal, algo, budget, seed, ctx);
    let sigma = std_dev(&ideal.measures).max(1e-9);
    let mu = mean(&ideal.measures);

    let groups: Vec<Vec<f64>> = (0..reps)
        .map(|r| {
            fix_hopt_estimator(cs, k, algo, budget, seed, r as u64, Randomize::All, ctx).measures
        })
        .collect();
    let group_means: Vec<f64> = groups.iter().map(|g| mean(g)).collect();
    let bias_std = std_dev(&group_means).max(1e-9);
    let measure_var = groups.iter().map(|g| variance(g, 1)).sum::<f64>() / reps as f64;
    let measure_std = measure_var.sqrt().max(1e-9);

    Calibration {
        task: SimulatedTask::new(sigma, bias_std, measure_std),
        mu,
        groups,
        ideal_measures: ideal.measures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_pipeline::Scale;

    #[test]
    fn calibration_produces_positive_parameters() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let c = calibrate(
            &cs,
            3,
            4,
            3,
            HpoAlgorithm::RandomSearch,
            3,
            1,
            &RunContext::serial(),
        );
        assert!(c.task.sigma > 0.0);
        assert!(c.task.bias_std > 0.0);
        assert!(c.task.measure_std > 0.0);
        assert!(c.mu > 0.4 && c.mu <= 1.0);
        assert_eq!(c.groups.len(), 3);
        assert_eq!(c.groups[0].len(), 4);
        assert_eq!(c.ideal_measures.len(), 3);
    }

    #[test]
    fn calibration_deterministic() {
        let cs = CaseStudy::glue_rte_bert(Scale::Test);
        let ctx = RunContext::serial();
        let a = calibrate(&cs, 2, 2, 2, HpoAlgorithm::RandomSearch, 2, 2, &ctx);
        let b = calibrate(&cs, 2, 2, 2, HpoAlgorithm::RandomSearch, 2, 2, &ctx);
        assert_eq!(a, b);
    }
}
