//! `cargo bench` wrapper for the shared linalg kernel suite
//! (`varbench_bench::suites::linalg`; also runnable via `varbench bench`).

use varbench_bench::timing::Harness;

fn main() {
    varbench_bench::suites::linalg(&mut Harness::new("linalg"));
}
