//! `cargo bench` wrapper for the shared estimators suite
//! (`varbench_bench::suites::estimators`; also runnable via `varbench
//! bench`).

use varbench_bench::timing::Harness;

fn main() {
    varbench_bench::suites::estimators(&mut Harness::new("estimators"));
}
