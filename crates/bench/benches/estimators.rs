//! Benchmarks of the performance estimators on Test-scale pipelines (the
//! end-to-end cost the library's users pay). In-repo timing harness; see
//! `varbench_bench::timing`.

use varbench_bench::timing::Harness;
use varbench_core::ctx::RunContext;
use varbench_core::estimator::{fix_hopt_estimator, ideal_estimator, Randomize};
use varbench_pipeline::{CaseStudy, HpoAlgorithm, Scale, SeedAssignment};

fn bench_estimators(c: &mut Harness) {
    let cs = CaseStudy::glue_rte_bert(Scale::Test);

    c.bench_function("pipeline_single_training", |b| {
        let seeds = SeedAssignment::all_fixed(1);
        let params = cs.default_params().to_vec();
        b.iter(|| cs.run_with_params(&params, &seeds))
    });

    c.bench_function("ideal_estimator_k2_t3", |b| {
        let ctx = RunContext::serial();
        b.iter(|| ideal_estimator(&cs, 2, HpoAlgorithm::RandomSearch, 3, 1, &ctx))
    });

    c.bench_function("fix_hopt_estimator_k4_t3_all", |b| {
        let ctx = RunContext::serial();
        b.iter(|| {
            fix_hopt_estimator(
                &cs,
                4,
                HpoAlgorithm::RandomSearch,
                3,
                1,
                0,
                Randomize::All,
                &ctx,
            )
        })
    });

    c.bench_function("hopt_bayes_budget6", |b| {
        let seeds = SeedAssignment::all_fixed(2);
        b.iter(|| cs.hopt(&seeds, HpoAlgorithm::BayesOpt, 6))
    });
}

fn main() {
    bench_estimators(&mut Harness::new("estimators"));
}
