//! `cargo bench` wrapper for the shared bootstrap suite
//! (`varbench_bench::suites::bootstrap_par`; also runnable via
//! `varbench bench`).

use varbench_bench::timing::Harness;

fn main() {
    varbench_bench::suites::bootstrap_par(&mut Harness::new("bootstrap_par"));
}
