//! `cargo bench` wrapper for the shared compare suite
//! (`varbench_bench::suites::compare`; also runnable via `varbench bench`).

use varbench_bench::timing::Harness;

fn main() {
    varbench_bench::suites::compare(&mut Harness::new("compare"));
}
