//! Benchmarks of the comparison/decision machinery (in-repo timing
//! harness; see `varbench_bench::timing`).

use varbench_bench::timing::{black_box, Harness};
use varbench_core::compare::compare_paired;
use varbench_core::simulation::{detection_study, DetectionConfig, SimulatedTask};
use varbench_rng::Rng;

fn bench_compare(c: &mut Harness) {
    let mut rng = Rng::seed_from_u64(1);
    let a: Vec<f64> = (0..29).map(|_| rng.normal(0.76, 0.02)).collect();
    let b: Vec<f64> = (0..29).map(|_| rng.normal(0.75, 0.02)).collect();

    c.bench_function("compare_paired_k29_r1000", |bch| {
        bch.iter(|| {
            let mut r = Rng::seed_from_u64(2);
            compare_paired(black_box(&a), black_box(&b), 0.75, 0.05, 1000, &mut r)
        })
    });

    c.bench_function("detection_point_20sims", |bch| {
        let task = SimulatedTask::new(0.02, 0.01, 0.015);
        let config = DetectionConfig {
            k: 50,
            n_simulations: 20,
            gamma: 0.75,
            delta: 0.04,
            alpha: 0.05,
            resamples: 100,
        };
        bch.iter(|| detection_study(black_box(&task), &[0.75], &config, 3))
    });
}

fn main() {
    bench_compare(&mut Harness::new("compare"));
}
