//! `cargo bench` wrapper for the shared eval suite
//! (`varbench_bench::suites::eval`; also runnable via `varbench bench`).

use varbench_bench::timing::Harness;

fn main() {
    varbench_bench::suites::eval(&mut Harness::new("eval"));
}
