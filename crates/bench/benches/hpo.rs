//! Benchmarks of the hyperparameter optimizers (in-repo timing harness;
//! see `varbench_bench::timing`).

use varbench_bench::timing::{black_box, Harness};
use varbench_hpo::{
    minimize, BayesOpt, BayesOptConfig, Dim, NoisyGridSearch, RandomSearch, SearchSpace,
};

fn space() -> SearchSpace {
    SearchSpace::new(vec![
        ("lr".into(), Dim::log_uniform(1e-4, 1e0)),
        ("wd".into(), Dim::log_uniform(1e-6, 1e-2)),
        ("mom".into(), Dim::uniform(0.5, 0.99)),
    ])
}

fn quadratic(p: &[f64]) -> f64 {
    (p[0].ln() - (1e-2f64).ln()).powi(2) + (p[2] - 0.9).powi(2)
}

fn bench_hpo(c: &mut Harness) {
    c.bench_function("random_search_30_trials", |b| {
        b.iter(|| {
            let mut opt = RandomSearch::new(space(), 1);
            minimize(&mut opt, 30, |p| quadratic(black_box(p)))
        })
    });

    c.bench_function("noisy_grid_construction_27pts", |b| {
        b.iter(|| NoisyGridSearch::new(black_box(space()), 3, 2))
    });

    c.bench_function("bayesopt_30_trials", |b| {
        b.iter(|| {
            let mut opt = BayesOpt::new(space(), BayesOptConfig::default(), 3);
            minimize(&mut opt, 30, |p| quadratic(black_box(p)))
        })
    });
}

fn main() {
    bench_hpo(&mut Harness::new("hpo"));
}
