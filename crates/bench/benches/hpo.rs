//! `cargo bench` wrapper for the shared hpo suite
//! (`varbench_bench::suites::hpo`; also runnable via `varbench bench`).

use varbench_bench::timing::Harness;

fn main() {
    varbench_bench::suites::hpo(&mut Harness::new("hpo"));
}
