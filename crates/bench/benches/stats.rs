//! `cargo bench` wrapper for the shared stats suite
//! (`varbench_bench::suites::stats`; also runnable via `varbench bench`).

use varbench_bench::timing::Harness;

fn main() {
    varbench_bench::suites::stats(&mut Harness::new("stats"));
}
