//! Micro-benchmarks of the statistical primitives (in-repo timing
//! harness; see `varbench_bench::timing`).

use varbench_bench::timing::{black_box, Harness};
use varbench_rng::Rng;
use varbench_stats::bootstrap::percentile_ci_prob_outperform;
use varbench_stats::describe::mean;
use varbench_stats::power::noether_sample_size;
use varbench_stats::tests::mann_whitney::mann_whitney_u;
use varbench_stats::tests::shapiro_wilk::shapiro_wilk;
use varbench_stats::tests::Alternative;
use varbench_stats::{standard_normal_quantile, Normal};

fn sample(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.normal(0.0, 1.0)).collect()
}

fn bench_stats(c: &mut Harness) {
    c.bench_function("normal_quantile", |b| {
        b.iter(|| standard_normal_quantile(black_box(0.975)))
    });

    c.bench_function("normal_cdf", |b| {
        let n = Normal::standard();
        b.iter(|| n.cdf(black_box(1.3)))
    });

    let a = sample(50, 1);
    let bb = sample(50, 2);
    c.bench_function("mann_whitney_n50", |b| {
        b.iter(|| mann_whitney_u(black_box(&a), black_box(&bb), Alternative::TwoSided))
    });

    let xs = sample(100, 3);
    c.bench_function("shapiro_wilk_n100", |b| {
        b.iter(|| shapiro_wilk(black_box(&xs)).unwrap())
    });

    let pa = sample(29, 4);
    let pb = sample(29, 5);
    c.bench_function("bootstrap_ci_prob_outperform_k29_r500", |b| {
        b.iter(|| {
            let mut rng = Rng::seed_from_u64(6);
            percentile_ci_prob_outperform(black_box(&pa), black_box(&pb), 500, 0.05, &mut rng)
        })
    });

    c.bench_function("noether_sample_size", |b| {
        b.iter(|| noether_sample_size(black_box(0.75), 0.05, 0.05))
    });

    let big = sample(10_000, 7);
    c.bench_function("mean_n10000", |b| b.iter(|| mean(black_box(&big))));
}

fn main() {
    bench_stats(&mut Harness::new("stats"));
}
