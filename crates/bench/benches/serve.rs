//! `cargo bench` wrapper for the shared serve suite
//! (`varbench_bench::suites::serve`; also runnable via `varbench bench`).

use varbench_bench::timing::Harness;

fn main() {
    varbench_bench::suites::serve(&mut Harness::new("serve"));
}
