//! `cargo bench` wrapper for the shared batch-GEMM kernel suite
//! (`varbench_bench::suites::gemm`; also runnable via `varbench bench`).

use varbench_bench::timing::Harness;

fn main() {
    varbench_bench::suites::gemm(&mut Harness::new("gemm"));
}
