//! `cargo bench` wrapper for the shared models suite
//! (`varbench_bench::suites::models`; also runnable via `varbench bench`).

use varbench_bench::timing::Harness;

fn main() {
    varbench_bench::suites::models(&mut Harness::new("models"));
}
