//! Benchmarks of model training and inference (in-repo timing harness;
//! see `varbench_bench::timing`).

use varbench_bench::timing::{black_box, Harness};
use varbench_data::augment::Identity;
use varbench_data::synth::{binary_overlap, BinaryOverlapConfig};
use varbench_models::linear::RidgeRegression;
use varbench_models::{Mlp, MlpConfig, TrainConfig, TrainSeeds};
use varbench_rng::{Rng, SeedTree};

fn bench_models(c: &mut Harness) {
    let mut rng = Rng::seed_from_u64(1);
    let ds = binary_overlap(
        &BinaryOverlapConfig {
            n: 500,
            dim: 16,
            separation: 2.0,
            ..Default::default()
        },
        &mut rng,
    );

    c.bench_function("mlp_train_1epoch_n500", |b| {
        b.iter(|| {
            let mut seeds = TrainSeeds::from_tree(&SeedTree::new(2));
            Mlp::train(
                &MlpConfig::default(),
                &TrainConfig {
                    epochs: 1,
                    ..Default::default()
                },
                black_box(&ds),
                &Identity,
                &mut seeds,
            )
        })
    });

    let mut seeds = TrainSeeds::from_tree(&SeedTree::new(3));
    let mlp = Mlp::train(
        &MlpConfig::default(),
        &TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        &ds,
        &Identity,
        &mut seeds,
    );
    let x = ds.x(0).to_vec();
    c.bench_function("mlp_predict", |b| {
        b.iter(|| mlp.predict_class(black_box(&x)))
    });

    // Regression data for ridge.
    let mut rng = Rng::seed_from_u64(4);
    let n = 400;
    let d = 16;
    let mut features = Vec::with_capacity(n * d);
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let mut s = 0.0;
        for j in 0..d {
            let v = rng.normal(0.0, 1.0);
            s += v * (j as f64 * 0.1);
            features.push(v);
        }
        values.push(s);
    }
    let reg = varbench_data::Dataset::new(features, d, varbench_data::Targets::Values(values));
    c.bench_function("ridge_fit_n400_d16", |b| {
        b.iter(|| RidgeRegression::fit(black_box(&reg), 1e-3))
    });
}

fn main() {
    bench_models(&mut Harness::new("models"));
}
