//! Kill-9 torture tests for the sharded-study worker fleet.
//!
//! Real `varbench worker` subprocesses are killed at armed faultpoints
//! (`VARBENCH_FAULT`, see `varbench_pipeline::faultpoint`) — once
//! mid-publish, after the record's temp file is written but before the
//! rename, and once mid-row, holding a fresh lease — and the dispatch
//! driver must then reclaim the dead leases, re-dispatch the rows, and
//! produce a report byte-identical to an unsharded single-process run.
//! The faultpoints are compiled in because integration tests build the
//! binary in debug mode (`debug_assertions` on).

use std::path::{Path, PathBuf};
use std::process::Command;

use varbench_bench::args::Effort;
use varbench_bench::protocol::StudyRequest;
use varbench_bench::registry::RunContext;
use varbench_bench::worker::study_jobs;
use varbench_core::exec::Runner;
use varbench_pipeline::{gc_dir, lease, MeasureCache};

fn varbench() -> Command {
    Command::new(env!("CARGO_BIN_EXE_varbench"))
}

/// The study every test shards: small enough to finish in seconds, big
/// enough to produce two independent plan units (a variance row and an
/// HPO row) so two workers can die on two different rows.
const STUDY_ARGS: &[&str] = &[
    "study",
    "synthetic-ridge",
    "--test",
    "--seeds",
    "4",
    "--budget",
    "3",
    "--json",
];

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("varbench-fleet-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp cache dir");
    dir
}

/// The unsharded ground truth: one process, its own cache dir.
fn baseline_bytes(tag: &str) -> Vec<u8> {
    let dir = fresh_dir(tag);
    let out = varbench()
        .args(STUDY_ARGS)
        .env("VARBENCH_CACHE_DIR", &dir)
        .output()
        .expect("baseline study");
    assert!(
        out.status.success(),
        "baseline study failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
    out.stdout
}

fn request() -> StudyRequest {
    StudyRequest {
        workload: "synthetic-ridge".into(),
        effort: Effort::Test,
        sources: None,
        seeds: Some(4),
        base_seed: None,
        budget: Some(3),
        algo: None,
        gamma: None,
        name: None,
        dispatch: false,
    }
}

/// Enqueues the study's plan into `cache` exactly as the dispatch
/// driver would, returning the probe context and the per-unit jobs.
fn enqueue_plan(cache: &Path) -> (RunContext, Vec<varbench_bench::worker::DispatchJob>) {
    let ctx = RunContext::new(Runner::serial(), MeasureCache::with_dir(cache));
    let req = request();
    let w = req.find_workload().expect("workload registered");
    let study = req.configure(w.as_ref()).expect("valid request");
    let jobs = study_jobs(&req.workload, req.effort, w.as_ref(), study.plan(), &ctx);
    assert_eq!(jobs.len(), 2, "expected a variance row and an HPO row");
    for dj in &jobs {
        lease::enqueue(cache, &dj.id, &dj.job.render()).expect("enqueue");
    }
    (ctx, jobs)
}

#[test]
fn killed_workers_never_corrupt_the_study() {
    let baseline = baseline_bytes("torture-base");
    let cache = fresh_dir("torture");
    let (_ctx, jobs) = enqueue_plan(&cache);

    // Victim 1 dies mid-publish: the record's bytes are fully written
    // to the temp file, the rename never happens. The torn state a
    // naive worker would leave behind.
    let status = varbench()
        .arg("worker")
        .arg("--cache-dir")
        .arg(&cache)
        .args(["--drain", "--serial", "--id", "doomed-publish"])
        .env("VARBENCH_FAULT", "publish:after-tmp:kill")
        .status()
        .expect("spawn victim 1");
    assert!(!status.success(), "victim 1 must abort at the faultpoint");

    // The half-published record must be invisible: a tmp file is not a
    // record until the atomic rename lands.
    let probe = MeasureCache::with_dir(&cache);
    let visible: usize = jobs
        .iter()
        .map(|dj| probe.probe_rows(&dj.probe.as_ref().expect("study probe").0))
        .sum();
    assert_eq!(visible, 0, "an aborted publish must not expose a record");

    // Victim 2 dies mid-row on the other unit, lease freshly claimed,
    // nothing computed.
    let status = varbench()
        .arg("worker")
        .arg("--cache-dir")
        .arg(&cache)
        .args(["--drain", "--serial", "--id", "doomed-midrow"])
        .env("VARBENCH_FAULT", "worker:mid-row:kill")
        .status()
        .expect("spawn victim 2");
    assert!(!status.success(), "victim 2 must abort at the faultpoint");

    let leases = lease::scan_leases(&cache);
    assert_eq!(leases.len(), 2, "both rows are leased by dead workers");
    assert!(
        leases.iter().all(|l| !l.open),
        "nobody has reclaimed anything yet: {leases:?}"
    );

    // The driver dispatches over the wreckage: it must reclaim both
    // dead leases, hand the rows to the one clean worker it spawns,
    // and emit the exact baseline bytes.
    let out = varbench()
        .args(STUDY_ARGS)
        .args([
            "--workers",
            "1",
            "--wait-ms",
            "60000",
            "--row-timeout-ms",
            "400",
        ])
        .env("VARBENCH_CACHE_DIR", &cache)
        .output()
        .expect("driver study");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "driver failed: {stderr}");
    assert_eq!(
        out.stdout, baseline,
        "sharded report must be byte-identical to the single-process run"
    );
    assert!(
        stderr.contains("lease reclaim"),
        "driver must report its reclaim accounting: {stderr}"
    );
    assert!(
        !stderr.contains(" 0 lease reclaim(s)"),
        "both dead leases stalled and must have been reclaimed: {stderr}"
    );

    // gc after the carnage: the aborted publish left an orphan temp
    // file, but no torn record — the atomic-rename discipline held
    // under kill -9.
    let report = gc_dir(&cache).expect("gc");
    assert_eq!(report.torn_files, 0, "no torn records: {report:?}");
    assert!(
        report.tmp_files >= 1,
        "victim 1's orphan temp file should be reaped: {report:?}"
    );
    assert!(
        report.kept_records >= 2,
        "real records survive gc: {report:?}"
    );
    assert!(
        lease::scan_leases(&cache).is_empty(),
        "completed rows leave no leases behind"
    );

    // And the gc'd cache still replays the same bytes from warm
    // records (no recompute, same report).
    let warm = varbench()
        .args(STUDY_ARGS)
        .env("VARBENCH_CACHE_DIR", &cache)
        .output()
        .expect("warm study");
    assert!(warm.status.success());
    assert_eq!(warm.stdout, baseline, "gc must not eat live records");

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn concurrent_reclaims_converge_on_one_takeover() {
    let cache = fresh_dir("reclaim-race");
    lease::enqueue(&cache, "race-row", "payload").expect("enqueue");

    // A worker claims the row, then dies without releasing: the lease is
    // held at generation 1 with nobody left to finish it.
    match lease::claim(&cache, "race-row", "dead-worker").expect("claim") {
        lease::ClaimOutcome::Acquired(generation) => assert_eq!(generation, 1),
        other => panic!("first claim must acquire: {other:?}"),
    }

    // Two drivers notice the stall at the same moment and both reclaim
    // against the generation they observed. Reclaim is idempotent for a
    // given generation, so whatever interleaving the scheduler picks,
    // the race degrades to duplicate marking — never to two owners.
    let (dir_a, dir_b) = (cache.clone(), cache.clone());
    let a = std::thread::spawn(move || lease::reclaim(&dir_a, "race-row", 1).expect("reclaim a"));
    let b = std::thread::spawn(move || lease::reclaim(&dir_b, "race-row", 1).expect("reclaim b"));
    let (a, b) = (a.join().expect("thread a"), b.join().expect("thread b"));
    assert!(a || b, "at least one reclaim must land");

    let leases = lease::scan_leases(&cache);
    assert_eq!(
        leases.len(),
        1,
        "one lease file, however the race fell: {leases:?}"
    );
    assert!(leases[0].open, "a reclaimed lease awaits takeover");
    assert_eq!(
        leases[0].generation, 1,
        "reclaim keeps the dead owner's generation"
    );

    // Exactly one successor takes over, at generation 2; anyone arriving
    // after that sees a held lease.
    match lease::claim(&cache, "race-row", "successor").expect("takeover") {
        lease::ClaimOutcome::Acquired(generation) => assert_eq!(generation, 2),
        other => panic!("takeover must acquire: {other:?}"),
    }
    match lease::claim(&cache, "race-row", "late-arrival").expect("second takeover") {
        lease::ClaimOutcome::Busy(l) => {
            assert_eq!(l.owner, "successor");
            assert_eq!(l.generation, 2);
        }
        other => panic!("the row has an owner again: {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn double_release_is_a_no_op() {
    let cache = fresh_dir("double-release");
    lease::enqueue(&cache, "row", "payload").expect("enqueue");
    assert!(matches!(
        lease::claim(&cache, "row", "w1").expect("claim"),
        lease::ClaimOutcome::Acquired(1)
    ));

    assert!(
        lease::release(&cache, "row", "w1"),
        "first release removes the lease"
    );
    assert!(
        !lease::release(&cache, "row", "w1"),
        "releasing an already-released lease is a no-op"
    );
    assert!(lease::scan_leases(&cache).is_empty());

    // A stale finisher must not release a lease that changed hands: w2
    // claims the row fresh, and w1's late release bounces off.
    assert!(matches!(
        lease::claim(&cache, "row", "w2").expect("reclaim"),
        lease::ClaimOutcome::Acquired(1)
    ));
    assert!(
        !lease::release(&cache, "row", "w1"),
        "only the current owner may release"
    );
    let leases = lease::scan_leases(&cache);
    assert_eq!(leases.len(), 1, "w2's lease is intact: {leases:?}");
    assert_eq!(leases[0].owner, "w2");

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn dispatch_without_workers_degrades_to_in_process() {
    let baseline = baseline_bytes("fallback-base");
    let cache = fresh_dir("fallback");

    // --dispatch with no external fleet and a tiny wait budget: the
    // driver enqueues, waits, gives up, cancels its queue entries, and
    // computes everything in-process — same bytes, exit 0.
    let out = varbench()
        .args(STUDY_ARGS)
        .args(["--dispatch", "--wait-ms", "250", "--row-timeout-ms", "100"])
        .env("VARBENCH_CACHE_DIR", &cache)
        .output()
        .expect("dispatch study");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "fallback must succeed: {stderr}");
    assert_eq!(
        out.stdout, baseline,
        "in-process fallback must match the single-process bytes"
    );
    assert!(
        stderr.contains("wait budget expired"),
        "the degradation must be reported: {stderr}"
    );
    assert!(
        lease::scan_queue(&cache).is_empty(),
        "abandoned queue entries are cancelled on fallback"
    );

    let _ = std::fs::remove_dir_all(&cache);
}
