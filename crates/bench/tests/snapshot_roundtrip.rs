//! Round-trip guarantee for `BENCH_*.json` perf snapshots: render →
//! parse → render must be byte-identical, so the committed trajectory
//! files stay machine-readable as fields evolve (a parser that silently
//! drops or reorders a field would break the perf gate without anyone
//! noticing).

use varbench_bench::timing::{parse_snapshot, render_snapshot, BenchResult};

fn sample_results() -> Vec<BenchResult> {
    vec![
        BenchResult {
            suite: "gemm".into(),
            name: "gemm_rows_fwd_b32_16x32".into(),
            iters: 4096,
            reps: 11,
            median_ns: 1402,
            min_ns: 1377,
            max_ns: 1893,
        },
        BenchResult {
            suite: "bootstrap_par".into(),
            name: "bootstrap_split_k50_r1000".into(),
            iters: 64,
            reps: 11,
            median_ns: 61234,
            min_ns: 60000,
            max_ns: 70011,
        },
    ]
}

#[test]
fn render_parse_render_is_byte_identical() {
    let results = sample_results();
    let rendered = render_snapshot(&results);
    let parsed = parse_snapshot(&rendered).expect("own snapshot must parse");
    assert_eq!(parsed, results, "parse must preserve every field");
    let rerendered = render_snapshot(&parsed);
    assert_eq!(rendered, rerendered, "round trip must be byte-identical");
}

#[test]
fn empty_snapshot_round_trips() {
    let rendered = render_snapshot(&[]);
    let parsed = parse_snapshot(&rendered).expect("empty snapshot must parse");
    assert!(parsed.is_empty());
    assert_eq!(render_snapshot(&parsed), rendered);
}

#[test]
fn committed_bench_snapshots_round_trip() {
    // Every committed BENCH_*.json at the repo root must survive
    // parse → render byte-exactly: they were produced by
    // `varbench bench --json`, whose stdout is `render_snapshot`.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut checked = 0;
    for entry in std::fs::read_dir(&root).expect("repo root") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("snapshot readable");
        let parsed = parse_snapshot(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!parsed.is_empty(), "{name} holds no benchmarks");
        assert_eq!(
            render_snapshot(&parsed),
            text,
            "{name}: parse → render must reproduce the committed bytes"
        );
        checked += 1;
    }
    assert!(checked >= 1, "no committed BENCH_*.json found");
}
