//! Property-based tests of the distributions and special functions, driven
//! by the in-repo deterministic seed-sweep harness ([`varbench_rng::sweep`]).

use varbench_rng::sweep::sweep;
use varbench_stats::special::{beta_inc, gamma_p, gamma_q, ln_gamma};
use varbench_stats::{Binomial, Normal, StudentT};

#[test]
fn normal_cdf_monotone() {
    sweep("normal_cdf_monotone", 64, |case| {
        let mu = case.f64_in(-5.0, 5.0);
        let sigma = case.f64_in(0.1, 4.0);
        let x = case.f64_in(-10.0, 10.0);
        let dx = case.f64_in(0.01, 1.0);
        let n = Normal::new(mu, sigma);
        assert!(n.cdf(x + dx) >= n.cdf(x));
    });
}

#[test]
fn normal_cdf_bounded() {
    sweep("normal_cdf_bounded", 64, |case| {
        let x = case.f64_in(-50.0, 50.0);
        let c = Normal::standard().cdf(x);
        assert!((0.0..=1.0).contains(&c));
    });
}

#[test]
fn student_t_cdf_symmetric() {
    sweep("student_t_cdf_symmetric", 64, |case| {
        let nu = case.f64_in(1.0, 50.0);
        let x = case.f64_in(0.0, 8.0);
        let t = StudentT::new(nu);
        assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-10);
    });
}

#[test]
fn student_t_heavier_tails_than_normal() {
    sweep("student_t_heavier_tails_than_normal", 64, |case| {
        // P(T > x) >= P(Z > x) for any finite nu.
        let nu = case.f64_in(1.0, 30.0);
        let x = case.f64_in(2.0, 6.0);
        let t = StudentT::new(nu);
        let n = Normal::standard();
        assert!(t.sf(x) >= n.sf(x) - 1e-12);
    });
}

#[test]
fn binomial_cdf_monotone_in_k() {
    sweep("binomial_cdf_monotone_in_k", 64, |case| {
        let n = case.u64_in(1, 200);
        let p = case.f64_in(0.01, 0.99);
        let b = Binomial::new(n, p);
        let mut prev = 0.0;
        for k in 0..=n.min(30) {
            let c = b.cdf(k);
            assert!(c + 1e-12 >= prev, "k={k}: {c} < {prev}");
            assert!((0.0..=1.0 + 1e-12).contains(&c));
            prev = c;
        }
    });
}

#[test]
fn gamma_p_q_complement() {
    sweep("gamma_p_q_complement", 64, |case| {
        let a = case.f64_in(0.1, 30.0);
        let x = case.f64_in(0.0, 60.0);
        assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-10);
    });
}

#[test]
fn ln_gamma_recurrence_holds() {
    sweep("ln_gamma_recurrence_holds", 64, |case| {
        // ln Γ(x+1) = ln x + ln Γ(x).
        let x = case.f64_in(0.1, 50.0);
        assert!((ln_gamma(x + 1.0) - x.ln() - ln_gamma(x)).abs() < 1e-8);
    });
}

#[test]
fn beta_inc_monotone_in_x() {
    sweep("beta_inc_monotone_in_x", 64, |case| {
        let a = case.f64_in(0.2, 10.0);
        let b = case.f64_in(0.2, 10.0);
        let x = case.f64_in(0.0, 0.95);
        let dx = case.f64_in(0.001, 0.05);
        assert!(beta_inc(a, b, x + dx) + 1e-12 >= beta_inc(a, b, x));
    });
}

#[test]
fn accuracy_std_bounded_by_half_sqrt_n() {
    sweep("accuracy_std_bounded_by_half_sqrt_n", 64, |case| {
        // σ = sqrt(τ(1−τ)/n) ≤ 0.5/√n, maximal at τ = 1/2.
        let n = case.u64_in(1, 100_000);
        let tau = case.f64_in(0.0, 1.0);
        let sd = Binomial::accuracy_std(n, tau);
        assert!(sd <= 0.5 / (n as f64).sqrt() + 1e-15);
    });
}
