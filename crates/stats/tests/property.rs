//! Property-based tests of the distributions and special functions.

use proptest::prelude::*;
use varbench_stats::special::{beta_inc, gamma_p, gamma_q, ln_gamma};
use varbench_stats::{Binomial, Normal, StudentT};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normal_cdf_monotone(mu in -5.0f64..5.0, sigma in 0.1f64..4.0, x in -10.0f64..10.0, dx in 0.01f64..1.0) {
        let n = Normal::new(mu, sigma);
        prop_assert!(n.cdf(x + dx) >= n.cdf(x));
    }

    #[test]
    fn normal_cdf_bounded(x in -50.0f64..50.0) {
        let c = Normal::standard().cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn student_t_cdf_symmetric(nu in 1.0f64..50.0, x in 0.0f64..8.0) {
        let t = StudentT::new(nu);
        prop_assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn student_t_heavier_tails_than_normal(nu in 1.0f64..30.0, x in 2.0f64..6.0) {
        // P(T > x) >= P(Z > x) for any finite nu.
        let t = StudentT::new(nu);
        let n = Normal::standard();
        prop_assert!(t.sf(x) >= n.sf(x) - 1e-12);
    }

    #[test]
    fn binomial_cdf_monotone_in_k(n in 1u64..200, p in 0.01f64..0.99) {
        let b = Binomial::new(n, p);
        let mut prev = 0.0;
        for k in 0..=n.min(30) {
            let c = b.cdf(k);
            prop_assert!(c + 1e-12 >= prev, "k={k}: {c} < {prev}");
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn gamma_p_q_complement(a in 0.1f64..30.0, x in 0.0f64..60.0) {
        prop_assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence_holds(x in 0.1f64..50.0) {
        // ln Γ(x+1) = ln x + ln Γ(x).
        prop_assert!((ln_gamma(x + 1.0) - x.ln() - ln_gamma(x)).abs() < 1e-8);
    }

    #[test]
    fn beta_inc_monotone_in_x(a in 0.2f64..10.0, b in 0.2f64..10.0, x in 0.0f64..0.95, dx in 0.001f64..0.05) {
        prop_assert!(beta_inc(a, b, x + dx) + 1e-12 >= beta_inc(a, b, x));
    }

    #[test]
    fn accuracy_std_bounded_by_half_sqrt_n(n in 1u64..100_000, tau in 0.0f64..1.0) {
        // σ = sqrt(τ(1−τ)/n) ≤ 0.5/√n, maximal at τ = 1/2.
        let sd = Binomial::accuracy_std(n, tau);
        prop_assert!(sd <= 0.5 / (n as f64).sqrt() + 1e-15);
    }
}
