//! The binomial distribution and the paper's test-set sampling-noise model.

use crate::special::{beta_inc, ln_gamma};

/// A binomial distribution: number of successes in `n` trials of
/// probability `p`.
///
/// Fig. 2 of the paper models the variance of a measured accuracy as
/// binomial: if a pipeline errs with probability `τ` independently on each
/// of `n′` test examples, the observed accuracy has standard deviation
/// `sqrt(τ(1−τ)/n′)` — see [`Binomial::accuracy_std`]. The paper shows this
/// simple model matches the empirically bootstrapped data-sampling variance.
///
/// # Example
///
/// ```
/// use varbench_stats::Binomial;
/// // Glue-RTE: accuracy 0.66 measured on 277 examples.
/// let sd = Binomial::accuracy_std(277, 0.66);
/// assert!((sd - 0.02846).abs() < 1e-4); // ~2.8 % accuracy points
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        Self { n, p }
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `np`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `np(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Probability mass function `P(X = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let n = self.n as f64;
        let k = k as f64;
        let ln_coef = ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0);
        (ln_coef + k * self.p.ln() + (n - k) * (1.0 - self.p).ln()).exp()
    }

    /// Cumulative distribution function `P(X ≤ k)`.
    ///
    /// Uses the incomplete-beta identity
    /// `P(X ≤ k) = I_{1−p}(n−k, k+1)`, exact to special-function precision.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0; // k < n and all mass at n
        }
        let n = self.n as f64;
        let kf = k as f64;
        beta_inc(n - kf, kf + 1.0, 1.0 - self.p)
    }

    /// Standard deviation of an *accuracy* measured on `n` i.i.d. test
    /// examples when the true accuracy is `tau`.
    ///
    /// This is the theoretical curve of the paper's Fig. 2:
    /// `σ(acc) = sqrt(τ(1−τ)/n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `tau` outside `[0, 1]`.
    pub fn accuracy_std(n: u64, tau: f64) -> f64 {
        assert!(n > 0, "test set must be non-empty");
        assert!((0.0..=1.0).contains(&tau), "tau must be in [0,1]");
        (tau * (1.0 - tau) / n as f64).sqrt()
    }

    /// Effective degrees of freedom for correlated errors.
    ///
    /// The paper notes that when test-set errors are correlated (not
    /// i.i.d.), "the degrees of freedom are smaller and the distribution is
    /// wider". With average pairwise error correlation `rho`, the effective
    /// sample size is `n / (1 + (n−1)ρ)`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is outside `[0, 1]`.
    pub fn effective_test_size(n: u64, rho: f64) -> f64 {
        assert!((0.0..=1.0).contains(&rho), "rho must be in [0,1]");
        n as f64 / (1.0 + (n as f64 - 1.0) * rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments() {
        let b = Binomial::new(100, 0.3);
        assert!((b.mean() - 30.0).abs() < 1e-12);
        assert!((b.variance() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(30, 0.37);
        let total: f64 = (0..=30).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn pmf_known_values() {
        // X ~ Bin(4, 0.5): P(X=2) = 6/16.
        let b = Binomial::new(4, 0.5);
        assert!((b.pmf(2) - 0.375).abs() < 1e-13);
        assert!((b.pmf(0) - 0.0625).abs() < 1e-13);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let b = Binomial::new(25, 0.66);
        let mut acc = 0.0;
        for k in 0..=25 {
            acc += b.pmf(k);
            assert!((b.cdf(k) - acc).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn cdf_extremes() {
        let b = Binomial::new(10, 0.4);
        assert_eq!(b.cdf(10), 1.0);
        assert!(b.cdf(0) > 0.0);
        let degenerate = Binomial::new(10, 0.0);
        assert_eq!(degenerate.cdf(0), 1.0);
    }

    #[test]
    fn accuracy_std_matches_paper_cases() {
        // Fig. 2 case studies: σ at the empirical test sizes.
        // CIFAR10: τ=0.91, n'=10000 → ~0.286% accuracy.
        let cifar = Binomial::accuracy_std(10_000, 0.91);
        assert!((cifar - 0.00286).abs() < 5e-5, "{cifar}");
        // SST2: τ=0.95, n'=872 → ~0.74%.
        let sst2 = Binomial::accuracy_std(872, 0.95);
        assert!((sst2 - 0.00738).abs() < 5e-5, "{sst2}");
        // RTE: τ=0.66, n'=277 → ~2.85%.
        let rte = Binomial::accuracy_std(277, 0.66);
        assert!((rte - 0.02846).abs() < 5e-5, "{rte}");
    }

    #[test]
    fn accuracy_std_decreases_with_n() {
        let s1 = Binomial::accuracy_std(100, 0.8);
        let s2 = Binomial::accuracy_std(10_000, 0.8);
        assert!(s2 < s1);
        // 100x more data → 10x smaller std.
        assert!((s1 / s2 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn effective_test_size_shrinks_with_correlation() {
        assert_eq!(Binomial::effective_test_size(1000, 0.0), 1000.0);
        let eff = Binomial::effective_test_size(1000, 0.01);
        assert!(
            eff < 100.0,
            "correlation should slash effective size: {eff}"
        );
        assert!((Binomial::effective_test_size(1000, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn invalid_p_rejected() {
        Binomial::new(10, -0.1);
    }
}
