//! Power analysis: Noether's sample-size determination for the
//! Mann–Whitney-type test of `P(A > B)` (paper Appendix C.3, Fig. C.1).

use crate::normal::standard_normal_quantile;

/// Noether's minimal sample size for reliably detecting
/// `P(A > B) > gamma`.
///
/// `N ≥ ((Φ⁻¹(1−α) − Φ⁻¹(β)) / (√6 (1/2 − γ)))²`
///
/// where `α` is the false-positive rate, `β` the false-negative rate, and
/// `γ` the meaningfulness threshold on `P(A > B)`. With the paper's
/// recommended `α = β = 0.05` and `γ = 0.75` this gives **29** trainings.
///
/// # Panics
///
/// Panics if `alpha`/`beta` outside `(0, 1)` or `gamma` in `[0.5 − ε, 0.5 + ε]`
/// (the formula diverges at γ = 0.5) or gamma outside `(0, 1)`.
///
/// # Example
///
/// ```
/// use varbench_stats::power::noether_sample_size;
/// assert_eq!(noether_sample_size(0.75, 0.05, 0.05), 29);
/// ```
pub fn noether_sample_size(gamma: f64, alpha: f64, beta: f64) -> usize {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
    assert!(gamma > 0.0 && gamma < 1.0, "gamma must be in (0,1)");
    assert!(
        (gamma - 0.5).abs() > 1e-9,
        "gamma must differ from 0.5 (no effect to detect)"
    );
    let za = standard_normal_quantile(1.0 - alpha);
    let zb = standard_normal_quantile(beta);
    let num = za - zb;
    let den = 6.0_f64.sqrt() * (0.5 - gamma);
    (num / den).powi(2).ceil() as usize
}

/// The full sample-size curve of Fig. C.1: minimum `N` for each `gamma`.
///
/// Returns `(gamma, N)` pairs for `gamma` swept over `points` values in
/// `(0.5, hi]`.
///
/// # Panics
///
/// Panics if `hi <= 0.5`, `hi >= 1.0`, or `points == 0`.
pub fn noether_curve(hi: f64, points: usize, alpha: f64, beta: f64) -> Vec<(f64, usize)> {
    assert!(hi > 0.5 && hi < 1.0, "hi must be in (0.5, 1)");
    assert!(points > 0, "points must be > 0");
    (1..=points)
        .map(|i| {
            let gamma = 0.5 + (hi - 0.5) * i as f64 / points as f64;
            (gamma, noether_sample_size(gamma, alpha, beta))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_recommended_sample_size_is_29() {
        // Appendix C.3: "the minimal sample size required ... is reasonably
        // small; 29 trainings" for γ = 0.75, α = β = 0.05.
        assert_eq!(noether_sample_size(0.75, 0.05, 0.05), 29);
    }

    #[test]
    fn small_effects_need_huge_samples() {
        // "detecting reliably P(A>B) < 0.6 is unpractical with minimal
        // sample sizes quickly moving above 500" — at γ=0.55 we need >700.
        assert!(noether_sample_size(0.55, 0.05, 0.05) > 700);
        assert!(noether_sample_size(0.6, 0.05, 0.05) > 100);
    }

    #[test]
    fn monotone_decreasing_in_gamma() {
        let mut prev = usize::MAX;
        for i in 1..40 {
            let gamma = 0.5 + 0.0125 * i as f64;
            let n = noether_sample_size(gamma, 0.05, 0.05);
            assert!(n <= prev, "gamma={gamma} n={n} prev={prev}");
            prev = n;
        }
    }

    #[test]
    fn stricter_error_rates_need_more_samples() {
        let loose = noether_sample_size(0.75, 0.05, 0.2);
        let strict = noether_sample_size(0.75, 0.05, 0.05);
        assert!(strict > loose);
        let stricter = noether_sample_size(0.75, 0.01, 0.01);
        assert!(stricter > strict);
    }

    #[test]
    fn symmetric_below_half() {
        // The formula is symmetric in |1/2 - γ|.
        assert_eq!(
            noether_sample_size(0.4, 0.05, 0.05),
            noether_sample_size(0.6, 0.05, 0.05)
        );
    }

    #[test]
    fn curve_covers_range() {
        let curve = noether_curve(0.95, 20, 0.05, 0.05);
        assert_eq!(curve.len(), 20);
        assert!(curve.first().unwrap().1 >= curve.last().unwrap().1);
        assert!((curve.last().unwrap().0 - 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gamma must differ from 0.5")]
    fn gamma_half_rejected() {
        noether_sample_size(0.5, 0.05, 0.05);
    }
}
