//! Student's t distribution.

use crate::normal::standard_normal_quantile;
use crate::special::beta_inc;

/// Student's t distribution with `nu` degrees of freedom.
///
/// Backs the t-tests in [`crate::tests::parametric`], used by the paper's
/// discussion of average comparisons ("a t-test only differs from an
/// average in that the threshold is computed based on the variance ... and
/// the sample size").
///
/// # Example
///
/// ```
/// use varbench_stats::StudentT;
/// let t = StudentT::new(10.0);
/// // Published critical value: t₀.₉₇₅,₁₀ = 2.2281388...
/// assert!((t.quantile(0.975) - 2.228138852).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
}

impl StudentT {
    /// Creates a t distribution with `nu > 0` degrees of freedom.
    ///
    /// # Panics
    ///
    /// Panics if `nu <= 0` or not finite.
    pub fn new(nu: f64) -> Self {
        assert!(nu.is_finite() && nu > 0.0, "nu must be finite and > 0");
        Self { nu }
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.nu
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 0.5;
        }
        let x = self.nu / (self.nu + t * t);
        let p = 0.5 * beta_inc(self.nu / 2.0, 0.5, x);
        if t > 0.0 {
            1.0 - p
        } else {
            p
        }
    }

    /// Survival function `P(T > t)`.
    pub fn sf(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// Two-sided tail probability `P(|T| > |t|)`.
    pub fn two_sided_p(&self, t: f64) -> f64 {
        let x = self.nu / (self.nu + t * t);
        beta_inc(self.nu / 2.0, 0.5, x)
    }

    /// Quantile function (inverse CDF).
    ///
    /// Newton iteration seeded with the normal quantile; converges in a few
    /// steps for `nu >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `p` not strictly inside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        if (p - 0.5).abs() < 1e-15 {
            return 0.0;
        }
        // Initial guess: normal quantile, inflated for heavy tails.
        let z = standard_normal_quantile(p);
        let g1 = (z.powi(3) + z) / (4.0 * self.nu);
        let mut t = z + g1;
        // Newton with the exact pdf.
        for _ in 0..60 {
            let f = self.cdf(t) - p;
            let d = self.pdf(t);
            if d <= 0.0 {
                break;
            }
            let step = f / d;
            t -= step;
            if step.abs() < 1e-13 * (1.0 + t.abs()) {
                break;
            }
        }
        t
    }

    /// Probability density function.
    pub fn pdf(&self, t: f64) -> f64 {
        use crate::special::ln_gamma;
        let nu = self.nu;
        let ln_c = ln_gamma((nu + 1.0) / 2.0)
            - ln_gamma(nu / 2.0)
            - 0.5 * (nu * std::f64::consts::PI).ln();
        (ln_c - (nu + 1.0) / 2.0 * (1.0 + t * t / nu).ln()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_symmetry() {
        let t = StudentT::new(7.0);
        for &x in &[0.5, 1.3, 2.9] {
            assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-12);
        }
        assert!((t.cdf(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn quantile_reference_values() {
        // Published critical values.
        assert!((StudentT::new(1.0).quantile(0.975) - 12.7062047362).abs() < 1e-5);
        assert!((StudentT::new(5.0).quantile(0.975) - 2.5705818366).abs() < 1e-7);
        assert!((StudentT::new(10.0).quantile(0.95) - 1.8124611228).abs() < 1e-7);
        assert!((StudentT::new(30.0).quantile(0.975) - 2.0422724563).abs() < 1e-7);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let t = StudentT::new(4.0);
        for i in 1..40 {
            let p = i as f64 / 40.0;
            assert!((t.cdf(t.quantile(p)) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn approaches_normal_for_large_nu() {
        let t = StudentT::new(1e6);
        assert!((t.quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-4);
        assert!((t.cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-6);
    }

    #[test]
    fn two_sided_consistency() {
        let t = StudentT::new(12.0);
        let x = 1.7;
        let expect = 2.0 * t.sf(x);
        assert!((t.two_sided_p(x) - expect).abs() < 1e-12);
    }

    #[test]
    fn cauchy_special_case() {
        // nu = 1 is the Cauchy distribution: cdf(x) = 1/2 + atan(x)/π.
        let t = StudentT::new(1.0);
        for &x in &[-2.0f64, -0.5, 0.3, 1.7] {
            let expected = 0.5 + x.atan() / std::f64::consts::PI;
            assert!((t.cdf(x) - expected).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let t = StudentT::new(3.0);
        let steps = 40_000;
        let (lo, hi) = (-60.0, 60.0);
        let h = (hi - lo) / steps as f64;
        let mut total = 0.0;
        for i in 0..=steps {
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            total += w * t.pdf(lo + i as f64 * h);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-4, "integral {total}");
    }

    #[test]
    #[should_panic(expected = "nu must be finite and > 0")]
    fn invalid_nu_rejected() {
        StudentT::new(-1.0);
    }
}
