//! Simple ordinary least squares.
//!
//! Used by the Fig. 3/Fig. 6 harness to calibrate the paper's
//! `δ = 1.9952 σ` threshold: the paper set that constant "by linear
//! regression so that δ matches the average improvements obtained from
//! paperswithcode.com".

use crate::describe::mean;

/// Result of a univariate OLS fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlsFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

impl OlsFit {
    /// Predicts `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y ≈ a + b x` by least squares.
///
/// # Panics
///
/// Panics if lengths differ, fewer than 2 points, or `x` is constant.
///
/// # Example
///
/// ```
/// let fit = varbench_stats::regression::ols(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]);
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
pub fn ols(x: &[f64], y: &[f64]) -> OlsFit {
    assert_eq!(x.len(), y.len(), "ols length mismatch");
    assert!(x.len() >= 2, "ols requires at least 2 points");
    let mx = mean(x);
    let my = mean(y);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (xi, yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "ols requires non-constant x");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    OlsFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fits `y ≈ b x` (regression through the origin).
///
/// This is the form used to calibrate δ against σ: published improvements
/// are regressed on the benchmark standard deviation with no intercept,
/// giving the multiplier 1.9952 in the paper.
///
/// # Panics
///
/// Panics if lengths differ, empty inputs, or all `x` are zero.
pub fn ols_through_origin(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "ols length mismatch");
    assert!(!x.is_empty(), "ols requires at least 1 point");
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    assert!(sxx > 0.0, "ols requires some non-zero x");
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    sxy / sxx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -0.5 + 3.0 * v).collect();
        let fit = ols(&x, &y);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 0.5).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r_squared_below_one() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 * v + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = ols(&x, &y);
        assert!((fit.slope - 2.0).abs() < 0.05);
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.9);
    }

    #[test]
    fn predict_interpolates() {
        let fit = ols(&[0.0, 2.0], &[1.0, 5.0]);
        assert!((fit.predict(1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn through_origin_known() {
        // y = 2x exactly.
        let b = ols_through_origin(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
        assert!((b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn through_origin_least_squares_property() {
        // Minimizes Σ(y - bx)²; compare against small perturbations.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.2, 3.7, 6.5, 7.4];
        let b = ols_through_origin(&x, &y);
        let loss = |b: f64| -> f64 { x.iter().zip(&y).map(|(xi, yi)| (yi - b * xi).powi(2)).sum() };
        assert!(loss(b) <= loss(b + 0.01));
        assert!(loss(b) <= loss(b - 0.01));
    }

    #[test]
    #[should_panic(expected = "ols requires non-constant x")]
    fn constant_x_rejected() {
        ols(&[1.0, 1.0], &[2.0, 3.0]);
    }
}
