//! Gaussian kernel density estimation.
//!
//! Used by the Fig. G.3 reproduction to visualize the per-source
//! performance distributions next to their Shapiro–Wilk p-values.

use crate::describe::{quantile, std_dev};

/// A Gaussian kernel density estimator.
///
/// # Example
///
/// ```
/// use varbench_stats::kde::Kde;
/// let data: Vec<f64> = (0..100).map(|i| (i % 10) as f64 / 10.0).collect();
/// let kde = Kde::fit(&data);
/// let density = kde.evaluate(0.5);
/// assert!(density > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kde {
    data: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Fits a KDE with Silverman's rule-of-thumb bandwidth:
    /// `h = 0.9 min(σ̂, IQR/1.34) n^{-1/5}`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() < 2`.
    pub fn fit(data: &[f64]) -> Self {
        assert!(data.len() >= 2, "KDE requires at least 2 points");
        let sd = std_dev(data);
        let iqr = quantile(data, 0.75) - quantile(data, 0.25);
        let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
        // Degenerate constant data: fall back to a nominal bandwidth so the
        // estimator stays a valid density (a narrow bump at the point).
        let spread = if spread > 0.0 { spread } else { 1e-9 };
        let h = 0.9 * spread * (data.len() as f64).powf(-0.2);
        Self {
            data: data.to_vec(),
            bandwidth: h,
        }
    }

    /// Fits a KDE with an explicit bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `bandwidth <= 0`.
    pub fn with_bandwidth(data: &[f64], bandwidth: f64) -> Self {
        assert!(!data.is_empty(), "KDE requires data");
        assert!(bandwidth > 0.0, "bandwidth must be > 0");
        Self {
            data: data.to_vec(),
            bandwidth,
        }
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Evaluates the density estimate at `x`.
    pub fn evaluate(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / (self.data.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
        self.data
            .iter()
            .map(|&xi| (-0.5 * ((x - xi) / h).powi(2)).exp())
            .sum::<f64>()
            * norm
    }

    /// Evaluates the density on `points` evenly spaced positions spanning
    /// the data range padded by 3 bandwidths.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn grid(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "grid requires at least 2 points");
        let lo = self.data.iter().cloned().fold(f64::INFINITY, f64::min) - 3.0 * self.bandwidth;
        let hi = self.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 3.0 * self.bandwidth;
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.evaluate(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_rng::Rng;

    #[test]
    fn density_integrates_to_one() {
        let mut rng = Rng::seed_from_u64(1);
        let data: Vec<f64> = (0..200).map(|_| rng.normal(0.0, 1.0)).collect();
        let kde = Kde::fit(&data);
        let grid = kde.grid(2000);
        let mut total = 0.0;
        for w in grid.windows(2) {
            let dx = w[1].0 - w[0].0;
            total += 0.5 * (w[0].1 + w[1].1) * dx;
        }
        assert!((total - 1.0).abs() < 0.02, "integral {total}");
    }

    #[test]
    fn density_peaks_near_mode() {
        let mut rng = Rng::seed_from_u64(2);
        let data: Vec<f64> = (0..500).map(|_| rng.normal(3.0, 0.5)).collect();
        let kde = Kde::fit(&data);
        assert!(kde.evaluate(3.0) > kde.evaluate(5.0));
        assert!(kde.evaluate(3.0) > kde.evaluate(1.0));
    }

    #[test]
    fn bimodal_data_has_two_bumps() {
        let mut rng = Rng::seed_from_u64(3);
        let mut data: Vec<f64> = (0..300).map(|_| rng.normal(-2.0, 0.3)).collect();
        data.extend((0..300).map(|_| rng.normal(2.0, 0.3)));
        let kde = Kde::fit(&data);
        let at_modes = kde.evaluate(-2.0).min(kde.evaluate(2.0));
        let at_valley = kde.evaluate(0.0);
        assert!(at_modes > 2.0 * at_valley);
    }

    #[test]
    fn explicit_bandwidth_respected() {
        let kde = Kde::with_bandwidth(&[0.0, 1.0], 0.5);
        assert_eq!(kde.bandwidth(), 0.5);
    }

    #[test]
    fn constant_data_does_not_panic() {
        let kde = Kde::fit(&[1.0, 1.0, 1.0]);
        assert!(kde.evaluate(1.0).is_finite());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be > 0")]
    fn nonpositive_bandwidth_rejected() {
        Kde::with_bandwidth(&[1.0], 0.0);
    }
}
