//! Percentile-bootstrap confidence intervals (paper Appendix C.5).
//!
//! The paper's recommended test computes `P(A > B)` from paired performance
//! measures and quantifies its reliability with a non-parametric percentile
//! bootstrap: resample the pairs with replacement K times, recompute the
//! statistic on each resample, and take the α/2 and 1−α/2 percentiles as
//! the confidence bounds.

use crate::describe::quantile_sorted;
use varbench_rng::Rng;

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The point estimate on the original sample.
    pub estimate: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
    /// The confidence level `1 − α`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval contains `v`.
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} [{:.4}, {:.4}] @ {:.0}%",
            self.estimate,
            self.lo,
            self.hi,
            self.confidence * 100.0
        )
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic of a
/// single sample.
///
/// Draws `resamples` bootstrap replicates of `data`, evaluates `stat` on
/// each, and returns the `alpha/2` and `1 − alpha/2` empirical percentiles.
///
/// # Panics
///
/// Panics if `data` is empty, `resamples == 0`, or `alpha` outside `(0, 1)`.
///
/// # Example
///
/// ```
/// use varbench_rng::Rng;
/// use varbench_stats::bootstrap::percentile_ci;
/// use varbench_stats::describe::mean;
///
/// let data: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
/// let mut rng = Rng::seed_from_u64(7);
/// let ci = percentile_ci(&data, |xs| mean(xs), 2000, 0.05, &mut rng);
/// assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
/// ```
pub fn percentile_ci(
    data: &[f64],
    stat: impl Fn(&[f64]) -> f64,
    resamples: usize,
    alpha: f64,
    rng: &mut Rng,
) -> ConfidenceInterval {
    assert!(!data.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "resamples must be > 0");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let estimate = stat(data);
    let n = data.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; n];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = data[rng.range_usize(n)];
        }
        stats.push(stat(&buf));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN bootstrap statistic"));
    ConfidenceInterval {
        estimate,
        lo: quantile_sorted(&stats, alpha / 2.0),
        hi: quantile_sorted(&stats, 1.0 - alpha / 2.0),
        confidence: 1.0 - alpha,
    }
}

/// Percentile-bootstrap confidence interval for a statistic of *paired*
/// samples: resampling preserves the pairing `(a_i, b_i)`, as required by
/// the paper's paired-comparison procedure (Appendix C.2/C.5).
///
/// # Panics
///
/// Panics if the samples are empty or lengths differ, `resamples == 0`, or
/// `alpha` outside `(0, 1)`.
pub fn percentile_ci_paired(
    a: &[f64],
    b: &[f64],
    stat: impl Fn(&[f64], &[f64]) -> f64,
    resamples: usize,
    alpha: f64,
    rng: &mut Rng,
) -> ConfidenceInterval {
    assert_eq!(a.len(), b.len(), "paired bootstrap requires equal lengths");
    assert!(!a.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "resamples must be > 0");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let estimate = stat(a, b);
    let n = a.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut ra = vec![0.0; n];
    let mut rb = vec![0.0; n];
    for _ in 0..resamples {
        for i in 0..n {
            let j = rng.range_usize(n);
            ra[i] = a[j];
            rb[i] = b[j];
        }
        stats.push(stat(&ra, &rb));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN bootstrap statistic"));
    ConfidenceInterval {
        estimate,
        lo: quantile_sorted(&stats, alpha / 2.0),
        hi: quantile_sorted(&stats, 1.0 - alpha / 2.0),
        confidence: 1.0 - alpha,
    }
}

/// The paper's estimator of the probability of outperforming,
/// `P(A > B) = (1/k) Σ 1{a_i > b_i}` over paired measures (Eq. 9).
///
/// # Panics
///
/// Panics if samples are empty or lengths differ.
pub fn prob_outperform(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "prob_outperform requires pairs");
    assert!(!a.is_empty(), "prob_outperform of empty sample");
    let wins = a.iter().zip(b).filter(|(x, y)| x > y).count();
    wins as f64 / a.len() as f64
}

/// Percentile-bootstrap confidence interval for `P(A > B)` on paired
/// measures — the exact procedure of the paper's Appendix C.4–C.5.
///
/// Specialized fast path: whether pair `j` is a win (`a_j > b_j`) does not
/// depend on the resample it lands in, so the win indicators are computed
/// once up front and each bootstrap replicate reduces to an integer count
/// over resampled indices — no floating-point compares or pair-buffer
/// writes inside the resample loop. The RNG draw sequence and every
/// replicate's statistic are identical to routing
/// [`prob_outperform`] through [`percentile_ci_paired`], so the interval
/// is bit-for-bit unchanged.
///
/// # Panics
///
/// As [`percentile_ci_paired`].
pub fn percentile_ci_prob_outperform(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    alpha: f64,
    rng: &mut Rng,
) -> ConfidenceInterval {
    assert_eq!(a.len(), b.len(), "paired bootstrap requires equal lengths");
    assert!(!a.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "resamples must be > 0");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let estimate = prob_outperform(a, b);
    let n = a.len();
    // The indicator construction and the sort/quantile tail are shared
    // with the split-stream driver, so the two paths can never drift on
    // tie semantics or interval assembly; only the replicate loop (which
    // must thread the caller's single RNG) stays inline.
    let wins = win_indicators(a, b);
    let mut stats = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut count = 0u32;
        for _ in 0..n {
            count += wins[rng.range_usize(n)];
        }
        stats.push(count as f64 / n as f64);
    }
    ci_from_replicates(estimate, stats, alpha)
}

// ----------------------------------------------------------------------
// Split-stream bootstrap (parallelizable replicates)
// ----------------------------------------------------------------------
//
// The serial drivers above thread ONE generator through every replicate,
// which makes the resample loop RNG-sequential: replicate r+1 cannot
// start until replicate r has consumed its draws. The `*_split` variants
// below instead charge each replicate to its own child generator — one
// [`Rng::split`] child per resample, split off up front in replicate
// order — so the replicates become pure functions of `(inputs, child
// seed)` and can be fanned across cores with bit-identical results for
// any thread count (the executor in `varbench-core` does exactly that).
//
// The split stream is a DIFFERENT randomization than the serial stream:
// the intervals it produces are equally valid draws from the same
// bootstrap distribution, but not the same bytes. Callers that memoize
// downstream results must therefore key the two code paths separately —
// see `RunContext::measure_key` in `varbench-core`.

/// Draws one [`Rng::split`] child seed per replicate, in replicate order.
///
/// Consumes exactly `resamples` draws from `rng`; seeding
/// `Rng::seed_from_u64` with element `r` reproduces the generator
/// `rng.split()` would have returned as the `r`-th child.
pub fn split_replicate_seeds(rng: &mut Rng, resamples: usize) -> Vec<u64> {
    (0..resamples).map(|_| rng.next_u64()).collect()
}

/// The win indicators of the paired `P(A > B)` statistic: `1` where
/// `a_i > b_i` (ties are not wins). Computed once; every bootstrap
/// replicate then reduces to an integer count over resampled indices.
///
/// # Panics
///
/// Panics if samples are empty or lengths differ.
pub fn win_indicators(a: &[f64], b: &[f64]) -> Vec<u32> {
    assert_eq!(a.len(), b.len(), "paired bootstrap requires equal lengths");
    assert!(!a.is_empty(), "bootstrap of empty sample");
    a.iter().zip(b).map(|(x, y)| u32::from(x > y)).collect()
}

/// One split-stream replicate of the `P(A > B)` bootstrap: seeds a child
/// generator and counts wins over `wins.len()` resampled indices. A pure
/// function of `(wins, seed)` — the unit the parallel driver fans out.
pub fn prob_outperform_replicate(wins: &[u32], seed: u64) -> f64 {
    let mut rng = Rng::seed_from_u64(seed);
    let n = wins.len();
    let mut count = 0u32;
    for _ in 0..n {
        count += wins[rng.range_usize(n)];
    }
    count as f64 / n as f64
}

/// Assembles a [`ConfidenceInterval`] from replicate statistics: sort,
/// take the `alpha/2` and `1 − alpha/2` percentiles. Shared tail of
/// every bootstrap driver.
///
/// # Panics
///
/// Panics if `stats` is empty, a statistic is NaN, or `alpha` outside
/// `(0, 1)`.
pub fn ci_from_replicates(estimate: f64, mut stats: Vec<f64>, alpha: f64) -> ConfidenceInterval {
    assert!(!stats.is_empty(), "resamples must be > 0");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    stats.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN bootstrap statistic"));
    ConfidenceInterval {
        estimate,
        lo: quantile_sorted(&stats, alpha / 2.0),
        hi: quantile_sorted(&stats, 1.0 - alpha / 2.0),
        confidence: 1.0 - alpha,
    }
}

/// Split-stream percentile bootstrap for `P(A > B)` — the serial driver
/// of the parallelizable path: same replicate kernel, computed on the
/// calling thread. The parallel fan-out in `varbench-core` is
/// bit-identical to this function for any thread count.
///
/// # Panics
///
/// As [`percentile_ci_prob_outperform`].
pub fn percentile_ci_prob_outperform_split(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    alpha: f64,
    rng: &mut Rng,
) -> ConfidenceInterval {
    assert!(resamples > 0, "resamples must be > 0");
    let estimate = prob_outperform(a, b);
    let wins = win_indicators(a, b);
    let seeds = split_replicate_seeds(rng, resamples);
    let stats: Vec<f64> = seeds
        .iter()
        .map(|&s| prob_outperform_replicate(&wins, s))
        .collect();
    ci_from_replicates(estimate, stats, alpha)
}

/// One split-stream replicate of the generic *paired* bootstrap: seeds a
/// child generator, resamples the pairs `(a_j, b_j)` into the caller's
/// `ra`/`rb` buffers, and evaluates `stat` on the resample. A pure
/// function of `(a, b, stat, seed)` — the unit the parallel driver in
/// `varbench-core` fans out. The resampling loop is verbatim the body of
/// [`percentile_ci_paired`]'s replicate loop, just drawing from the child
/// stream.
///
/// # Panics
///
/// Panics if `ra`/`rb` lengths differ from `a`/`b` or the samples are
/// empty.
// lint: no-alloc
pub fn paired_replicate(
    a: &[f64],
    b: &[f64],
    stat: impl Fn(&[f64], &[f64]) -> f64,
    seed: u64,
    ra: &mut [f64],
    rb: &mut [f64],
) -> f64 {
    let n = a.len();
    assert!(n > 0, "bootstrap of empty sample");
    assert!(
        b.len() == n && ra.len() == n && rb.len() == n,
        "paired bootstrap requires equal lengths"
    );
    let mut rng = Rng::seed_from_u64(seed);
    for i in 0..n {
        let j = rng.range_usize(n);
        ra[i] = a[j];
        rb[i] = b[j];
    }
    stat(ra, rb)
}

/// Split-stream percentile bootstrap for an arbitrary statistic of
/// *paired* samples — the `*_split` analog of [`percentile_ci_paired`],
/// serial driver of the parallelizable path. Each replicate resamples the
/// pairs under its own child generator ([`paired_replicate`]), so
/// replicates are pure `(inputs, seed)` units; the parallel fan-out in
/// `varbench-core` is bit-identical to this function for any thread
/// count. Like every `*_split` driver this is a *different* randomization
/// than the serial [`percentile_ci_paired`] stream (same estimate,
/// equally valid bounds — callers must key caches accordingly).
///
/// # Panics
///
/// As [`percentile_ci_paired`].
pub fn percentile_ci_paired_split(
    a: &[f64],
    b: &[f64],
    stat: impl Fn(&[f64], &[f64]) -> f64,
    resamples: usize,
    alpha: f64,
    rng: &mut Rng,
) -> ConfidenceInterval {
    assert_eq!(a.len(), b.len(), "paired bootstrap requires equal lengths");
    assert!(!a.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "resamples must be > 0");
    let estimate = stat(a, b);
    let n = a.len();
    let seeds = split_replicate_seeds(rng, resamples);
    let mut ra = vec![0.0; n];
    let mut rb = vec![0.0; n];
    let stats: Vec<f64> = seeds
        .iter()
        .map(|&s| paired_replicate(a, b, &stat, s, &mut ra, &mut rb))
        .collect();
    ci_from_replicates(estimate, stats, alpha)
}

/// Split-stream percentile bootstrap for an arbitrary statistic of a
/// single sample: the `*_split` analog of [`percentile_ci`]. Each
/// replicate resamples under its own child generator, so replicates are
/// independent units (parallelizable; different — equally valid — draws
/// than the serial driver).
///
/// # Panics
///
/// As [`percentile_ci`].
pub fn percentile_ci_split(
    data: &[f64],
    stat: impl Fn(&[f64]) -> f64,
    resamples: usize,
    alpha: f64,
    rng: &mut Rng,
) -> ConfidenceInterval {
    assert!(!data.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "resamples must be > 0");
    let estimate = stat(data);
    let n = data.len();
    let seeds = split_replicate_seeds(rng, resamples);
    let mut buf = vec![0.0; n];
    let stats: Vec<f64> = seeds
        .iter()
        .map(|&seed| {
            let mut child = Rng::seed_from_u64(seed);
            for slot in buf.iter_mut() {
                *slot = data[child.range_usize(n)];
            }
            stat(&buf)
        })
        .collect();
    ci_from_replicates(estimate, stats, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::mean;

    #[test]
    fn ci_brackets_estimate() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut rng = Rng::seed_from_u64(1);
        let ci = percentile_ci(&data, mean, 1000, 0.05, &mut rng);
        assert!(ci.lo <= ci.estimate);
        assert!(ci.estimate <= ci.hi);
        assert!(ci.width() > 0.0);
        assert_eq!(ci.confidence, 0.95);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..20).map(|i| (i % 5) as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| (i % 5) as f64).collect();
        let mut rng = Rng::seed_from_u64(2);
        let ci_small = percentile_ci(&small, mean, 1000, 0.05, &mut rng);
        let ci_large = percentile_ci(&large, mean, 1000, 0.05, &mut rng);
        assert!(ci_large.width() < ci_small.width());
    }

    #[test]
    fn ci_coverage_of_true_mean() {
        // ~95% of CIs over repeated experiments should contain the truth.
        let mut hits = 0;
        let trials = 200;
        for t in 0..trials {
            let mut data_rng = Rng::seed_from_u64(1000 + t);
            let data: Vec<f64> = (0..60).map(|_| data_rng.normal(5.0, 2.0)).collect();
            let mut boot_rng = Rng::seed_from_u64(2000 + t);
            let ci = percentile_ci(&data, mean, 500, 0.05, &mut boot_rng);
            if ci.contains(5.0) {
                hits += 1;
            }
        }
        let coverage = hits as f64 / trials as f64;
        assert!(coverage > 0.85, "coverage {coverage}");
    }

    #[test]
    fn prob_outperform_extremes() {
        assert_eq!(prob_outperform(&[2.0, 3.0], &[1.0, 1.0]), 1.0);
        assert_eq!(prob_outperform(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        // Ties count as not outperforming.
        assert_eq!(prob_outperform(&[1.0, 2.0], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn prob_outperform_symmetry() {
        let a = [0.3, 0.9, 0.7, 0.1];
        let b = [0.4, 0.5, 0.2, 0.8];
        // No ties → P(A>B) + P(B>A) = 1.
        assert!((prob_outperform(&a, &b) + prob_outperform(&b, &a) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn paired_ci_detects_clear_winner() {
        let a: Vec<f64> = (0..30).map(|i| 1.0 + (i % 3) as f64 * 0.01).collect();
        let b: Vec<f64> = (0..30).map(|i| 0.5 + (i % 4) as f64 * 0.01).collect();
        let mut rng = Rng::seed_from_u64(3);
        let ci = percentile_ci_prob_outperform(&a, &b, 1000, 0.05, &mut rng);
        assert_eq!(ci.estimate, 1.0);
        assert!(ci.lo > 0.5, "lower bound {}", ci.lo);
    }

    #[test]
    fn paired_ci_indifferent_under_null() {
        // a and b from the same distribution: CI should include 0.5.
        let mut gen = Rng::seed_from_u64(4);
        let a: Vec<f64> = (0..50).map(|_| gen.normal(0.0, 1.0)).collect();
        let b: Vec<f64> = (0..50).map(|_| gen.normal(0.0, 1.0)).collect();
        let mut rng = Rng::seed_from_u64(5);
        let ci = percentile_ci_prob_outperform(&a, &b, 2000, 0.05, &mut rng);
        assert!(ci.contains(0.5), "{ci}");
    }

    #[test]
    fn fast_prob_outperform_ci_matches_generic_path() {
        // The win-indicator fast path must be bit-identical to routing the
        // statistic through the generic paired bootstrap (same RNG draws,
        // same replicate values, same quantiles).
        let mut gen = Rng::seed_from_u64(40);
        let a: Vec<f64> = (0..37).map(|_| gen.normal(0.0, 1.0)).collect();
        let b: Vec<f64> = (0..37).map(|_| gen.normal(0.1, 1.0)).collect();
        let mut r1 = Rng::seed_from_u64(41);
        let mut r2 = Rng::seed_from_u64(41);
        let fast = percentile_ci_prob_outperform(&a, &b, 700, 0.1, &mut r1);
        let generic = percentile_ci_paired(&a, &b, prob_outperform, 700, 0.1, &mut r2);
        assert_eq!(fast, generic);
        // Both must leave the RNG in the same state.
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn split_seeds_match_rng_split_children() {
        // Element r of the seed vector reproduces the generator that the
        // r-th `Rng::split` call would have produced.
        let mut a = Rng::seed_from_u64(50);
        let mut b = a.clone();
        let seeds = split_replicate_seeds(&mut a, 4);
        for (r, &s) in seeds.iter().enumerate() {
            let mut from_seed = Rng::seed_from_u64(s);
            let mut from_split = b.split();
            assert_eq!(from_seed.next_u64(), from_split.next_u64(), "child {r}");
        }
        // Both parents consumed the same four draws.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_ci_brackets_estimate_and_covers_null() {
        let mut gen = Rng::seed_from_u64(51);
        let a: Vec<f64> = (0..40).map(|_| gen.normal(0.0, 1.0)).collect();
        let b: Vec<f64> = (0..40).map(|_| gen.normal(0.0, 1.0)).collect();
        let mut rng = Rng::seed_from_u64(52);
        let ci = percentile_ci_prob_outperform_split(&a, &b, 2000, 0.05, &mut rng);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi, "{ci}");
        assert!(ci.contains(0.5), "null CI must cover 0.5: {ci}");
        assert_eq!(ci.estimate, prob_outperform(&a, &b));
    }

    #[test]
    fn split_ci_is_deterministic_and_differs_from_serial() {
        let a: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.9).cos()).collect();
        let split1 =
            percentile_ci_prob_outperform_split(&a, &b, 500, 0.05, &mut Rng::seed_from_u64(53));
        let split2 =
            percentile_ci_prob_outperform_split(&a, &b, 500, 0.05, &mut Rng::seed_from_u64(53));
        assert_eq!(split1, split2, "split driver must be deterministic");
        let serial = percentile_ci_prob_outperform(&a, &b, 500, 0.05, &mut Rng::seed_from_u64(53));
        // Same point estimate; the interval bounds come from a different
        // (equally valid) randomization and will not match bitwise.
        assert_eq!(split1.estimate, serial.estimate);
        assert_ne!((split1.lo, split1.hi), (serial.lo, serial.hi));
    }

    #[test]
    fn split_driver_consumes_exactly_one_draw_per_replicate() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, 2.5, 1.0];
        let mut used = Rng::seed_from_u64(54);
        let mut reference = used.clone();
        percentile_ci_prob_outperform_split(&a, &b, 37, 0.1, &mut used);
        for _ in 0..37 {
            reference.next_u64();
        }
        assert_eq!(used.next_u64(), reference.next_u64());
    }

    #[test]
    fn paired_split_ci_deterministic_and_differs_from_serial() {
        let a: Vec<f64> = (0..25).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..25).map(|i| (i as f64 * 0.5).cos()).collect();
        let stat = |x: &[f64], y: &[f64]| {
            x.iter().zip(y).map(|(p, q)| p - q).sum::<f64>() / x.len() as f64
        };
        let split1 =
            percentile_ci_paired_split(&a, &b, stat, 400, 0.05, &mut Rng::seed_from_u64(60));
        let split2 =
            percentile_ci_paired_split(&a, &b, stat, 400, 0.05, &mut Rng::seed_from_u64(60));
        assert_eq!(split1, split2, "split driver must be deterministic");
        assert!(split1.lo <= split1.estimate && split1.estimate <= split1.hi);
        let serial = percentile_ci_paired(&a, &b, stat, 400, 0.05, &mut Rng::seed_from_u64(60));
        // Same point estimate; the bounds come from a different (equally
        // valid) randomization and will not match bitwise.
        assert_eq!(split1.estimate, serial.estimate);
        assert_ne!((split1.lo, split1.hi), (serial.lo, serial.hi));
    }

    #[test]
    fn paired_split_driver_consumes_exactly_one_draw_per_replicate() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [0.5, 2.5, 1.0, 3.5];
        let mut used = Rng::seed_from_u64(61);
        let mut reference = used.clone();
        percentile_ci_paired_split(&a, &b, prob_outperform, 29, 0.1, &mut used);
        for _ in 0..29 {
            reference.next_u64();
        }
        assert_eq!(used.next_u64(), reference.next_u64());
    }

    #[test]
    fn paired_split_generic_matches_prob_outperform_fast_path() {
        // Routing `prob_outperform` through the generic paired split driver
        // must reproduce the specialized win-indicator driver bit for bit:
        // same child seeds, same replicate statistics, same quantiles.
        let mut gen = Rng::seed_from_u64(62);
        let a: Vec<f64> = (0..33).map(|_| gen.normal(0.0, 1.0)).collect();
        let b: Vec<f64> = (0..33).map(|_| gen.normal(0.1, 1.0)).collect();
        let generic = percentile_ci_paired_split(
            &a,
            &b,
            prob_outperform,
            600,
            0.1,
            &mut Rng::seed_from_u64(63),
        );
        let fast =
            percentile_ci_prob_outperform_split(&a, &b, 600, 0.1, &mut Rng::seed_from_u64(63));
        assert_eq!(generic, fast);
    }

    #[test]
    fn generic_split_ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..20).map(|i| (i % 5) as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| (i % 5) as f64).collect();
        let mut rng = Rng::seed_from_u64(55);
        let ci_small = percentile_ci_split(&small, mean, 1000, 0.05, &mut rng);
        let ci_large = percentile_ci_split(&large, mean, 1000, 0.05, &mut rng);
        assert!(ci_large.width() < ci_small.width());
        assert!(ci_small.lo <= ci_small.estimate && ci_small.estimate <= ci_small.hi);
    }

    #[test]
    fn display_format() {
        let ci = ConfidenceInterval {
            estimate: 0.75,
            lo: 0.6,
            hi: 0.9,
            confidence: 0.95,
        };
        let s = format!("{ci}");
        assert!(s.contains("0.7500"));
        assert!(s.contains("95%"));
    }

    #[test]
    #[should_panic(expected = "paired bootstrap requires equal lengths")]
    fn paired_mismatch_panics() {
        let mut rng = Rng::seed_from_u64(6);
        percentile_ci_prob_outperform(&[1.0], &[1.0, 2.0], 10, 0.05, &mut rng);
    }
}
