//! Percentile-bootstrap confidence intervals (paper Appendix C.5).
//!
//! The paper's recommended test computes `P(A > B)` from paired performance
//! measures and quantifies its reliability with a non-parametric percentile
//! bootstrap: resample the pairs with replacement K times, recompute the
//! statistic on each resample, and take the α/2 and 1−α/2 percentiles as
//! the confidence bounds.

use crate::describe::quantile_sorted;
use varbench_rng::Rng;

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The point estimate on the original sample.
    pub estimate: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
    /// The confidence level `1 − α`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval contains `v`.
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} [{:.4}, {:.4}] @ {:.0}%",
            self.estimate,
            self.lo,
            self.hi,
            self.confidence * 100.0
        )
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic of a
/// single sample.
///
/// Draws `resamples` bootstrap replicates of `data`, evaluates `stat` on
/// each, and returns the `alpha/2` and `1 − alpha/2` empirical percentiles.
///
/// # Panics
///
/// Panics if `data` is empty, `resamples == 0`, or `alpha` outside `(0, 1)`.
///
/// # Example
///
/// ```
/// use varbench_rng::Rng;
/// use varbench_stats::bootstrap::percentile_ci;
/// use varbench_stats::describe::mean;
///
/// let data: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
/// let mut rng = Rng::seed_from_u64(7);
/// let ci = percentile_ci(&data, |xs| mean(xs), 2000, 0.05, &mut rng);
/// assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
/// ```
pub fn percentile_ci(
    data: &[f64],
    stat: impl Fn(&[f64]) -> f64,
    resamples: usize,
    alpha: f64,
    rng: &mut Rng,
) -> ConfidenceInterval {
    assert!(!data.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "resamples must be > 0");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let estimate = stat(data);
    let n = data.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; n];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = data[rng.range_usize(n)];
        }
        stats.push(stat(&buf));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN bootstrap statistic"));
    ConfidenceInterval {
        estimate,
        lo: quantile_sorted(&stats, alpha / 2.0),
        hi: quantile_sorted(&stats, 1.0 - alpha / 2.0),
        confidence: 1.0 - alpha,
    }
}

/// Percentile-bootstrap confidence interval for a statistic of *paired*
/// samples: resampling preserves the pairing `(a_i, b_i)`, as required by
/// the paper's paired-comparison procedure (Appendix C.2/C.5).
///
/// # Panics
///
/// Panics if the samples are empty or lengths differ, `resamples == 0`, or
/// `alpha` outside `(0, 1)`.
pub fn percentile_ci_paired(
    a: &[f64],
    b: &[f64],
    stat: impl Fn(&[f64], &[f64]) -> f64,
    resamples: usize,
    alpha: f64,
    rng: &mut Rng,
) -> ConfidenceInterval {
    assert_eq!(a.len(), b.len(), "paired bootstrap requires equal lengths");
    assert!(!a.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "resamples must be > 0");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let estimate = stat(a, b);
    let n = a.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut ra = vec![0.0; n];
    let mut rb = vec![0.0; n];
    for _ in 0..resamples {
        for i in 0..n {
            let j = rng.range_usize(n);
            ra[i] = a[j];
            rb[i] = b[j];
        }
        stats.push(stat(&ra, &rb));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN bootstrap statistic"));
    ConfidenceInterval {
        estimate,
        lo: quantile_sorted(&stats, alpha / 2.0),
        hi: quantile_sorted(&stats, 1.0 - alpha / 2.0),
        confidence: 1.0 - alpha,
    }
}

/// The paper's estimator of the probability of outperforming,
/// `P(A > B) = (1/k) Σ 1{a_i > b_i}` over paired measures (Eq. 9).
///
/// # Panics
///
/// Panics if samples are empty or lengths differ.
pub fn prob_outperform(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "prob_outperform requires pairs");
    assert!(!a.is_empty(), "prob_outperform of empty sample");
    let wins = a.iter().zip(b).filter(|(x, y)| x > y).count();
    wins as f64 / a.len() as f64
}

/// Percentile-bootstrap confidence interval for `P(A > B)` on paired
/// measures — the exact procedure of the paper's Appendix C.4–C.5.
///
/// Specialized fast path: whether pair `j` is a win (`a_j > b_j`) does not
/// depend on the resample it lands in, so the win indicators are computed
/// once up front and each bootstrap replicate reduces to an integer count
/// over resampled indices — no floating-point compares or pair-buffer
/// writes inside the resample loop. The RNG draw sequence and every
/// replicate's statistic are identical to routing
/// [`prob_outperform`] through [`percentile_ci_paired`], so the interval
/// is bit-for-bit unchanged.
///
/// # Panics
///
/// As [`percentile_ci_paired`].
pub fn percentile_ci_prob_outperform(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    alpha: f64,
    rng: &mut Rng,
) -> ConfidenceInterval {
    assert_eq!(a.len(), b.len(), "paired bootstrap requires equal lengths");
    assert!(!a.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "resamples must be > 0");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let estimate = prob_outperform(a, b);
    let n = a.len();
    let wins: Vec<u32> = a.iter().zip(b).map(|(x, y)| u32::from(x > y)).collect();
    let mut stats = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut count = 0u32;
        for _ in 0..n {
            count += wins[rng.range_usize(n)];
        }
        stats.push(count as f64 / n as f64);
    }
    // Win fractions are finite and never negative zero, so an unstable
    // sort cannot perturb the quantiles.
    stats.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN bootstrap statistic"));
    ConfidenceInterval {
        estimate,
        lo: quantile_sorted(&stats, alpha / 2.0),
        hi: quantile_sorted(&stats, 1.0 - alpha / 2.0),
        confidence: 1.0 - alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::mean;

    #[test]
    fn ci_brackets_estimate() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut rng = Rng::seed_from_u64(1);
        let ci = percentile_ci(&data, mean, 1000, 0.05, &mut rng);
        assert!(ci.lo <= ci.estimate);
        assert!(ci.estimate <= ci.hi);
        assert!(ci.width() > 0.0);
        assert_eq!(ci.confidence, 0.95);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..20).map(|i| (i % 5) as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| (i % 5) as f64).collect();
        let mut rng = Rng::seed_from_u64(2);
        let ci_small = percentile_ci(&small, mean, 1000, 0.05, &mut rng);
        let ci_large = percentile_ci(&large, mean, 1000, 0.05, &mut rng);
        assert!(ci_large.width() < ci_small.width());
    }

    #[test]
    fn ci_coverage_of_true_mean() {
        // ~95% of CIs over repeated experiments should contain the truth.
        let mut hits = 0;
        let trials = 200;
        for t in 0..trials {
            let mut data_rng = Rng::seed_from_u64(1000 + t);
            let data: Vec<f64> = (0..60).map(|_| data_rng.normal(5.0, 2.0)).collect();
            let mut boot_rng = Rng::seed_from_u64(2000 + t);
            let ci = percentile_ci(&data, mean, 500, 0.05, &mut boot_rng);
            if ci.contains(5.0) {
                hits += 1;
            }
        }
        let coverage = hits as f64 / trials as f64;
        assert!(coverage > 0.85, "coverage {coverage}");
    }

    #[test]
    fn prob_outperform_extremes() {
        assert_eq!(prob_outperform(&[2.0, 3.0], &[1.0, 1.0]), 1.0);
        assert_eq!(prob_outperform(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        // Ties count as not outperforming.
        assert_eq!(prob_outperform(&[1.0, 2.0], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn prob_outperform_symmetry() {
        let a = [0.3, 0.9, 0.7, 0.1];
        let b = [0.4, 0.5, 0.2, 0.8];
        // No ties → P(A>B) + P(B>A) = 1.
        assert!((prob_outperform(&a, &b) + prob_outperform(&b, &a) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn paired_ci_detects_clear_winner() {
        let a: Vec<f64> = (0..30).map(|i| 1.0 + (i % 3) as f64 * 0.01).collect();
        let b: Vec<f64> = (0..30).map(|i| 0.5 + (i % 4) as f64 * 0.01).collect();
        let mut rng = Rng::seed_from_u64(3);
        let ci = percentile_ci_prob_outperform(&a, &b, 1000, 0.05, &mut rng);
        assert_eq!(ci.estimate, 1.0);
        assert!(ci.lo > 0.5, "lower bound {}", ci.lo);
    }

    #[test]
    fn paired_ci_indifferent_under_null() {
        // a and b from the same distribution: CI should include 0.5.
        let mut gen = Rng::seed_from_u64(4);
        let a: Vec<f64> = (0..50).map(|_| gen.normal(0.0, 1.0)).collect();
        let b: Vec<f64> = (0..50).map(|_| gen.normal(0.0, 1.0)).collect();
        let mut rng = Rng::seed_from_u64(5);
        let ci = percentile_ci_prob_outperform(&a, &b, 2000, 0.05, &mut rng);
        assert!(ci.contains(0.5), "{ci}");
    }

    #[test]
    fn fast_prob_outperform_ci_matches_generic_path() {
        // The win-indicator fast path must be bit-identical to routing the
        // statistic through the generic paired bootstrap (same RNG draws,
        // same replicate values, same quantiles).
        let mut gen = Rng::seed_from_u64(40);
        let a: Vec<f64> = (0..37).map(|_| gen.normal(0.0, 1.0)).collect();
        let b: Vec<f64> = (0..37).map(|_| gen.normal(0.1, 1.0)).collect();
        let mut r1 = Rng::seed_from_u64(41);
        let mut r2 = Rng::seed_from_u64(41);
        let fast = percentile_ci_prob_outperform(&a, &b, 700, 0.1, &mut r1);
        let generic = percentile_ci_paired(&a, &b, prob_outperform, 700, 0.1, &mut r2);
        assert_eq!(fast, generic);
        // Both must leave the RNG in the same state.
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn display_format() {
        let ci = ConfidenceInterval {
            estimate: 0.75,
            lo: 0.6,
            hi: 0.9,
            confidence: 0.95,
        };
        let s = format!("{ci}");
        assert!(s.contains("0.7500"));
        assert!(s.contains("95%"));
    }

    #[test]
    #[should_panic(expected = "paired bootstrap requires equal lengths")]
    fn paired_mismatch_panics() {
        let mut rng = Rng::seed_from_u64(6);
        percentile_ci_prob_outperform(&[1.0], &[1.0, 2.0], 10, 0.05, &mut rng);
    }
}
