//! Special functions: log-gamma, error function, regularized incomplete
//! gamma and beta functions.
//!
//! These are the numerical bedrock of every distribution and test in this
//! crate. Implementations follow the classical, well-conditioned recipes:
//! Lanczos approximation for `ln Γ`, series / continued-fraction (modified
//! Lentz) evaluation of the incomplete gamma and beta functions. Accuracy is
//! close to `f64` precision over the argument ranges used by the library.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 terms); absolute error is below
/// `1e-13` over the tested range.
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Example
///
/// ```
/// // Γ(5) = 4! = 24
/// assert!((varbench_stats::special::ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`, increasing from 0 at `x = 0` to 1 as
/// `x → ∞`. Uses the series expansion for `x < a + 1` and the continued
/// fraction for `x ≥ a + 1`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Modified Lentz's method for the continued fraction representation.
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// The error function `erf(x)`.
///
/// Computed from the regularized incomplete gamma function,
/// `erf(x) = sign(x) · P(1/2, x²)`; accurate to near `f64` precision.
///
/// # Example
///
/// ```
/// assert!((varbench_stats::special::erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Uses the upper incomplete gamma function directly for large positive `x`
/// so that tail probabilities keep full relative precision.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x).min(1.0)
    } else {
        2.0 - erfc(-x)
    }
}

/// Natural log of the beta function, `ln B(a, b)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `b <= 0`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Monotone from 0 at `x = 0` to 1 at `x = 1`; this is the CDF kernel of
/// the Student-t and binomial distributions. Continued-fraction evaluation
/// (modified Lentz) with the standard symmetry split.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` outside `[0, 1]`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "beta_inc requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp() * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, f) in facts.iter().enumerate() {
            let x = (n + 1) as f64;
            assert!(
                (ln_gamma(x) - f.ln()).abs() < 1e-11,
                "ln_gamma({x}) = {} vs ln({f})",
                ln_gamma(x)
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x).
        for &x in &[0.3, 1.7, 4.2, 11.5, 100.25] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "x={x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn erf_reference_values() {
        // Published values (Abramowitz & Stegun table 7.1).
        assert!((erf(0.5) - 0.520_499_877_813_046_5).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-12);
        assert!(erf(0.0) == 0.0);
    }

    #[test]
    fn erf_odd_symmetry() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            assert!((erf(-x) + erf(x)).abs() < 1e-15);
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            assert!((erfc(x) + erf(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn erfc_tail_precision() {
        // erfc(5) = 1.5374597944280349e-12 (published); relative accuracy
        // matters in the far tail.
        let got = erfc(5.0);
        let expected = 1.537_459_794_428_035e-12;
        assert!(
            ((got - expected) / expected).abs() < 1e-8,
            "erfc(5) = {got:e}"
        );
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &a in &[0.5, 1.0, 3.3, 10.0] {
            for &x in &[0.1, 1.0, 5.0, 20.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-12, "a={a} x={x} sum={s}");
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.2, 1.0, 3.0, 10.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-13);
        }
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.2;
            let p = gamma_p(2.5, x);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn beta_inc_bounds_and_symmetry() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for &x in &[0.1, 0.4, 0.5, 0.9] {
            let lhs = beta_inc(2.0, 5.0, x);
            let rhs = 1.0 - beta_inc(5.0, 2.0, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn beta_inc_uniform_special_case() {
        // I_x(1, 1) = x.
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!((beta_inc(1.0, 1.0, x) - x).abs() < 1e-13);
        }
    }

    #[test]
    fn beta_inc_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.5}(1, 2) = 1 - (1-x)^2 = 0.75.
        assert!((beta_inc(2.0, 2.0, 0.5) - 0.5).abs() < 1e-12);
        assert!((beta_inc(1.0, 2.0, 0.5) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ln_beta_known() {
        // B(1,1) = 1; B(2,3) = 1/12.
        assert!(ln_beta(1.0, 1.0).abs() < 1e-13);
        assert!((ln_beta(2.0, 3.0) - (1.0f64 / 12.0).ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
