//! The Wilcoxon signed-rank test.
//!
//! Demšar (2006) recommends this test for comparing classifiers *across
//! multiple datasets*; the paper discusses (Section 6) why it is
//! underpowered for the 3–5 datasets typical of ML papers. It is provided
//! here both for completeness and so that the multiple-dataset guidance can
//! be exercised in examples.

use crate::correlation::ranks;
use crate::normal::Normal;
use crate::tests::Alternative;

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilcoxonResult {
    /// Sum of ranks of positive differences (`W+`).
    pub w_plus: f64,
    /// Standardized statistic (normal approximation).
    pub z: f64,
    /// P-value under the requested alternative.
    pub p_value: f64,
    /// Number of non-zero differences actually used.
    pub n_used: usize,
}

/// Performs the Wilcoxon signed-rank test on paired samples.
///
/// Zero differences are dropped (Wilcoxon's original treatment); ties among
/// absolute differences receive midranks; p-values use the normal
/// approximation with continuity correction.
///
/// # Panics
///
/// Panics if lengths differ or all differences are zero.
///
/// # Example
///
/// ```
/// use varbench_stats::tests::{wilcoxon::wilcoxon_signed_rank, Alternative};
/// let a = [1.2, 1.4, 1.3, 1.6, 1.5, 1.7, 1.45, 1.55];
/// let b = [1.0, 1.1, 1.2, 1.3, 1.25, 1.4, 1.35, 1.3];
/// let r = wilcoxon_signed_rank(&a, &b, Alternative::Greater);
/// assert!(r.p_value < 0.05);
/// ```
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64], alternative: Alternative) -> WilcoxonResult {
    assert_eq!(a.len(), b.len(), "wilcoxon requires pairs");
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    assert!(
        !diffs.is_empty(),
        "wilcoxon undefined when all differences are zero"
    );
    let n = diffs.len();
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let r = ranks(&abs);
    let w_plus: f64 = diffs
        .iter()
        .zip(&r)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, rank)| rank)
        .sum();

    let nf = n as f64;
    let mean_w = nf * (nf + 1.0) / 4.0;
    // Tie correction on the variance.
    let mut sorted = abs.clone();
    sorted.sort_by(|x, y| x.partial_cmp(y).expect("NaN"));
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let var_w = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_term / 48.0;

    let (z, p_value) = if var_w <= 0.0 {
        (0.0, 1.0)
    } else {
        let sd = var_w.sqrt();
        let norm = Normal::standard();
        match alternative {
            Alternative::TwoSided => {
                let z = (w_plus - mean_w - 0.5 * (w_plus - mean_w).signum()) / sd;
                (z, (2.0 * norm.sf(z.abs())).min(1.0))
            }
            Alternative::Greater => {
                let z = (w_plus - mean_w - 0.5) / sd;
                (z, norm.sf(z))
            }
            Alternative::Less => {
                let z = (w_plus - mean_w + 0.5) / sd;
                (z, norm.cdf(z))
            }
        }
    };

    WilcoxonResult {
        w_plus,
        z,
        p_value,
        n_used: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_w_plus() {
        // diffs: +1, -2, +3, +4 → |d| ranks 1,2,3,4 → W+ = 1+3+4 = 8.
        let a = [2.0, 0.0, 4.0, 5.0];
        let b = [1.0, 2.0, 1.0, 1.0];
        let r = wilcoxon_signed_rank(&a, &b, Alternative::TwoSided);
        assert_eq!(r.w_plus, 8.0);
        assert_eq!(r.n_used, 4);
    }

    #[test]
    fn zero_differences_dropped() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 1.0, 1.0, 1.0];
        let r = wilcoxon_signed_rank(&a, &b, Alternative::TwoSided);
        assert_eq!(r.n_used, 3);
    }

    #[test]
    fn all_positive_differences_significant() {
        let a: Vec<f64> = (1..=20).map(|i| i as f64 + 0.5).collect();
        let b: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let r = wilcoxon_signed_rank(&a, &b, Alternative::Greater);
        assert!(r.p_value < 0.001, "p={}", r.p_value);
    }

    #[test]
    fn symmetric_null_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0];
        let r = wilcoxon_signed_rank(&a, &b, Alternative::TwoSided);
        assert!(r.p_value > 0.5, "p={}", r.p_value);
    }

    #[test]
    fn direction_flip_mirrors_p() {
        let a = [3.0, 4.0, 5.0, 6.0, 7.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let g = wilcoxon_signed_rank(&a, &b, Alternative::Greater).p_value;
        let l = wilcoxon_signed_rank(&b, &a, Alternative::Less).p_value;
        assert!((g - l).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "all differences are zero")]
    fn identical_pairs_panics() {
        wilcoxon_signed_rank(&[1.0, 2.0], &[1.0, 2.0], Alternative::TwoSided);
    }
}
