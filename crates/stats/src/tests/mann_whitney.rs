//! The Mann–Whitney U test.
//!
//! The paper's probability-of-outperforming criterion is "equivalent to a
//! Mann–Whitney test" (Appendix C.3, citing Perme & Manevski 2019): the
//! U statistic divided by `n·m` estimates `P(A > B)` (counting ties as
//! half). This module provides the U statistic, the tie-corrected normal
//! approximation for p-values, and the effect-size estimate.

use crate::correlation::ranks;
use crate::normal::Normal;
use crate::tests::Alternative;

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitneyResult {
    /// U statistic of the first sample.
    pub u: f64,
    /// Standardized test statistic (continuity-corrected, tie-corrected).
    pub z: f64,
    /// P-value under the requested alternative (normal approximation).
    pub p_value: f64,
    /// The common-language effect size `U / (n·m)`, estimating
    /// `P(A > B) + ½P(A = B)`.
    pub effect_size: f64,
}

/// Performs a Mann–Whitney U test of samples `a` vs `b`.
///
/// Uses midranks for ties, the tie-corrected variance, a ±0.5 continuity
/// correction, and the normal approximation for p-values (appropriate for
/// the sample sizes this library recommends, `N ≥ 29`; for tiny samples the
/// p-value is approximate).
///
/// # Panics
///
/// Panics if either sample is empty.
///
/// # Example
///
/// ```
/// use varbench_stats::tests::{mann_whitney::mann_whitney_u, Alternative};
/// let a = [1.1, 2.3, 3.1, 4.2, 5.5];
/// let b = [0.8, 2.0, 2.9, 3.5, 4.0];
/// let r = mann_whitney_u(&a, &b, Alternative::TwoSided);
/// assert_eq!(r.u, 16.0); // hand-countable
/// assert!((r.effect_size - 0.64).abs() < 1e-12);
/// ```
pub fn mann_whitney_u(a: &[f64], b: &[f64], alternative: Alternative) -> MannWhitneyResult {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    let n_a = a.len() as f64;
    let n_b = b.len() as f64;
    let n = n_a + n_b;

    let mut combined = Vec::with_capacity(a.len() + b.len());
    combined.extend_from_slice(a);
    combined.extend_from_slice(b);
    let r = ranks(&combined);
    let rank_sum_a: f64 = r[..a.len()].iter().sum();
    let u = rank_sum_a - n_a * (n_a + 1.0) / 2.0;

    let mean_u = n_a * n_b / 2.0;

    // Tie correction: Σ (t³ − t) over tie groups of the combined sample.
    let mut sorted = combined.clone();
    sorted.sort_by(|x, y| x.partial_cmp(y).expect("NaN in Mann-Whitney input"));
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let var_u = n_a * n_b / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));

    let (z, p_value) = if var_u <= 0.0 {
        // All observations identical: no evidence either way.
        (0.0, 1.0)
    } else {
        let sd = var_u.sqrt();
        let norm = Normal::standard();
        match alternative {
            Alternative::TwoSided => {
                let z = (u - mean_u - 0.5 * (u - mean_u).signum()) / sd;
                (z, (2.0 * norm.sf(z.abs())).min(1.0))
            }
            Alternative::Greater => {
                let z = (u - mean_u - 0.5) / sd;
                (z, norm.sf(z))
            }
            Alternative::Less => {
                let z = (u - mean_u + 0.5) / sd;
                (z, norm.cdf(z))
            }
        }
    };

    MannWhitneyResult {
        u,
        z,
        p_value,
        effect_size: u / (n_a * n_b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_u() {
        // a-ranks in the combined sample: 2,4,6,9,10 → R=31, U = 31-15 = 16.
        let a = [1.1, 2.3, 3.1, 4.2, 5.5];
        let b = [0.8, 2.0, 2.9, 3.5, 4.0];
        let r = mann_whitney_u(&a, &b, Alternative::TwoSided);
        assert_eq!(r.u, 16.0);
        assert!((r.effect_size - 16.0 / 25.0).abs() < 1e-14);
    }

    #[test]
    fn complete_separation() {
        let a = [10.0, 11.0, 12.0];
        let b = [1.0, 2.0, 3.0];
        let r = mann_whitney_u(&a, &b, Alternative::Greater);
        assert_eq!(r.u, 9.0);
        assert_eq!(r.effect_size, 1.0);
        assert!(r.p_value < 0.05, "p={}", r.p_value);
    }

    #[test]
    fn u_statistics_sum_to_nm() {
        let a = [0.3, 0.7, 0.2, 0.9];
        let b = [0.4, 0.6, 0.1];
        let ra = mann_whitney_u(&a, &b, Alternative::TwoSided);
        let rb = mann_whitney_u(&b, &a, Alternative::TwoSided);
        assert!((ra.u + rb.u - 12.0).abs() < 1e-12);
        // Effect sizes complement.
        assert!((ra.effect_size + rb.effect_size - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_sided_symmetric_p() {
        let a = [0.3, 0.7, 0.2, 0.9, 0.5];
        let b = [0.4, 0.6, 0.1, 0.8];
        let pa = mann_whitney_u(&a, &b, Alternative::TwoSided).p_value;
        let pb = mann_whitney_u(&b, &a, Alternative::TwoSided).p_value;
        assert!((pa - pb).abs() < 1e-12);
    }

    #[test]
    fn identical_samples_give_p_one() {
        let a = [1.0, 1.0, 1.0];
        let r = mann_whitney_u(&a, &a, Alternative::TwoSided);
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.z, 0.0);
        assert!((r.effect_size - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ties_handled_with_midranks() {
        let a = [1.0, 2.0, 2.0];
        let b = [2.0, 3.0];
        let r = mann_whitney_u(&a, &b, Alternative::TwoSided);
        // Combined ranks: 1.0→1, three 2.0s→(2+3+4)/3=3, 3.0→5.
        // R_a = 1 + 3 + 3 = 7, U = 7 - 6 = 1.
        assert!((r.u - 1.0).abs() < 1e-12);
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
    }

    #[test]
    fn large_sample_null_p_value_uniformish() {
        // Under H0, p-values should not systematically concentrate near 0.
        use varbench_rng::Rng;
        let mut small_p = 0;
        let trials = 300;
        for t in 0..trials {
            let mut rng = Rng::seed_from_u64(t);
            let a: Vec<f64> = (0..30).map(|_| rng.normal(0.0, 1.0)).collect();
            let b: Vec<f64> = (0..30).map(|_| rng.normal(0.0, 1.0)).collect();
            if mann_whitney_u(&a, &b, Alternative::TwoSided).p_value < 0.05 {
                small_p += 1;
            }
        }
        let rate = small_p as f64 / trials as f64;
        assert!(rate < 0.10, "false positive rate {rate}");
    }

    #[test]
    fn detects_shift_with_power() {
        use varbench_rng::Rng;
        let mut detected = 0;
        let trials = 100;
        for t in 0..trials {
            let mut rng = Rng::seed_from_u64(1000 + t);
            let a: Vec<f64> = (0..40).map(|_| rng.normal(1.0, 1.0)).collect();
            let b: Vec<f64> = (0..40).map(|_| rng.normal(0.0, 1.0)).collect();
            if mann_whitney_u(&a, &b, Alternative::Greater).p_value < 0.05 {
                detected += 1;
            }
        }
        let power = detected as f64 / trials as f64;
        assert!(power > 0.9, "power {power}");
    }

    #[test]
    fn greater_and_less_are_complementary() {
        let a = [0.9, 0.8, 0.85, 0.95];
        let b = [0.7, 0.75, 0.72, 0.71];
        let g = mann_whitney_u(&a, &b, Alternative::Greater);
        let l = mann_whitney_u(&a, &b, Alternative::Less);
        assert!(g.p_value < 0.5);
        assert!(l.p_value > 0.5);
    }

    #[test]
    #[should_panic(expected = "samples must be non-empty")]
    fn empty_sample_panics() {
        mann_whitney_u(&[], &[1.0], Alternative::TwoSided);
    }
}
