//! The Shapiro–Wilk normality test (Royston's AS R94 algorithm, 1995).
//!
//! The paper validates its normal modelling assumption on every case study
//! and variance source with Shapiro–Wilk (Fig. G.3: "except for Glue-SST2
//! BERT, all case studies have distributions of performances very close to
//! normal"). This is a from-scratch implementation of Royston's
//! approximation, valid for sample sizes `3 ≤ n ≤ 5000`.

use crate::normal::{standard_normal_quantile, Normal};

/// Result of a Shapiro–Wilk test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapiroWilkResult {
    /// The W statistic in `(0, 1]`; values near 1 indicate normality.
    pub w: f64,
    /// P-value of the null hypothesis that the sample is normal.
    pub p_value: f64,
}

/// Error cases for the Shapiro–Wilk test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapiroWilkError {
    /// Fewer than 3 observations.
    TooFewSamples,
    /// More than 5000 observations (outside the approximation's validity).
    TooManySamples,
    /// All observations identical: W undefined.
    ConstantSample,
}

impl std::fmt::Display for ShapiroWilkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewSamples => write!(f, "shapiro-wilk requires at least 3 samples"),
            Self::TooManySamples => write!(f, "shapiro-wilk approximation valid up to n = 5000"),
            Self::ConstantSample => write!(f, "shapiro-wilk undefined for a constant sample"),
        }
    }
}

impl std::error::Error for ShapiroWilkError {}

/// Performs the Shapiro–Wilk test of normality.
///
/// # Errors
///
/// Returns an error for n < 3, n > 5000, or constant samples.
///
/// # Example
///
/// ```
/// use varbench_stats::tests::shapiro_wilk::shapiro_wilk;
/// // Strongly skewed data is rejected...
/// let skewed: Vec<f64> = (1..=50).map(|i| (i as f64).exp().min(1e10)).collect();
/// let r = shapiro_wilk(&skewed)?;
/// assert!(r.p_value < 0.01);
/// # Ok::<(), varbench_stats::tests::shapiro_wilk::ShapiroWilkError>(())
/// ```
pub fn shapiro_wilk(xs: &[f64]) -> Result<ShapiroWilkResult, ShapiroWilkError> {
    let n = xs.len();
    if n < 3 {
        return Err(ShapiroWilkError::TooFewSamples);
    }
    if n > 5000 {
        return Err(ShapiroWilkError::TooManySamples);
    }
    let mut x = xs.to_vec();
    x.sort_by(|a, b| a.partial_cmp(b).expect("NaN in shapiro-wilk input"));
    if x[0] == x[n - 1] {
        return Err(ShapiroWilkError::ConstantSample);
    }

    // Expected values of normal order statistics (Blom's approximation).
    let nf = n as f64;
    let m: Vec<f64> = (1..=n)
        .map(|i| standard_normal_quantile((i as f64 - 0.375) / (nf + 0.25)))
        .collect();
    let m_sq: f64 = m.iter().map(|v| v * v).sum();
    let rsn = 1.0 / nf.sqrt(); // u in Royston's notation

    // Weight vector `a` (antisymmetric; only the upper half is stored
    // conceptually — we build the full vector).
    let mut a = vec![0.0; n];
    let c_last = m[n - 1] / m_sq.sqrt();
    if n == 3 {
        a[2] = std::f64::consts::FRAC_1_SQRT_2;
        a[0] = -a[2];
        a[1] = 0.0;
    } else {
        // Royston's polynomial corrections for the two extreme weights.
        let a_n = c_last + 0.221157 * rsn - 0.147981 * rsn.powi(2) - 2.071190 * rsn.powi(3)
            + 4.434685 * rsn.powi(4)
            - 2.706056 * rsn.powi(5);
        if n <= 5 {
            let phi = (m_sq - 2.0 * m[n - 1] * m[n - 1]) / (1.0 - 2.0 * a_n * a_n);
            a[n - 1] = a_n;
            a[0] = -a_n;
            let scale = phi.sqrt();
            for i in 1..n - 1 {
                a[i] = m[i] / scale;
            }
        } else {
            let c_prev = m[n - 2] / m_sq.sqrt();
            let a_n1 = c_prev + 0.042981 * rsn - 0.293762 * rsn.powi(2) - 1.752461 * rsn.powi(3)
                + 5.682633 * rsn.powi(4)
                - 3.582633 * rsn.powi(5);
            let phi = (m_sq - 2.0 * m[n - 1] * m[n - 1] - 2.0 * m[n - 2] * m[n - 2])
                / (1.0 - 2.0 * a_n * a_n - 2.0 * a_n1 * a_n1);
            a[n - 1] = a_n;
            a[n - 2] = a_n1;
            a[0] = -a_n;
            a[1] = -a_n1;
            let scale = phi.sqrt();
            for i in 2..n - 2 {
                a[i] = m[i] / scale;
            }
        }
    }

    // W statistic.
    let mean = x.iter().sum::<f64>() / nf;
    let ssq: f64 = x.iter().map(|v| (v - mean).powi(2)).sum();
    let b: f64 = a.iter().zip(&x).map(|(ai, xi)| ai * xi).sum();
    let w = ((b * b) / ssq).min(1.0);

    // P-value via Royston's normalizing transformations.
    let p_value = if n == 3 {
        let p = 6.0 / std::f64::consts::PI * ((w.sqrt()).asin() - (0.75f64.sqrt()).asin());
        p.clamp(0.0, 1.0)
    } else if n <= 11 {
        let g = -2.273 + 0.459 * nf;
        let mu = 0.5440 - 0.39978 * nf + 0.025054 * nf * nf - 0.0006714 * nf.powi(3);
        let sigma = (1.3822 - 0.77857 * nf + 0.062767 * nf * nf - 0.0020322 * nf.powi(3)).exp();
        let arg = g - (1.0 - w).ln();
        if arg <= 0.0 {
            // W so close to 1 the transform degenerates: no evidence against
            // normality.
            1.0
        } else {
            let z = (-arg.ln() - mu) / sigma;
            Normal::standard().sf(z)
        }
    } else {
        let ln_n = nf.ln();
        let mu = 0.0038915 * ln_n.powi(3) - 0.083751 * ln_n.powi(2) - 0.31082 * ln_n - 1.5861;
        let sigma = (0.0030302 * ln_n.powi(2) - 0.082676 * ln_n - 0.4803).exp();
        let z = ((1.0 - w).ln() - mu) / sigma;
        Normal::standard().sf(z)
    };

    Ok(ShapiroWilkResult { w, p_value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use varbench_rng::Rng;

    #[test]
    fn w_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(1);
        for n in [3usize, 5, 10, 30, 100, 500] {
            let xs: Vec<f64> = (0..n).map(|_| rng.normal(0.0, 1.0)).collect();
            let r = shapiro_wilk(&xs).unwrap();
            assert!(r.w > 0.0 && r.w <= 1.0, "n={n} w={}", r.w);
            assert!((0.0..=1.0).contains(&r.p_value), "n={n} p={}", r.p_value);
        }
    }

    #[test]
    fn normal_data_rarely_rejected() {
        let trials = 200;
        let mut rejected = 0;
        for t in 0..trials {
            let mut rng = Rng::seed_from_u64(t);
            let xs: Vec<f64> = (0..50).map(|_| rng.normal(10.0, 3.0)).collect();
            if shapiro_wilk(&xs).unwrap().p_value < 0.05 {
                rejected += 1;
            }
        }
        let rate = rejected as f64 / trials as f64;
        // Nominal 5%; allow approximation slack.
        assert!(rate < 0.12, "rejection rate under H0: {rate}");
    }

    #[test]
    fn exponential_data_rejected() {
        let trials = 50;
        let mut rejected = 0;
        for t in 0..trials {
            let mut rng = Rng::seed_from_u64(500 + t);
            let xs: Vec<f64> = (0..100).map(|_| rng.exponential(1.0)).collect();
            if shapiro_wilk(&xs).unwrap().p_value < 0.05 {
                rejected += 1;
            }
        }
        let rate = rejected as f64 / trials as f64;
        assert!(rate > 0.9, "power against exponential: {rate}");
    }

    #[test]
    fn uniform_data_rejected_large_n() {
        let mut rng = Rng::seed_from_u64(7);
        let xs: Vec<f64> = (0..1000).map(|_| rng.uniform(0.0, 1.0)).collect();
        let r = shapiro_wilk(&xs).unwrap();
        assert!(r.p_value < 0.01, "p={}", r.p_value);
    }

    #[test]
    fn bimodal_data_rejected() {
        let mut rng = Rng::seed_from_u64(8);
        let mut xs: Vec<f64> = (0..50).map(|_| rng.normal(-4.0, 0.3)).collect();
        xs.extend((0..50).map(|_| rng.normal(4.0, 0.3)));
        let r = shapiro_wilk(&xs).unwrap();
        assert!(r.p_value < 0.001, "p={}", r.p_value);
    }

    #[test]
    fn w_higher_for_normal_than_skewed() {
        let mut rng = Rng::seed_from_u64(9);
        let normal: Vec<f64> = (0..80).map(|_| rng.normal(0.0, 1.0)).collect();
        let skewed: Vec<f64> = (0..80).map(|_| rng.exponential(1.0).powi(2)).collect();
        let wn = shapiro_wilk(&normal).unwrap().w;
        let ws = shapiro_wilk(&skewed).unwrap().w;
        assert!(wn > ws, "wn={wn} ws={ws}");
        assert!(wn > 0.95);
    }

    #[test]
    fn tiny_samples_handled() {
        // n = 3 exact-ish branch.
        let r = shapiro_wilk(&[1.0, 2.0, 3.0]).unwrap();
        assert!(r.w > 0.9); // perfectly spaced = very normal-looking
        let r = shapiro_wilk(&[1.0, 1.1, 9.0]).unwrap();
        assert!(r.w < 0.9);
        // n in the 4..=5 branch.
        let r = shapiro_wilk(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(r.p_value > 0.5);
        // n in the 6..=11 branch.
        let r = shapiro_wilk(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]).unwrap();
        assert!(r.p_value > 0.5);
    }

    #[test]
    fn n3_exact_hand_computation() {
        // n = 3, data (1, 2, 4): a = (−1/√2, 0, 1/√2);
        // b = (4 − 1)/√2, W = b²/SS = 4.5 / 4.6667 = 0.96428...;
        // p = (6/π)(asin √W − asin √0.75) = 0.6376...
        let r = shapiro_wilk(&[1.0, 2.0, 4.0]).unwrap();
        assert!((r.w - 4.5 / (14.0 / 3.0)).abs() < 1e-10, "W = {}", r.w);
        let expected_p = 6.0 / std::f64::consts::PI * ((r.w.sqrt()).asin() - 0.75f64.sqrt().asin());
        assert!((r.p_value - expected_p).abs() < 1e-12);
        assert!((r.p_value - 0.6376).abs() < 1e-3, "p = {}", r.p_value);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            shapiro_wilk(&[1.0, 2.0]),
            Err(ShapiroWilkError::TooFewSamples)
        );
        assert_eq!(
            shapiro_wilk(&[5.0, 5.0, 5.0, 5.0]),
            Err(ShapiroWilkError::ConstantSample)
        );
        let big = vec![0.0; 5001];
        assert_eq!(shapiro_wilk(&big), Err(ShapiroWilkError::TooManySamples));
    }

    #[test]
    fn error_display() {
        assert!(ShapiroWilkError::TooFewSamples
            .to_string()
            .contains("at least 3"));
    }
}
