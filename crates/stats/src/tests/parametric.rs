//! Parametric location tests: z-test and t-tests.
//!
//! Section 3.1 of the paper uses the z-test threshold
//! `z₀.₀₅ √((σ²_A + σ²_B)/k)` to show how many data splits are needed to
//! detect a difference; Section 4.2 contrasts the "average comparison"
//! criterion with a t-test whose "adjustment of the threshold based on the
//! variance ... allows better control on false negatives".

use crate::describe::{mean, std_dev, variance};
use crate::normal::Normal;
use crate::student_t::StudentT;
use crate::tests::Alternative;

/// Result of a parametric location test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (z or t).
    pub statistic: f64,
    /// The p-value under the requested alternative.
    pub p_value: f64,
    /// Degrees of freedom (`f64::INFINITY` for z-tests).
    pub dof: f64,
}

fn p_from_normal(z: f64, alternative: Alternative) -> f64 {
    let n = Normal::standard();
    match alternative {
        Alternative::TwoSided => (2.0 * n.sf(z.abs())).min(1.0),
        Alternative::Greater => n.sf(z),
        Alternative::Less => n.cdf(z),
    }
}

fn p_from_t(t: f64, dof: f64, alternative: Alternative) -> f64 {
    let dist = StudentT::new(dof);
    match alternative {
        Alternative::TwoSided => dist.two_sided_p(t).min(1.0),
        Alternative::Greater => dist.sf(t),
        Alternative::Less => dist.cdf(t),
    }
}

/// Two-sample z-test for a difference of means with *known* standard
/// deviations.
///
/// This is the form used in the paper's Section 3.1: with per-measure
/// variances `σ²_A`, `σ²_B` and `k` paired measures, a difference must
/// exceed `z_α √((σ²_A + σ²_B)/k)` to be detectable.
///
/// # Panics
///
/// Panics if a sigma is not positive or `k == 0`.
pub fn z_test_known_variance(
    mean_a: f64,
    mean_b: f64,
    sigma_a: f64,
    sigma_b: f64,
    k: usize,
    alternative: Alternative,
) -> TestResult {
    assert!(sigma_a > 0.0 && sigma_b > 0.0, "sigmas must be > 0");
    assert!(k > 0, "k must be > 0");
    let se = ((sigma_a * sigma_a + sigma_b * sigma_b) / k as f64).sqrt();
    let z = (mean_a - mean_b) / se;
    TestResult {
        statistic: z,
        p_value: p_from_normal(z, alternative),
        dof: f64::INFINITY,
    }
}

/// The minimal detectable difference of the paper's Eq. in §3.1:
/// `z_{1−α} √((σ²_A + σ²_B)/k)`.
///
/// # Panics
///
/// Panics if sigmas are negative, `alpha` outside `(0,1)`, or `k == 0`.
pub fn min_detectable_difference(sigma_a: f64, sigma_b: f64, k: usize, alpha: f64) -> f64 {
    assert!(sigma_a >= 0.0 && sigma_b >= 0.0, "sigmas must be >= 0");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    assert!(k > 0, "k must be > 0");
    let z = crate::normal::standard_normal_quantile(1.0 - alpha);
    z * ((sigma_a * sigma_a + sigma_b * sigma_b) / k as f64).sqrt()
}

/// One-sample t-test of `H0: mean == mu0`.
///
/// # Panics
///
/// Panics if `xs.len() < 2` or the sample is constant.
pub fn t_test_one_sample(xs: &[f64], mu0: f64, alternative: Alternative) -> TestResult {
    assert!(xs.len() >= 2, "t-test requires at least 2 observations");
    let s = std_dev(xs);
    assert!(s > 0.0, "t-test undefined for constant sample");
    let n = xs.len() as f64;
    let t = (mean(xs) - mu0) / (s / n.sqrt());
    let dof = n - 1.0;
    TestResult {
        statistic: t,
        p_value: p_from_t(t, dof, alternative),
        dof,
    }
}

/// Welch's two-sample t-test (unequal variances).
///
/// # Panics
///
/// Panics if either sample has fewer than 2 observations or both are
/// constant.
pub fn t_test_welch(a: &[f64], b: &[f64], alternative: Alternative) -> TestResult {
    assert!(
        a.len() >= 2 && b.len() >= 2,
        "t-test requires >= 2 observations"
    );
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (va, vb) = (variance(a, 1), variance(b, 1));
    assert!(va + vb > 0.0, "t-test undefined for two constant samples");
    let se2 = va / na + vb / nb;
    let t = (mean(a) - mean(b)) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let dof = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    TestResult {
        statistic: t,
        p_value: p_from_t(t, dof.max(1.0), alternative),
        dof,
    }
}

/// Paired t-test on differences `a_i − b_i`.
///
/// Pairing marginalizes shared variance sources (paper Appendix C.2:
/// "pairing is a simple but powerful way of increasing the power of
/// statistical tests").
///
/// # Panics
///
/// Panics if lengths differ, fewer than 2 pairs, or all differences equal.
pub fn t_test_paired(a: &[f64], b: &[f64], alternative: Alternative) -> TestResult {
    assert_eq!(a.len(), b.len(), "paired t-test requires pairs");
    let d: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    t_test_one_sample(&d, 0.0, alternative)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_test_known_example() {
        // mean diff 1.0, sigma_a = sigma_b = 1, k = 8 → se = 0.5, z = 2.
        let r = z_test_known_variance(1.0, 0.0, 1.0, 1.0, 8, Alternative::TwoSided);
        assert!((r.statistic - 2.0).abs() < 1e-12);
        assert!((r.p_value - 0.0455).abs() < 1e-3);
    }

    #[test]
    fn min_detectable_difference_shrinks_with_k() {
        let d1 = min_detectable_difference(1.0, 1.0, 1, 0.05);
        let d100 = min_detectable_difference(1.0, 1.0, 100, 0.05);
        assert!((d1 / d100 - 10.0).abs() < 1e-9);
        // k=1, σ=1 → 1.6449 * sqrt(2) ≈ 2.326.
        assert!((d1 - 1.6448536 * 2.0f64.sqrt()).abs() < 1e-4);
    }

    #[test]
    fn one_sample_t_detects_shift() {
        let xs = [1.1, 0.9, 1.2, 1.05, 0.95, 1.0, 1.15, 0.92];
        let r = t_test_one_sample(&xs, 0.0, Alternative::TwoSided);
        assert!(r.p_value < 1e-6);
        let r0 = t_test_one_sample(&xs, 1.0, Alternative::TwoSided);
        assert!(r0.p_value > 0.3);
    }

    #[test]
    fn welch_reference_computation() {
        // Symmetric samples, equal variances: t reduces to pooled form.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 3.0, 4.0, 5.0, 6.0];
        let r = t_test_welch(&a, &b, Alternative::TwoSided);
        // mean diff -1, var = 2.5 each, se = sqrt(2.5/5+2.5/5) = 1, t = -1.
        assert!((r.statistic + 1.0).abs() < 1e-12);
        assert!((r.dof - 8.0).abs() < 1e-9);
    }

    #[test]
    fn welch_unequal_variance_dof_reduced() {
        let a = [0.0, 0.1, -0.1, 0.05, -0.05, 0.02, -0.02, 0.08];
        let b = [0.0, 10.0, -10.0, 5.0, -5.0, 2.0, -2.0, 8.0];
        let r = t_test_welch(&a, &b, Alternative::TwoSided);
        assert!(r.dof < 8.0, "dof {}", r.dof);
    }

    #[test]
    fn paired_beats_unpaired_on_shared_noise() {
        // Large shared per-pair offsets drown the unpaired test but not the
        // paired one — the variance-reduction argument of Appendix C.2.
        use varbench_rng::Rng;
        let mut rng = Rng::seed_from_u64(1);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..20 {
            let shared = rng.normal(0.0, 5.0);
            a.push(shared + 0.2 + rng.normal(0.0, 0.05));
            b.push(shared + rng.normal(0.0, 0.05));
        }
        let paired = t_test_paired(&a, &b, Alternative::Greater);
        let unpaired = t_test_welch(&a, &b, Alternative::Greater);
        assert!(paired.p_value < 0.001, "paired p={}", paired.p_value);
        assert!(unpaired.p_value > 0.05, "unpaired p={}", unpaired.p_value);
    }

    #[test]
    fn alternatives_are_coherent() {
        let a = [2.0, 2.1, 1.9, 2.05];
        let b = [1.0, 1.1, 0.9, 1.05];
        let g = t_test_welch(&a, &b, Alternative::Greater).p_value;
        let l = t_test_welch(&a, &b, Alternative::Less).p_value;
        let two = t_test_welch(&a, &b, Alternative::TwoSided).p_value;
        assert!(g < 0.01);
        assert!(l > 0.99);
        assert!((two - 2.0 * g).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "t-test undefined for constant sample")]
    fn constant_sample_panics() {
        t_test_one_sample(&[1.0, 1.0, 1.0], 0.0, Alternative::TwoSided);
    }
}
