//! Hypothesis tests.
//!
//! * [`mann_whitney`] — the rank test behind the paper's `P(A > B)`
//!   criterion (Section 4.1 builds "upon the non-parametric Mann-Whitney
//!   test to produce decisions about whether P(A>B) ≥ γ").
//! * [`shapiro_wilk`] — normality testing used by the paper's Fig. G.3 to
//!   validate the normal modelling assumption.
//! * [`wilcoxon`] — signed-rank test, the Demšar recommendation for
//!   multiple-dataset comparisons discussed in the paper's Section 6.
//! * [`parametric`] — z- and t-tests used for the "average comparison"
//!   baseline criterion.

pub mod mann_whitney;
pub mod parametric;
pub mod shapiro_wilk;
pub mod wilcoxon;

/// Direction of a one- or two-sided alternative hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Alternative {
    /// H1: the distributions differ (either direction).
    #[default]
    TwoSided,
    /// H1: the first sample is stochastically greater.
    Greater,
    /// H1: the first sample is stochastically smaller.
    Less,
}
