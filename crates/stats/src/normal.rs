//! The normal (Gaussian) distribution.

use crate::special::{erf, erfc};

/// A normal distribution with mean `mu` and standard deviation `sigma`.
///
/// The paper's modelling assumption — validated by its Fig. G.3 and our
/// `figg3` reproduction — is that benchmark performance fluctuations are
/// approximately normal, so this distribution carries most of the analysis:
/// z-tests, estimator simulation (§4.2), and the significance band of
/// Fig. 3.
///
/// # Example
///
/// ```
/// use varbench_stats::Normal;
/// let n = Normal::standard();
/// assert!((n.cdf(1.959963984540054) - 0.975).abs() < 1e-9);
/// assert!((n.quantile(0.975) - 1.959963984540054).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "mu must be finite");
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "sigma must be finite and > 0"
        );
        Self { mu, sigma }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// The standard deviation.
    pub fn std(&self) -> f64 {
        self.sigma
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Survival function `P(X > x)`, computed with full tail precision.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Quantile function (inverse CDF).
    ///
    /// Acklam's rational approximation refined by one Halley step against
    /// the exact CDF; accurate to ~1e-13 over `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly inside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        self.mu + self.sigma * standard_normal_quantile(p)
    }
}

/// The standard normal quantile `Φ⁻¹(p)`.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the exact CDF brings the error to
    // near machine precision.
    let n = Normal::standard();
    let e = n.cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((n.cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-12);
        assert!((n.cdf(-1.0) - 0.158_655_253_931_457_05).abs() < 1e-12);
        assert!((n.cdf(1.96) - 0.975_002_104_851_779_5).abs() < 1e-12);
    }

    #[test]
    fn quantile_reference_values() {
        assert!((standard_normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-11);
        assert!((standard_normal_quantile(0.95) - 1.644_853_626_951_472_2).abs() < 1e-11);
        assert!((standard_normal_quantile(0.5)).abs() < 1e-12);
        assert!((standard_normal_quantile(0.05) + 1.644_853_626_951_472_2).abs() < 1e-11);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::standard();
        for i in 1..200 {
            let p = i as f64 / 200.0;
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn quantile_extreme_tails() {
        let n = Normal::standard();
        for &p in &[1e-10, 1e-6, 1.0 - 1e-6, 1.0 - 1e-10] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() / p.min(1.0 - p) < 1e-6, "p={p} x={x}");
        }
    }

    #[test]
    fn sf_complements_cdf() {
        let n = Normal::new(1.0, 2.0);
        for &x in &[-3.0, 0.0, 1.0, 4.5] {
            assert!((n.cdf(x) + n.sf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sf_tail_precision() {
        // P(Z > 6) = 9.865876450376946e-10 (published).
        let n = Normal::standard();
        let got = n.sf(6.0);
        let expected = 9.865_876_450_376_946e-10;
        assert!(
            ((got - expected) / expected).abs() < 1e-6,
            "sf(6) = {got:e}"
        );
    }

    #[test]
    fn pdf_integrates_to_one() {
        let n = Normal::new(-0.5, 1.3);
        // Trapezoidal rule over ±10σ.
        let steps = 20_000;
        let (lo, hi) = (-0.5 - 13.0, -0.5 + 13.0);
        let h = (hi - lo) / steps as f64;
        let mut total = 0.0;
        for i in 0..=steps {
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            total += w * n.pdf(lo + i as f64 * h);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-10, "integral {total}");
    }

    #[test]
    fn scaling_and_location() {
        let n = Normal::new(10.0, 2.0);
        let s = Normal::standard();
        assert!((n.cdf(12.0) - s.cdf(1.0)).abs() < 1e-14);
        assert!((n.quantile(0.75) - (10.0 + 2.0 * s.quantile(0.75))).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "sigma must be finite and > 0")]
    fn zero_sigma_rejected() {
        Normal::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0,1)")]
    fn quantile_bounds_enforced() {
        standard_normal_quantile(1.0);
    }
}
