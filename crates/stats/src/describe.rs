//! Descriptive statistics.

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `xs` is empty.
///
/// # Example
///
/// ```
/// assert_eq!(varbench_stats::describe::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance with `ddof` delta degrees of freedom.
///
/// `ddof = 1` gives the unbiased sample variance (used throughout the
/// paper's estimator analysis); `ddof = 0` the population variance.
///
/// # Panics
///
/// Panics if `xs.len() <= ddof`.
pub fn variance(xs: &[f64], ddof: usize) -> f64 {
    assert!(
        xs.len() > ddof,
        "variance requires more than {ddof} samples"
    );
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - ddof) as f64
}

/// Sample standard deviation (`ddof = 1`).
///
/// # Panics
///
/// Panics if `xs.len() < 2`.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs, 1).sqrt()
}

/// Standard error of the mean: `s / sqrt(k)`.
///
/// This is the `σ/√k` that drives the paper's Section 3 analysis of how
/// many data splits are needed to detect small improvements.
///
/// # Panics
///
/// Panics if `xs.len() < 2`.
pub fn standard_error(xs: &[f64]) -> f64 {
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Analytic standard deviation of a sample standard deviation.
///
/// For `k` normal observations with true std `sigma`, the sampling std of
/// the sample std is approximately `σ / sqrt(2(k−1))`. The paper uses this
/// for the shaded uncertainty bands of Fig. 5 / Fig. H.4 ("computed
/// analytically as the approximate standard deviation of the standard
/// deviation of a normal distribution computed on k samples").
///
/// # Panics
///
/// Panics if `k < 2` or `sigma < 0`.
pub fn std_of_std(sigma: f64, k: usize) -> f64 {
    assert!(k >= 2, "std_of_std requires k >= 2");
    assert!(sigma >= 0.0, "sigma must be >= 0");
    sigma / (2.0 * (k as f64 - 1.0)).sqrt()
}

/// Median (average of middle two for even lengths).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Empirical quantile with linear interpolation between order statistics
/// (type-7, the numpy/R default).
///
/// # Panics
///
/// Panics if `xs` is empty or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, q)
}

/// Quantile of an already-sorted slice (type-7 interpolation).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A one-pass summary of a sample.
///
/// # Example
///
/// ```
/// use varbench_stats::Summary;
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count, 4);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample standard deviation (0 for a single observation).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn from_slice(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty slice");
        let mean_v = mean(xs);
        let std_v = if xs.len() >= 2 { std_dev(xs) } else { 0.0 };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Self {
            count: xs.len(),
            mean: mean_v,
            std: std_v,
            min: sorted[0],
            median: quantile_sorted(&sorted, 0.5),
            max: sorted[sorted.len() - 1],
        }
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        self.std / (self.count as f64).sqrt()
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.6} std={:.6} min={:.6} med={:.6} max={:.6}",
            self.count, self.mean, self.std, self.min, self.median, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs, 0) - 4.0).abs() < 1e-12);
        assert!((variance(&xs, 1) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_constant_sample_is_zero() {
        assert_eq!(std_dev(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn standard_error_scaling() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let se = standard_error(&xs);
        assert!((se - std_dev(&xs) / 10.0).abs() < 1e-14);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 1.0 / 3.0) - 2.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[42.0], 0.7), 42.0);
    }

    #[test]
    fn std_of_std_shrinks_with_k() {
        let a = std_of_std(1.0, 10);
        let b = std_of_std(1.0, 100);
        assert!(b < a);
        assert!((std_of_std(2.0, 3) - 2.0 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::from_slice(&[1.0, 5.0, 3.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert!(s.std > 0.0);
        assert!(format!("{s}").contains("n=3"));
    }

    #[test]
    fn summary_single_observation() {
        let s = Summary::from_slice(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    #[should_panic(expected = "mean of empty slice")]
    fn empty_mean_panics() {
        mean(&[]);
    }
}
