//! Correlation measures, including the average pairwise correlation ρ that
//! governs the variance of the paper's biased estimator (Eq. 7):
//!
//! `Var(µ̃(k) | ξ) = Var(R̂|ξ)/k + (k−1)/k · ρ · Var(R̂|ξ)`
//!
//! Fig. H.5 shows that randomizing more variance sources lowers ρ, which is
//! *why* `FixHOptEst(k, All)` beats `FixHOptEst(k, Init)`.

use crate::describe::mean;

/// Pearson product-moment correlation between `x` and `y`.
///
/// Returns 0 when either sample is constant (degenerate case: correlation
/// undefined; 0 is the convention used by the estimator decomposition,
/// where a constant series carries no co-fluctuation).
///
/// # Panics
///
/// Panics if lengths differ or fewer than 2 observations.
///
/// # Example
///
/// ```
/// let r = varbench_stats::correlation::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson length mismatch");
    assert!(x.len() >= 2, "pearson requires at least 2 observations");
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (xi, yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Spearman rank correlation.
///
/// Pearson correlation of the (average-tie) ranks.
///
/// # Panics
///
/// Panics if lengths differ or fewer than 2 observations.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "spearman length mismatch");
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Average (mid) ranks of a sample, 1-based, ties receive their average
/// rank. This is the ranking used by the Mann–Whitney and Spearman
/// procedures.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in ranks input"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average 1-based rank of the tie block [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Sample covariance (`ddof = 1`).
///
/// # Panics
///
/// Panics if lengths differ or fewer than 2 observations.
pub fn covariance(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "covariance length mismatch");
    assert!(x.len() >= 2, "covariance requires at least 2 observations");
    let mx = mean(x);
    let my = mean(y);
    x.iter()
        .zip(y)
        .map(|(xi, yi)| (xi - mx) * (yi - my))
        .sum::<f64>()
        / (x.len() - 1) as f64
}

/// Average pairwise Pearson correlation among the rows of `series`.
///
/// This estimates the ρ of Eq. 7 from repeated experiment groups: each row
/// is one group's sequence of performance measures (e.g. one
/// `FixHOptEst` repetition's k measures — the correlation is *across
/// groups, per position*? No: the paper's ρ is the correlation among the k
/// measures *within* a group induced by conditioning on ξ). Concretely we
/// estimate it as in the paper's Fig. H.5: the correlation
/// `corr(R̂_ei, R̂_ej)` between measure positions i and j across groups,
/// averaged over all pairs i < j.
///
/// `series[g][i]` = measure i of group g. Requires at least 2 groups and 2
/// positions.
///
/// # Panics
///
/// Panics if rows are ragged, fewer than 2 rows, or fewer than 2 columns.
pub fn average_pairwise_correlation(series: &[Vec<f64>]) -> f64 {
    assert!(series.len() >= 2, "need at least 2 groups");
    let k = series[0].len();
    assert!(k >= 2, "need at least 2 positions");
    for row in series {
        assert_eq!(row.len(), k, "ragged series");
    }
    // Column i across groups.
    let column = |i: usize| -> Vec<f64> { series.iter().map(|row| row[i]).collect() };
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..k {
        let ci = column(i);
        for j in (i + 1)..k {
            let cj = column(j);
            total += pearson(&ci, &cj);
            count += 1;
        }
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_anticorrelation() {
        let r = pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]);
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_independent_is_small() {
        // Deterministic "independent" pattern.
        let x: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        let y: Vec<f64> = (0..1000).map(|i| (i % 11) as f64).collect();
        assert!(pearson(&x, &y).abs() < 0.05);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn ranks_with_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn ranks_all_tied() {
        let r = ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_known() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 8.0];
        assert!((covariance(&x, &y) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn average_pairwise_correlation_identical_rows() {
        // Columns that always move together across groups → ρ = 1.
        let series = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 3.0, 4.0],
            vec![0.0, 1.0, 2.0],
        ];
        // Column pairs: (1,2,0) vs (2,3,1) vs (3,4,2): all shifted copies → ρ = 1.
        let rho = average_pairwise_correlation(&series);
        assert!((rho - 1.0).abs() < 1e-12, "rho={rho}");
    }

    #[test]
    fn average_pairwise_correlation_decorrelated() {
        // Make columns orthogonal-ish patterns across 8 groups.
        let series: Vec<Vec<f64>> = (0..8)
            .map(|g| {
                vec![
                    ((g * 3) % 8) as f64,
                    ((g * 5) % 7) as f64,
                    ((g * 7) % 5) as f64,
                ]
            })
            .collect();
        let rho = average_pairwise_correlation(&series);
        assert!(rho.abs() < 0.6, "rho={rho}");
    }

    #[test]
    #[should_panic(expected = "pearson length mismatch")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
