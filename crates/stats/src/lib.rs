//! Statistical toolkit for variance-aware machine-learning benchmarking.
//!
//! Implements, from scratch, every statistical component used by
//! *Accounting for Variance in Machine Learning Benchmarks* (Bouthillier et
//! al., MLSys 2021):
//!
//! * special functions ([`special`]): log-gamma, error function, regularized
//!   incomplete gamma and beta — the numerical bedrock of the distributions;
//! * distributions: [`Normal`], [`Binomial`] (the Fig. 2 test-set noise
//!   model), [`StudentT`];
//! * descriptive statistics ([`describe`]) including the analytic
//!   `std-of-std` uncertainty used for the error bands of Fig. 5;
//! * hypothesis tests ([`tests`]): Mann–Whitney (the machinery behind the
//!   paper's `P(A>B)` criterion), Shapiro–Wilk normality (Fig. G.3),
//!   Wilcoxon signed-rank, z- and t-tests;
//! * [`bootstrap`]: percentile-bootstrap confidence intervals (Appendix C.5);
//! * [`power`]: Noether sample-size determination (Fig. C.1);
//! * [`correlation`]: Pearson/Spearman and the average pairwise correlation
//!   ρ of the biased-estimator variance formula (Eq. 7);
//! * [`regression`]: ordinary least squares (used to calibrate the paper's
//!   δ = 1.9952 σ published-improvement threshold);
//! * [`kde`]: Gaussian kernel density estimation (Fig. G.3 panels).
//!
//! # Example: the paper's recommended comparison test
//!
//! ```
//! use varbench_stats::bootstrap::percentile_ci_prob_outperform;
//! use varbench_rng::Rng;
//!
//! // Paired performance measures of algorithms A and B over 29 seeds.
//! let a: Vec<f64> = (0..29).map(|i| 0.75 + 0.001 * (i % 7) as f64).collect();
//! let b: Vec<f64> = (0..29).map(|i| 0.74 + 0.001 * (i % 5) as f64).collect();
//! let mut rng = Rng::seed_from_u64(1);
//! let ci = percentile_ci_prob_outperform(&a, &b, 1000, 0.05, &mut rng);
//! assert!(ci.estimate >= ci.lo && ci.estimate <= ci.hi);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod correlation;
pub mod describe;
pub mod kde;
pub mod power;
pub mod regression;
pub mod special;
pub mod tests;

mod binomial;
mod normal;
mod student_t;

pub use binomial::Binomial;
pub use normal::{standard_normal_quantile, Normal};
pub use student_t::StudentT;

pub use bootstrap::ConfidenceInterval;
pub use describe::Summary;
