#![allow(clippy::needless_range_loop)] // index-style loops are clearer in numerical kernels

//! Cholesky factorization of symmetric positive-definite matrices.

use crate::matrix::Matrix;
use std::error::Error;
use std::fmt;

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefiniteError {
    /// Index of the first pivot that failed.
    pub pivot: usize,
    /// Value of the failing pivot before taking the square root.
    pub value: f64,
}

impl fmt::Display for NotPositiveDefiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} has value {:.3e}",
            self.pivot, self.value
        )
    }
}

impl Error for NotPositiveDefiniteError {}

/// The lower-triangular Cholesky factor `L` of an SPD matrix `A = L Lᵀ`.
///
/// Supports solving `A x = b`, triangular solves, and the log-determinant —
/// everything a Gaussian-process posterior needs.
///
/// # Example
///
/// ```
/// use varbench_linalg::{Cholesky, Matrix};
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let chol = Cholesky::new(&a)?;
/// // det(A) = 3, so log det = ln 3.
/// assert!((chol.log_det() - 3.0f64.ln()).abs() < 1e-12);
/// # Ok::<(), varbench_linalg::NotPositiveDefiniteError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes the SPD matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefiniteError`] if a pivot is non-positive
    /// (matrix not SPD, possibly due to rounding).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Result<Self, NotPositiveDefiniteError> {
        assert!(a.is_square(), "Cholesky requires a square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // sum = a_ij − Σ_{k<j} l_ik · l_jk, subtracted in ascending
                // k exactly like the seed's index-by-index loop — but read
                // through contiguous row slices so the inner loop carries
                // no bounds checks or index arithmetic.
                let sum = {
                    let ri = &l.row(i)[..j];
                    let rj = &l.row(j)[..j];
                    let mut s = a[(i, j)];
                    for (x, y) in ri.iter().zip(rj) {
                        s -= x * y;
                    }
                    s
                };
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefiniteError {
                            pivot: i,
                            value: sum,
                        });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// Factorizes `a + jitter·I`, growing `jitter` geometrically (×10, up to
    /// `max_tries`) until the factorization succeeds.
    ///
    /// This is the standard defence against near-singular GP kernel matrices.
    ///
    /// # Errors
    ///
    /// Returns the last failure if no jitter level in the schedule succeeds.
    pub fn new_with_jitter(
        a: &Matrix,
        initial_jitter: f64,
        max_tries: usize,
    ) -> Result<Self, NotPositiveDefiniteError> {
        match Self::new(a) {
            Ok(c) => return Ok(c),
            Err(e) if max_tries == 0 => return Err(e),
            Err(_) => {}
        }
        let mut jitter = initial_jitter.max(f64::MIN_POSITIVE);
        let mut last = NotPositiveDefiniteError {
            pivot: 0,
            value: f64::NAN,
        };
        for _ in 0..max_tries {
            let mut aj = a.clone();
            aj.add_diagonal(jitter);
            match Self::new(&aj) {
                Ok(c) => return Ok(c),
                Err(e) => last = e,
            }
            jitter *= 10.0;
        }
        Err(last)
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward and backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        self.solve_upper(&y)
    }

    /// Solves the lower-triangular system `L y = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.solve_lower_into(b, &mut y);
        y
    }

    /// [`Cholesky::solve_lower`] into a caller-provided buffer (resized as
    /// needed; no allocation once warm) — for hot loops like the GP
    /// posterior that solve thousands of right-hand sides per step.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve_lower_into(&self, b: &[f64], y: &mut Vec<f64>) {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "solve dimension mismatch");
        y.clear();
        y.resize(n, 0.0);
        for i in 0..n {
            let row = self.l.row(i);
            let mut sum = b[i];
            for (x, yk) in row[..i].iter().zip(y.iter()) {
                sum -= x * yk;
            }
            y[i] = sum / row[i];
        }
    }

    /// Batched [`Cholesky::solve_lower_into`]: solves `L y_c = b_c` for
    /// `count` independent right-hand sides packed candidate-major in `b`
    /// (`count × n`), writing the solutions candidate-major into `y`.
    ///
    /// The row loop is hoisted outside the candidate loop so each `L` row
    /// is read once per `count` eliminations instead of once per
    /// candidate. Per right-hand side the elimination chain — seed with
    /// `b[i]`, subtract `L[i][k]·y[k]` in ascending `k`, one divide by the
    /// pivot — is untouched, so every element is bitwise identical to
    /// `count` separate [`Cholesky::solve_lower_into`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != count * n`.
    // lint: no-alloc
    pub fn solve_lower_batch_into(&self, b: &[f64], count: usize, y: &mut Vec<f64>) {
        let n = self.l.rows();
        assert_eq!(b.len(), count * n, "solve dimension mismatch");
        y.clear();
        y.resize(count * n, 0.0);
        for i in 0..n {
            let row = self.l.row(i);
            let pivot = row[i];
            for c in 0..count {
                let yc = &mut y[c * n..(c + 1) * n];
                let mut sum = b[c * n + i];
                for (x, yk) in row[..i].iter().zip(yc.iter()) {
                    sum -= x * yk;
                }
                yc[i] = sum / pivot;
            }
        }
    }

    /// Solves the upper-triangular system `Lᵀ x = y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` does not match the matrix dimension.
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(y.len(), n, "solve dimension mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Returns `log det(A) = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Reconstructs `A = L Lᵀ` (mainly for testing).
    ///
    /// Uses the transpose-aware kernel directly — no `transpose()`
    /// allocation — with output bit-identical to
    /// `l.matmul(&l.transpose())`.
    pub fn reconstruct(&self) -> Matrix {
        self.l.matmul_transb(&self.l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
    }

    #[test]
    fn wikipedia_example_factor() {
        // Known factorization: L = [[2,0,0],[6,1,0],[-8,5,3]].
        let c = Cholesky::new(&spd3()).unwrap();
        let l = c.factor();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 8.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
        assert!((l[(0, 1)]).abs() < 1e-12, "upper triangle must be zero");
    }

    #[test]
    fn reconstruct_roundtrip() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let r = c.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let c = Cholesky::new(&a).unwrap();
        let x = c.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }

    #[test]
    fn log_det_matches_product_of_pivots() {
        // det(spd3) = (2*1*3)^2 = 36.
        let c = Cholesky::new(&spd3()).unwrap();
        assert!((c.log_det() - 36.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn non_spd_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let err = Cholesky::new(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.value <= 0.0);
        assert!(err.to_string().contains("not positive definite"));
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-1 matrix: xxᵀ with x = (1, 1); singular, needs jitter.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(Cholesky::new(&a).is_err());
        let c = Cholesky::new_with_jitter(&a, 1e-10, 12).unwrap();
        let r = c.reconstruct();
        // Reconstruction approximates A up to the jitter magnitude.
        assert!((r[(0, 1)] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn jitter_zero_tries_is_plain_cholesky() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(Cholesky::new_with_jitter(&a, 1e-10, 0).is_err());
    }

    #[test]
    fn triangular_solves_compose() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let y = c.solve_lower(&b);
        let x = c.solve_upper(&y);
        assert_eq!(x, c.solve(&b));
    }

    #[test]
    fn identity_solve_is_identity() {
        let c = Cholesky::new(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(c.solve(&b), b);
        assert!((c.log_det()).abs() < 1e-15);
    }
}
