//! Small dense linear algebra for `varbench`.
//!
//! Provides exactly what the workspace's numerical components need and no
//! more: a row-major dense [`Matrix`], vector helpers, and a robust
//! [`Cholesky`] factorization with triangular solves and log-determinant —
//! the kernel of the Gaussian-process surrogate in `varbench-hpo` and of the
//! ridge/linear models in `varbench-models`.
//!
//! # Example
//!
//! ```
//! use varbench_linalg::{Cholesky, Matrix};
//!
//! // Solve the SPD system A x = b.
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
//! let chol = Cholesky::new(&a).expect("SPD");
//! let x = chol.solve(&[2.0, 1.0]);
//! assert!((4.0 * x[0] + 2.0 * x[1] - 2.0).abs() < 1e-12);
//! assert!((2.0 * x[0] + 3.0 * x[1] - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod matrix;
mod ops;

pub use cholesky::{Cholesky, NotPositiveDefiniteError};
pub use matrix::Matrix;
pub use ops::{
    axpy, compact_nonzero, dot, gemm_col_nz_into, gemm_rows_into, gemm_transb_into,
    matvec_cols_init, matvec_rows, matvec_rows_init, norm2, scale, sub, vecmat_into,
    vecmat_nz_into,
};
