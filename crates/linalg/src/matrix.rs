//! Row-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// Sized for the workloads in this workspace (GP kernels up to a few hundred
/// points, MLP weight blocks up to a few thousand entries); all operations
/// are straightforward O(n³)/O(n²) loops, which the compiler vectorizes well
/// at these sizes.
///
/// # Example
///
/// ```
/// use varbench_linalg::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// let c = a.matmul(&b);
/// assert_eq!(c[(0, 0)], 5.0); // 1*1 + 2*2
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row lengths");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix owning `data`, interpreted row-major.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of range");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// Cache-friendly ikj loop order: the inner loop streams one row of
    /// `other` into one row of the output, which autovectorizes. Each
    /// output element still accumulates its `k` terms in ascending order
    /// (and skips exact-zero `a_ik` terms), so results are bit-identical
    /// run to run and against the seed kernel.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // `.max(1)`: `chunks_exact` rejects a zero chunk size; degenerate
        // 0-column operands simply produce the all-zero result.
        for (arow, out_row) in self
            .data
            .chunks_exact(self.cols.max(1))
            .zip(out.data.chunks_exact_mut(other.cols.max(1)))
        {
            for (&a, orow) in arow.iter().zip(other.data.chunks_exact(other.cols.max(1))) {
                if a == 0.0 {
                    continue;
                }
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product with a transposed right-hand side: `self * otherᵀ`,
    /// without materializing the transpose.
    ///
    /// `out[i][j]` is the dot product of row `i` of `self` and row `j` of
    /// `other` — both contiguous in memory, so no `transpose()` allocation
    /// or strided access is needed. The accumulation order per output
    /// element (ascending `k`, exact-zero `self` terms skipped) matches
    /// `self.matmul(&other.transpose())` bit for bit.
    ///
    /// Throughput note: the dot-form accumulator chains vectorize less
    /// aggressively than [`Matrix::matmul`]'s streaming inner loop, so at
    /// large dense sizes this trades a little arithmetic speed for the
    /// absent transpose allocation — prefer it in allocation-sensitive
    /// loops and for the small/sparse-row shapes of this workspace.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions (`self.cols` vs `other.cols`)
    /// disagree.
    pub fn matmul_transb(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transb dimension mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        if self.cols == 0 {
            // Zero inner dimension: every dot product is the empty sum.
            return out;
        }
        // The skip set of an output row depends only on the `self` row, so
        // compact the non-zero k's once per row (branch-free) instead of
        // branching on every term of every dot product.
        let mut nzk: Vec<usize> = vec![0; self.cols];
        for (arow, out_row) in self
            .data
            .chunks_exact(self.cols)
            .zip(out.data.chunks_exact_mut(other.rows.max(1)))
        {
            let mut nnz = 0;
            for (k, &a) in arow.iter().enumerate() {
                nzk[nnz] = k;
                nnz += usize::from(a != 0.0);
            }
            let mut brows = other.data.chunks_exact(other.cols);
            let mut j = 0;
            // Four independent accumulator chains (one per B row) hide
            // FP-add latency; each output element still sums its terms in
            // ascending-k order with exact-zero `self` terms skipped, so
            // results are bit-identical to `self.matmul(&other.transpose())`.
            while j + 4 <= out_row.len() {
                let b0 = brows.next().expect("row");
                let b1 = brows.next().expect("row");
                let b2 = brows.next().expect("row");
                let b3 = brows.next().expect("row");
                let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                if nnz == arow.len() {
                    // Dense row: straight contiguous dots.
                    for (k, &a) in arow.iter().enumerate() {
                        s0 += a * b0[k];
                        s1 += a * b1[k];
                        s2 += a * b2[k];
                        s3 += a * b3[k];
                    }
                } else {
                    for &k in &nzk[..nnz] {
                        let a = arow[k];
                        s0 += a * b0[k];
                        s1 += a * b1[k];
                        s2 += a * b2[k];
                        s3 += a * b3[k];
                    }
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += 4;
            }
            for o in out_row[j..].iter_mut() {
                let brow = brows.next().expect("row");
                let mut s = 0.0;
                for &k in &nzk[..nnz] {
                    s += arow[k] * brow[k];
                }
                *o = s;
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out);
        out
    }

    /// Matrix–vector product `self * v` written into a caller-provided
    /// buffer (no allocation). Accumulation order per output element is
    /// identical to [`Matrix::matvec`].
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        crate::ops::matvec_rows(&self.data, v, out);
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Returns `self` scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|a| a * s).collect(),
        )
    }

    /// Adds `v` to the diagonal in place (e.g. jitter or ridge terms).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, v: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            let idx = i * self.cols + i;
            self.data[idx] += v;
        }
    }

    /// Maximum absolute element (∞-norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_transb_matches_transpose_route() {
        // Odd sizes exercise the 4-row block and the tail; planted zeros
        // exercise the sparse-row compaction path.
        let mut a = Matrix::from_fn(5, 7, |i, j| ((i * 7 + j) as f64 * 0.37).sin());
        a[(1, 3)] = 0.0;
        a[(4, 0)] = 0.0;
        a[(4, 6)] = 0.0;
        let b = Matrix::from_fn(6, 7, |i, j| ((i * 5 + j) as f64 * 0.53).cos());
        let via_transpose = a.matmul(&b.transpose());
        let direct = a.matmul_transb(&b);
        assert_eq!(direct.rows(), 5);
        assert_eq!(direct.cols(), 6);
        for (x, y) in direct.as_slice().iter().zip(via_transpose.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_transb_degenerate_inner_dim() {
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(3, 0);
        let c = a.matmul_transb(&b);
        assert_eq!((c.rows(), c.cols()), (2, 3));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let a = Matrix::from_fn(6, 5, |i, j| ((i + 2 * j) as f64 * 0.71).sin());
        let v: Vec<f64> = (0..5).map(|i| (i as f64 * 0.9).cos()).collect();
        let mut out = vec![0.0; 6];
        a.matvec_into(&v, &mut out);
        let owned = a.matvec(&v);
        for (x, y) in out.iter().zip(&owned) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let v = vec![3.0, 4.0];
        let got = a.matvec(&v);
        assert_eq!(got, vec![-1.0, 8.0]);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(a.scaled(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn add_diagonal_jitter() {
        let mut a = Matrix::zeros(3, 3);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 0.5);
        assert_eq!(a[(1, 1)], 0.5);
        assert_eq!(a[(2, 2)], 0.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn rows_accessors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 2);
        assert!(a.is_square());
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "inconsistent row lengths")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn max_abs_finds_extreme() {
        let a = Matrix::from_rows(&[&[1.0, -7.0], &[3.0, 4.0]]);
        assert_eq!(a.max_abs(), 7.0);
    }
}
