//! Row-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// Sized for the workloads in this workspace (GP kernels up to a few hundred
/// points, MLP weight blocks up to a few thousand entries); all operations
/// are straightforward O(n³)/O(n²) loops, which the compiler vectorizes well
/// at these sizes.
///
/// # Example
///
/// ```
/// use varbench_linalg::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// let c = a.matmul(&b);
/// assert_eq!(c[(0, 0)], 5.0); // 1*1 + 2*2
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row lengths");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix owning `data`, interpreted row-major.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of range");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Returns `self` scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|a| a * s).collect(),
        )
    }

    /// Adds `v` to the diagonal in place (e.g. jitter or ridge terms).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, v: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            let idx = i * self.cols + i;
            self.data[idx] += v;
        }
    }

    /// Maximum absolute element (∞-norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let v = vec![3.0, 4.0];
        let got = a.matvec(&v);
        assert_eq!(got, vec![-1.0, 8.0]);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(a.scaled(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn add_diagonal_jitter() {
        let mut a = Matrix::zeros(3, 3);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 0.5);
        assert_eq!(a[(1, 1)], 0.5);
        assert_eq!(a[(2, 2)], 0.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn rows_accessors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 2);
        assert!(a.is_square());
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "inconsistent row lengths")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn max_abs_finds_extreme() {
        let a = Matrix::from_rows(&[&[1.0, -7.0], &[3.0, 4.0]]);
        assert_eq!(a.max_abs(), 7.0);
    }
}
