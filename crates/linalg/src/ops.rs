//! Free-standing vector operations.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
///
/// # Example
///
/// ```
/// assert_eq!(varbench_linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn norm_pythagorean() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
