//! Free-standing vector operations and the register-blocked dense kernels
//! shared by [`crate::Matrix`] and the MLP layers in `varbench-models`.
//!
//! # Bit-identity
//!
//! The blocked kernels below never reorder the floating-point accumulation
//! of an individual output element: element `o` is always
//! `init[o] + Σ_k w[o·d + k]·x[k]` evaluated in ascending `k`, exactly like
//! the naive one-row-at-a-time loop. Blocking only interleaves *independent*
//! chains (four output rows at a time), which hides FP-add latency without
//! changing any result bit — the property the workspace's byte-identical
//! artifact suite relies on.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
///
/// # Example
///
/// ```
/// assert_eq!(varbench_linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Row-major dense matrix–vector kernel: `out[o] = Σ_k w[o·d + k] · x[k]`
/// with `d = x.len()`.
///
/// Four output rows are processed per iteration, giving four independent
/// accumulator chains (each in ascending-`k` order, so every output element
/// is bit-identical to the naive per-row dot product).
///
/// # Panics
///
/// Panics if `w.len() != out.len() * x.len()`.
pub fn matvec_rows(w: &[f64], x: &[f64], out: &mut [f64]) {
    let zeros = [0.0; 0];
    matvec_rows_init(w, &zeros, x, out);
}

/// Like [`matvec_rows`] but seeds each accumulator with `init[o]` (a bias
/// term): `out[o] = init[o] + Σ_k w[o·d + k] · x[k]`.
///
/// An empty `init` means "start from 0.0 for every row" (the plain
/// matrix–vector product).
///
/// # Panics
///
/// Panics if `w.len() != out.len() * x.len()`, or `init` is neither empty
/// nor of length `out.len()`.
pub fn matvec_rows_init(w: &[f64], init: &[f64], x: &[f64], out: &mut [f64]) {
    let d = x.len();
    let m = out.len();
    assert_eq!(w.len(), m * d, "matvec_rows weight length mismatch");
    assert!(
        init.is_empty() || init.len() == m,
        "matvec_rows init length mismatch"
    );
    let bias = |o: usize| if init.is_empty() { 0.0 } else { init[o] };
    let mut o = 0;
    while o + 4 <= m {
        let r0 = &w[o * d..o * d + d];
        let r1 = &w[(o + 1) * d..(o + 1) * d + d];
        let r2 = &w[(o + 2) * d..(o + 2) * d + d];
        let r3 = &w[(o + 3) * d..(o + 3) * d + d];
        let mut s0 = bias(o);
        let mut s1 = bias(o + 1);
        let mut s2 = bias(o + 2);
        let mut s3 = bias(o + 3);
        for k in 0..d {
            let xk = x[k];
            s0 += r0[k] * xk;
            s1 += r1[k] * xk;
            s2 += r2[k] * xk;
            s3 += r3[k] * xk;
        }
        out[o] = s0;
        out[o + 1] = s1;
        out[o + 2] = s2;
        out[o + 3] = s3;
        o += 4;
    }
    while o < m {
        let row = &w[o * d..o * d + d];
        let mut s = bias(o);
        for (wi, xi) in row.iter().zip(x) {
            s += wi * xi;
        }
        out[o] = s;
        o += 1;
    }
}

/// Column-major ("transposed") dense matrix–vector kernel:
/// `out[o] = init[o] + Σ_k wt[k·m + o] · x[k]` with `m = out.len()` —
/// the weights of output `o` for input `k` live at `wt[k·m + o]`, i.e.
/// input-major, so the inner loop runs contiguously over `o` and
/// autovectorizes.
///
/// Four `k` steps are fused per pass purely for load/store traffic; each
/// remains a separately rounded add applied in ascending-`k` order, so
/// every output element is bit-identical to the naive row-major loop.
/// An empty `init` means "start from 0.0 for every row".
///
/// # Panics
///
/// Panics if `wt.len() != out.len() * x.len()`, or `init` is neither
/// empty nor of length `out.len()`.
pub fn matvec_cols_init(wt: &[f64], init: &[f64], x: &[f64], out: &mut [f64]) {
    let d = x.len();
    let m = out.len();
    assert_eq!(wt.len(), m * d, "matvec_cols weight length mismatch");
    assert!(
        init.is_empty() || init.len() == m,
        "matvec_cols init length mismatch"
    );
    if init.is_empty() {
        out.fill(0.0);
    } else {
        out.copy_from_slice(init);
    }
    let mut k = 0;
    while k + 4 <= d {
        let (x0, x1, x2, x3) = (x[k], x[k + 1], x[k + 2], x[k + 3]);
        let r0 = &wt[k * m..k * m + m];
        let r1 = &wt[(k + 1) * m..(k + 1) * m + m];
        let r2 = &wt[(k + 2) * m..(k + 2) * m + m];
        let r3 = &wt[(k + 3) * m..(k + 3) * m + m];
        for j in 0..m {
            let mut s = out[j];
            s += r0[j] * x0;
            s += r1[j] * x1;
            s += r2[j] * x2;
            s += r3[j] * x3;
            out[j] = s;
        }
        k += 4;
    }
    while k < d {
        let xk = x[k];
        let row = &wt[k * m..k * m + m];
        for (o, &w) in out.iter_mut().zip(row) {
            *o += w * xk;
        }
        k += 1;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn norm_pythagorean() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn matvec_rows_matches_naive() {
        // 6 rows exercises both the 4-way block and the remainder loop.
        let d = 5;
        let w: Vec<f64> = (0..6 * d).map(|i| (i as f64 * 0.37).sin()).collect();
        let x: Vec<f64> = (0..d).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut out = vec![0.0; 6];
        matvec_rows(&w, &x, &mut out);
        for o in 0..6 {
            let mut s = 0.0;
            for k in 0..d {
                s += w[o * d + k] * x[k];
            }
            assert_eq!(out[o].to_bits(), s.to_bits(), "row {o}");
        }
    }

    #[test]
    fn matvec_cols_matches_rows_bitwise() {
        // The transposed-layout kernel must agree bit for bit with the
        // row-major kernel on every element, across block boundaries
        // (d = 7 exercises the 4-fused pass plus a 3-step tail).
        let (m, d) = (9, 7);
        let w: Vec<f64> = (0..m * d).map(|i| (i as f64 * 0.61).sin()).collect();
        let mut wt = vec![0.0; m * d];
        for o in 0..m {
            for k in 0..d {
                wt[k * m + o] = w[o * d + k];
            }
        }
        let bias: Vec<f64> = (0..m).map(|i| i as f64 * 0.3 - 1.0).collect();
        let x: Vec<f64> = (0..d).map(|i| (i as f64 * 1.7).cos()).collect();
        let mut by_rows = vec![0.0; m];
        let mut by_cols = vec![0.0; m];
        matvec_rows_init(&w, &bias, &x, &mut by_rows);
        matvec_cols_init(&wt, &bias, &x, &mut by_cols);
        for (a, b) in by_rows.iter().zip(&by_cols) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matvec_rows_init_seeds_bias() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let bias = [10.0, 20.0];
        let mut out = [0.0; 2];
        matvec_rows_init(&w, &bias, &[1.0, 1.0], &mut out);
        assert_eq!(out, [13.0, 27.0]);
    }

    #[test]
    #[should_panic(expected = "matvec_rows weight length mismatch")]
    fn matvec_rows_mismatch_panics() {
        let mut out = [0.0; 2];
        matvec_rows(&[1.0, 2.0, 3.0], &[1.0, 2.0], &mut out);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
