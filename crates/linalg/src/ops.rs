//! Free-standing vector operations and the register-blocked dense kernels
//! shared by [`crate::Matrix`] and the MLP layers in `varbench-models`.
//!
//! # Bit-identity
//!
//! The blocked kernels below never reorder the floating-point accumulation
//! of an individual output element: element `o` is always
//! `init[o] + Σ_k w[o·d + k]·x[k]` evaluated in ascending `k`, exactly like
//! the naive one-row-at-a-time loop. Blocking only interleaves *independent*
//! chains (four output rows at a time), which hides FP-add latency without
//! changing any result bit — the property the workspace's byte-identical
//! artifact suite relies on.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
///
/// # Example
///
/// ```
/// assert_eq!(varbench_linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Row-major dense matrix–vector kernel: `out[o] = Σ_k w[o·d + k] · x[k]`
/// with `d = x.len()`.
///
/// Four output rows are processed per iteration, giving four independent
/// accumulator chains (each in ascending-`k` order, so every output element
/// is bit-identical to the naive per-row dot product).
///
/// # Panics
///
/// Panics if `w.len() != out.len() * x.len()`.
pub fn matvec_rows(w: &[f64], x: &[f64], out: &mut [f64]) {
    let zeros = [0.0; 0];
    matvec_rows_init(w, &zeros, x, out);
}

/// Like [`matvec_rows`] but seeds each accumulator with `init[o]` (a bias
/// term): `out[o] = init[o] + Σ_k w[o·d + k] · x[k]`.
///
/// An empty `init` means "start from 0.0 for every row" (the plain
/// matrix–vector product).
///
/// # Panics
///
/// Panics if `w.len() != out.len() * x.len()`, or `init` is neither empty
/// nor of length `out.len()`.
// lint: no-alloc
pub fn matvec_rows_init(w: &[f64], init: &[f64], x: &[f64], out: &mut [f64]) {
    let d = x.len();
    let m = out.len();
    assert_eq!(w.len(), m * d, "matvec_rows weight length mismatch");
    assert!(
        init.is_empty() || init.len() == m,
        "matvec_rows init length mismatch"
    );
    let bias = |o: usize| if init.is_empty() { 0.0 } else { init[o] };
    let mut o = 0;
    while o + 4 <= m {
        let r0 = &w[o * d..o * d + d];
        let r1 = &w[(o + 1) * d..(o + 1) * d + d];
        let r2 = &w[(o + 2) * d..(o + 2) * d + d];
        let r3 = &w[(o + 3) * d..(o + 3) * d + d];
        let mut s0 = bias(o);
        let mut s1 = bias(o + 1);
        let mut s2 = bias(o + 2);
        let mut s3 = bias(o + 3);
        for k in 0..d {
            let xk = x[k];
            s0 += r0[k] * xk;
            s1 += r1[k] * xk;
            s2 += r2[k] * xk;
            s3 += r3[k] * xk;
        }
        out[o] = s0;
        out[o + 1] = s1;
        out[o + 2] = s2;
        out[o + 3] = s3;
        o += 4;
    }
    while o < m {
        let row = &w[o * d..o * d + d];
        let mut s = bias(o);
        for (wi, xi) in row.iter().zip(x) {
            s += wi * xi;
        }
        out[o] = s;
        o += 1;
    }
}

/// Column-major ("transposed") dense matrix–vector kernel:
/// `out[o] = init[o] + Σ_k wt[k·m + o] · x[k]` with `m = out.len()` —
/// the weights of output `o` for input `k` live at `wt[k·m + o]`, i.e.
/// input-major, so the inner loop runs contiguously over `o` and
/// autovectorizes.
///
/// Four `k` steps are fused per pass purely for load/store traffic; each
/// remains a separately rounded add applied in ascending-`k` order, so
/// every output element is bit-identical to the naive row-major loop.
/// An empty `init` means "start from 0.0 for every row".
///
/// # Panics
///
/// Panics if `wt.len() != out.len() * x.len()`, or `init` is neither
/// empty nor of length `out.len()`.
// lint: no-alloc
pub fn matvec_cols_init(wt: &[f64], init: &[f64], x: &[f64], out: &mut [f64]) {
    let d = x.len();
    let m = out.len();
    assert_eq!(wt.len(), m * d, "matvec_cols weight length mismatch");
    assert!(
        init.is_empty() || init.len() == m,
        "matvec_cols init length mismatch"
    );
    if init.is_empty() {
        out.fill(0.0);
    } else {
        out.copy_from_slice(init);
    }
    let mut k = 0;
    while k + 4 <= d {
        let (x0, x1, x2, x3) = (x[k], x[k + 1], x[k + 2], x[k + 3]);
        let r0 = &wt[k * m..k * m + m];
        let r1 = &wt[(k + 1) * m..(k + 1) * m + m];
        let r2 = &wt[(k + 2) * m..(k + 2) * m + m];
        let r3 = &wt[(k + 3) * m..(k + 3) * m + m];
        for j in 0..m {
            let mut s = out[j];
            s += r0[j] * x0;
            s += r1[j] * x1;
            s += r2[j] * x2;
            s += r3[j] * x3;
            out[j] = s;
        }
        k += 4;
    }
    while k < d {
        let xk = x[k];
        let row = &wt[k * m..k * m + m];
        for (o, &w) in out.iter_mut().zip(row) {
            *o += w * xk;
        }
        k += 1;
    }
}

/// Batched row-streaming GEMM: `out = X · W + init` with the weights in
/// input-major ("transposed") layout — the true batch kernel behind the
/// MLP's layer-major forward phase.
///
/// Shapes: `x` is `n × d` example-major, `wt` is `d × m` input-major (the
/// weights of output `o` for input `k` live at `wt[k·m + o]`), `out` is
/// `n × m` example-major, and `init` (a bias) is broadcast to every row
/// (empty = all zeros).
///
/// Register blocking runs **across example rows**: four examples advance
/// together through four fused `k` steps, so each weight row is loaded
/// once per four examples (instead of once per example, as the
/// per-example [`matvec_cols_init`] loop pays) and each output row is
/// loaded/stored once per four `k` steps. Per output element the
/// accumulation is still one separately rounded add per `k`, in ascending
/// `k` — bit-identical to the per-example kernel it batches.
///
/// # Panics
///
/// Panics if the shapes are inconsistent (`out.len()` not a multiple of
/// `m`, `x.len()` not a multiple of the row count, `wt.len() ≠ d·m`) or
/// `init` is neither empty nor of length `m`.
// lint: no-alloc
pub fn gemm_rows_into(x: &[f64], wt: &[f64], init: &[f64], m: usize, out: &mut [f64]) {
    assert!(m > 0, "gemm_rows_into needs m > 0");
    assert_eq!(out.len() % m, 0, "gemm_rows_into output shape mismatch");
    let n = out.len() / m;
    if n == 0 {
        return;
    }
    assert_eq!(x.len() % n, 0, "gemm_rows_into input shape mismatch");
    let d = x.len() / n;
    assert_eq!(wt.len(), d * m, "gemm_rows_into weight length mismatch");
    assert!(
        init.is_empty() || init.len() == m,
        "gemm_rows_into init length mismatch"
    );
    let mut s = 0;
    // Eight example rows per block first: one weight-row load feeds eight
    // accumulator chains instead of four. Widening the example block only
    // adds more *independent* chains per weight load — each output
    // element's chain is still the bias-seeded ascending-k order, so the
    // 8/4/1 block boundaries are invisible in the bits. (Eight f64 chains
    // plus four weight vectors fit the 32-register AVX-512 file; the
    // fixed-size array loops below unroll fully.)
    while s + 8 <= n {
        let (x0, x1, x2, x3, x4, x5, x6, x7) = (
            &x[s * d..(s + 1) * d],
            &x[(s + 1) * d..(s + 2) * d],
            &x[(s + 2) * d..(s + 3) * d],
            &x[(s + 3) * d..(s + 4) * d],
            &x[(s + 4) * d..(s + 5) * d],
            &x[(s + 5) * d..(s + 6) * d],
            &x[(s + 6) * d..(s + 7) * d],
            &x[(s + 7) * d..(s + 8) * d],
        );
        let slab = &mut out[s * m..(s + 8) * m];
        let (o0, rest) = slab.split_at_mut(m);
        let (o1, rest) = rest.split_at_mut(m);
        let (o2, rest) = rest.split_at_mut(m);
        let (o3, rest) = rest.split_at_mut(m);
        let (o4, rest) = rest.split_at_mut(m);
        let (o5, rest) = rest.split_at_mut(m);
        let (o6, o7) = rest.split_at_mut(m);
        let mut k = 0;
        if d >= 2 {
            // Peeled bias-seeded first pass over two fused k steps (two,
            // not four: eight accumulator chains double the live state,
            // so the k fusion is halved to keep the j loop's working set
            // inside the vector register file).
            let w0 = &wt[..m];
            let w1 = &wt[m..2 * m];
            for j in 0..m {
                let base = if init.is_empty() { 0.0 } else { init[j] };
                let (a, b) = (w0[j], w1[j]);
                let mut t0 = base;
                t0 += a * x0[0];
                t0 += b * x0[1];
                o0[j] = t0;
                let mut t1 = base;
                t1 += a * x1[0];
                t1 += b * x1[1];
                o1[j] = t1;
                let mut t2 = base;
                t2 += a * x2[0];
                t2 += b * x2[1];
                o2[j] = t2;
                let mut t3 = base;
                t3 += a * x3[0];
                t3 += b * x3[1];
                o3[j] = t3;
                let mut t4 = base;
                t4 += a * x4[0];
                t4 += b * x4[1];
                o4[j] = t4;
                let mut t5 = base;
                t5 += a * x5[0];
                t5 += b * x5[1];
                o5[j] = t5;
                let mut t6 = base;
                t6 += a * x6[0];
                t6 += b * x6[1];
                o6[j] = t6;
                let mut t7 = base;
                t7 += a * x7[0];
                t7 += b * x7[1];
                o7[j] = t7;
            }
            k = 2;
        } else if d == 1 {
            let w0 = &wt[..m];
            let (a0, a1, a2, a3) = (x0[0], x1[0], x2[0], x3[0]);
            let (a4, a5, a6, a7) = (x4[0], x5[0], x6[0], x7[0]);
            for j in 0..m {
                let base = if init.is_empty() { 0.0 } else { init[j] };
                let w = w0[j];
                o0[j] = base + w * a0;
                o1[j] = base + w * a1;
                o2[j] = base + w * a2;
                o3[j] = base + w * a3;
                o4[j] = base + w * a4;
                o5[j] = base + w * a5;
                o6[j] = base + w * a6;
                o7[j] = base + w * a7;
            }
            k = 1;
        } else {
            for row in [
                &mut *o0, &mut *o1, &mut *o2, &mut *o3, &mut *o4, &mut *o5, &mut *o6, &mut *o7,
            ] {
                if init.is_empty() {
                    row.fill(0.0);
                } else {
                    row.copy_from_slice(init);
                }
            }
        }
        // Two fused k steps per pass: each output row is read and written
        // once per two adds (the adds stay separately rounded, ascending
        // k).
        while k + 2 <= d {
            let w0 = &wt[k * m..k * m + m];
            let w1 = &wt[(k + 1) * m..(k + 1) * m + m];
            for j in 0..m {
                let (a, b) = (w0[j], w1[j]);
                let mut t0 = o0[j];
                t0 += a * x0[k];
                t0 += b * x0[k + 1];
                o0[j] = t0;
                let mut t1 = o1[j];
                t1 += a * x1[k];
                t1 += b * x1[k + 1];
                o1[j] = t1;
                let mut t2 = o2[j];
                t2 += a * x2[k];
                t2 += b * x2[k + 1];
                o2[j] = t2;
                let mut t3 = o3[j];
                t3 += a * x3[k];
                t3 += b * x3[k + 1];
                o3[j] = t3;
                let mut t4 = o4[j];
                t4 += a * x4[k];
                t4 += b * x4[k + 1];
                o4[j] = t4;
                let mut t5 = o5[j];
                t5 += a * x5[k];
                t5 += b * x5[k + 1];
                o5[j] = t5;
                let mut t6 = o6[j];
                t6 += a * x6[k];
                t6 += b * x6[k + 1];
                o6[j] = t6;
                let mut t7 = o7[j];
                t7 += a * x7[k];
                t7 += b * x7[k + 1];
                o7[j] = t7;
            }
            k += 2;
        }
        if k < d {
            let w0 = &wt[k * m..k * m + m];
            let (a0, a1, a2, a3) = (x0[k], x1[k], x2[k], x3[k]);
            let (a4, a5, a6, a7) = (x4[k], x5[k], x6[k], x7[k]);
            for j in 0..m {
                let w = w0[j];
                o0[j] += w * a0;
                o1[j] += w * a1;
                o2[j] += w * a2;
                o3[j] += w * a3;
                o4[j] += w * a4;
                o5[j] += w * a5;
                o6[j] += w * a6;
                o7[j] += w * a7;
            }
        }
        s += 8;
    }
    while s + 4 <= n {
        let (x0, x1, x2, x3) = (
            &x[s * d..(s + 1) * d],
            &x[(s + 1) * d..(s + 2) * d],
            &x[(s + 2) * d..(s + 3) * d],
            &x[(s + 3) * d..(s + 4) * d],
        );
        let slab = &mut out[s * m..(s + 4) * m];
        let (o0, rest) = slab.split_at_mut(m);
        let (o1, rest) = rest.split_at_mut(m);
        let (o2, o3) = rest.split_at_mut(m);
        let mut k = 0;
        if d >= 4 {
            // Peeled first pass: accumulators start from the bias
            // directly, so the output rows are never pre-filled and
            // re-loaded (one full slab write+read round trip saved).
            let w0 = &wt[..m];
            let w1 = &wt[m..2 * m];
            let w2 = &wt[2 * m..3 * m];
            let w3 = &wt[3 * m..4 * m];
            for j in 0..m {
                let base = if init.is_empty() { 0.0 } else { init[j] };
                let (a, b, c, e) = (w0[j], w1[j], w2[j], w3[j]);
                let mut t0 = base;
                t0 += a * x0[0];
                t0 += b * x0[1];
                t0 += c * x0[2];
                t0 += e * x0[3];
                o0[j] = t0;
                let mut t1 = base;
                t1 += a * x1[0];
                t1 += b * x1[1];
                t1 += c * x1[2];
                t1 += e * x1[3];
                o1[j] = t1;
                let mut t2 = base;
                t2 += a * x2[0];
                t2 += b * x2[1];
                t2 += c * x2[2];
                t2 += e * x2[3];
                o2[j] = t2;
                let mut t3 = base;
                t3 += a * x3[0];
                t3 += b * x3[1];
                t3 += c * x3[2];
                t3 += e * x3[3];
                o3[j] = t3;
            }
            k = 4;
        } else if d > 0 {
            // 1–3 inputs (e.g. backpropagating a 2-logit head): seed the
            // rows from the bias inside the k = 0 pass — no fill, no
            // reload — then fall through to the single-k accumulate
            // passes for k ≥ 1. `base + w·x` rounds identically to the
            // seed's `t = base; t += w·x`.
            let w0 = &wt[..m];
            let (a0, a1, a2, a3) = (x0[0], x1[0], x2[0], x3[0]);
            for j in 0..m {
                let base = if init.is_empty() { 0.0 } else { init[j] };
                let w = w0[j];
                o0[j] = base + w * a0;
                o1[j] = base + w * a1;
                o2[j] = base + w * a2;
                o3[j] = base + w * a3;
            }
            k = 1;
        } else {
            // No inputs at all: the product is just the bias.
            for row in [&mut *o0, &mut *o1, &mut *o2, &mut *o3] {
                if init.is_empty() {
                    row.fill(0.0);
                } else {
                    row.copy_from_slice(init);
                }
            }
        }
        // Four fused k steps: each output row is read and written once
        // per four adds (the adds stay separately rounded, ascending k).
        while k + 4 <= d {
            let w0 = &wt[k * m..k * m + m];
            let w1 = &wt[(k + 1) * m..(k + 1) * m + m];
            let w2 = &wt[(k + 2) * m..(k + 2) * m + m];
            let w3 = &wt[(k + 3) * m..(k + 3) * m + m];
            for j in 0..m {
                let (a, b, c, e) = (w0[j], w1[j], w2[j], w3[j]);
                let mut t0 = o0[j];
                t0 += a * x0[k];
                t0 += b * x0[k + 1];
                t0 += c * x0[k + 2];
                t0 += e * x0[k + 3];
                o0[j] = t0;
                let mut t1 = o1[j];
                t1 += a * x1[k];
                t1 += b * x1[k + 1];
                t1 += c * x1[k + 2];
                t1 += e * x1[k + 3];
                o1[j] = t1;
                let mut t2 = o2[j];
                t2 += a * x2[k];
                t2 += b * x2[k + 1];
                t2 += c * x2[k + 2];
                t2 += e * x2[k + 3];
                o2[j] = t2;
                let mut t3 = o3[j];
                t3 += a * x3[k];
                t3 += b * x3[k + 1];
                t3 += c * x3[k + 2];
                t3 += e * x3[k + 3];
                o3[j] = t3;
            }
            k += 4;
        }
        while k < d {
            let w0 = &wt[k * m..k * m + m];
            let (a0, a1, a2, a3) = (x0[k], x1[k], x2[k], x3[k]);
            for j in 0..m {
                let w = w0[j];
                o0[j] += w * a0;
                o1[j] += w * a1;
                o2[j] += w * a2;
                o3[j] += w * a3;
            }
            k += 1;
        }
        s += 4;
    }
    // Example-row remainder: the per-example kernel (same per-element
    // accumulation order, so the block boundary is invisible in the bits).
    while s < n {
        matvec_cols_init(
            wt,
            init,
            &x[s * d..(s + 1) * d],
            &mut out[s * m..(s + 1) * m],
        );
        s += 1;
    }
}

/// Batched `out = X · Wᵀ + init` with **row-major** weights — the batch
/// analog of [`matvec_rows_init`], used for layers too narrow for the
/// vectorizable input-major kernel (e.g. output heads).
///
/// Shapes: `x` is `n × d` example-major, `w` is `m × d` row-major, `out`
/// is `n × m` example-major, `init` broadcast per row (empty = zeros).
///
/// Register blocking runs across example rows: four examples × two weight
/// rows share eight scalar accumulator chains, so each weight element is
/// loaded once per four examples ("weights held in registers"). Per
/// output element the accumulation is ascending-`k`, bit-identical to the
/// per-example row kernel.
///
/// # Panics
///
/// As [`gemm_rows_into`], with `w.len() ≠ m·d`.
// lint: no-alloc
pub fn gemm_transb_into(x: &[f64], w: &[f64], init: &[f64], m: usize, out: &mut [f64]) {
    assert!(m > 0, "gemm_transb_into needs m > 0");
    assert_eq!(out.len() % m, 0, "gemm_transb_into output shape mismatch");
    let n = out.len() / m;
    if n == 0 {
        return;
    }
    assert_eq!(x.len() % n, 0, "gemm_transb_into input shape mismatch");
    let d = x.len() / n;
    assert_eq!(w.len(), m * d, "gemm_transb_into weight length mismatch");
    assert!(
        init.is_empty() || init.len() == m,
        "gemm_transb_into init length mismatch"
    );
    let bias = |o: usize| if init.is_empty() { 0.0 } else { init[o] };
    let mut s = 0;
    while s + 4 <= n {
        let (x0, x1, x2, x3) = (
            &x[s * d..(s + 1) * d],
            &x[(s + 1) * d..(s + 2) * d],
            &x[(s + 2) * d..(s + 3) * d],
            &x[(s + 3) * d..(s + 4) * d],
        );
        let mut o = 0;
        while o + 2 <= m {
            let wa = &w[o * d..o * d + d];
            let wb = &w[(o + 1) * d..(o + 1) * d + d];
            let (mut s0a, mut s0b) = (bias(o), bias(o + 1));
            let (mut s1a, mut s1b) = (bias(o), bias(o + 1));
            let (mut s2a, mut s2b) = (bias(o), bias(o + 1));
            let (mut s3a, mut s3b) = (bias(o), bias(o + 1));
            for k in 0..d {
                let (va, vb) = (wa[k], wb[k]);
                s0a += va * x0[k];
                s0b += vb * x0[k];
                s1a += va * x1[k];
                s1b += vb * x1[k];
                s2a += va * x2[k];
                s2b += vb * x2[k];
                s3a += va * x3[k];
                s3b += vb * x3[k];
            }
            out[s * m + o] = s0a;
            out[s * m + o + 1] = s0b;
            out[(s + 1) * m + o] = s1a;
            out[(s + 1) * m + o + 1] = s1b;
            out[(s + 2) * m + o] = s2a;
            out[(s + 2) * m + o + 1] = s2b;
            out[(s + 3) * m + o] = s3a;
            out[(s + 3) * m + o + 1] = s3b;
            o += 2;
        }
        if o < m {
            let wa = &w[o * d..o * d + d];
            let (mut s0, mut s1, mut s2, mut s3) = (bias(o), bias(o), bias(o), bias(o));
            for k in 0..d {
                let va = wa[k];
                s0 += va * x0[k];
                s1 += va * x1[k];
                s2 += va * x2[k];
                s3 += va * x3[k];
            }
            out[s * m + o] = s0;
            out[(s + 1) * m + o] = s1;
            out[(s + 2) * m + o] = s2;
            out[(s + 3) * m + o] = s3;
        }
        s += 4;
    }
    while s < n {
        matvec_rows_init(
            w,
            init,
            &x[s * d..(s + 1) * d],
            &mut out[s * m..(s + 1) * m],
        );
        s += 1;
    }
}

/// Branch-free compaction of the indices of non-zero elements: writes the
/// ascending positions of every `xs[i] != 0.0` into the front of `idx`
/// and returns how many there are. The cursor advances by a bool cast,
/// never a data-dependent jump — zero patterns from ReLU gating are
/// irregular and would mispredict as branches.
///
/// # Panics
///
/// Panics if `idx` is shorter than `xs`.
// lint: no-alloc
pub fn compact_nonzero(xs: &[f64], idx: &mut [usize]) -> usize {
    assert!(idx.len() >= xs.len(), "compact_nonzero scratch too short");
    let mut nnz = 0;
    for (i, &x) in xs.iter().enumerate() {
        idx[nnz] = i;
        nnz += usize::from(x != 0.0);
    }
    nnz
}

/// Sparse-coefficient vector–matrix product:
/// `out[k] = Σ_j coef[idx[j]] · rows[idx[j]·d + k]`, accumulated in
/// ascending `j` — the shared batch kernel of the MLP's gradient and
/// backward-delta phases (`G = Δᵀ·X` row by row, `δ_below = Δ·W` row by
/// row), with `idx` the [`compact_nonzero`] prefix of the coefficient
/// vector. `idx` must be ascending and duplicate-free (the
/// [`compact_nonzero`] contract): a full-length `idx` is taken to be the
/// identity and dispatches to the dense [`vecmat_into`] fast path.
///
/// `out` is overwritten (an empty `idx` zero-fills it). Skipping the
/// zero coefficients via `idx` is load-bearing for bit-identity, not just
/// speed: a diverged training can hold `±∞` activations, and `0·∞` would
/// poison the sum with NaN where the seed loop skipped the term.
///
/// The accumulators are held in registers across the whole `j` loop,
/// eight `k` lanes at a time, so the output row costs one store per
/// element instead of the load/store per contributing row an
/// [`axpy`]-based loop pays.
///
/// # Panics
///
/// Panics if `out.len() != d`, or an index in `idx` addresses past the
/// end of `coef` or `rows`.
// lint: no-alloc
pub fn vecmat_nz_into(coef: &[f64], idx: &[usize], rows: &[f64], d: usize, out: &mut [f64]) {
    assert_eq!(out.len(), d, "vecmat_nz_into output length mismatch");
    // A full index list means there is nothing to skip: drop the
    // indirection and stream the coefficients directly (same adds, same
    // order — the dense loop is just the sparse loop with `idx[j] = j`).
    if idx.len() == coef.len() {
        return vecmat_into(coef, rows, d, out);
    }
    let mut k0 = 0;
    while k0 + 8 <= d {
        let mut acc = [0.0f64; 8];
        for &j in idx {
            let c = coef[j];
            let r = &rows[j * d + k0..j * d + k0 + 8];
            acc[0] += c * r[0];
            acc[1] += c * r[1];
            acc[2] += c * r[2];
            acc[3] += c * r[3];
            acc[4] += c * r[4];
            acc[5] += c * r[5];
            acc[6] += c * r[6];
            acc[7] += c * r[7];
        }
        out[k0..k0 + 8].copy_from_slice(&acc);
        k0 += 8;
    }
    if k0 < d {
        let tail = &mut out[k0..];
        tail.fill(0.0);
        for &j in idx {
            let c = coef[j];
            let r = &rows[j * d + k0..j * d + d];
            for (o, &v) in tail.iter_mut().zip(r) {
                *o += c * v;
            }
        }
    }
}

/// Dense form of [`vecmat_nz_into`]: `out[k] = Σ_j coef[j] · rows[j·d + k]`
/// with every coefficient included (ascending `j`, same register-tiled
/// accumulation). Only correct as a replacement for the sparse kernel
/// when `coef` holds no exact zeros — with zeros present it would add
/// `0·row` terms the seed loop skipped (a `0·∞ = NaN` hazard, and
/// `+0.0` can flip a `-0.0` partial sum).
///
/// # Panics
///
/// Panics if `out.len() != d` or `rows` is shorter than `coef.len()·d`
/// (a longer `rows` is allowed: callers hand in whole preallocated slabs
/// whose tail a partial batch leaves unused).
// lint: no-alloc
pub fn vecmat_into(coef: &[f64], rows: &[f64], d: usize, out: &mut [f64]) {
    assert_eq!(out.len(), d, "vecmat_into output length mismatch");
    assert!(
        rows.len() >= coef.len() * d,
        "vecmat_into rows length mismatch"
    );
    let mut k0 = 0;
    while k0 + 8 <= d {
        let mut acc = [0.0f64; 8];
        for (j, &c) in coef.iter().enumerate() {
            let r = &rows[j * d + k0..j * d + k0 + 8];
            acc[0] += c * r[0];
            acc[1] += c * r[1];
            acc[2] += c * r[2];
            acc[3] += c * r[3];
            acc[4] += c * r[4];
            acc[5] += c * r[5];
            acc[6] += c * r[6];
            acc[7] += c * r[7];
        }
        out[k0..k0 + 8].copy_from_slice(&acc);
        k0 += 8;
    }
    if k0 < d {
        let tail = &mut out[k0..];
        tail.fill(0.0);
        for (j, &c) in coef.iter().enumerate() {
            let r = &rows[j * d + k0..j * d + d];
            for (o, &v) in tail.iter_mut().zip(r) {
                *o += c * v;
            }
        }
    }
}

/// One output row of the batched gradient GEMM `G = Δᵀ·Act`, read
/// straight from the example-major delta slab — no transposed copy of Δ
/// is ever materialized.
///
/// `out[k] = Σ_j Δ[idx[j]·stride + col] · act[idx[j]·d + k]` accumulated
/// in ascending `j` (ascending example order), with `idx` the
/// [`compact_nonzero`] index list of column `col`'s non-zero deltas
/// (ascending, duplicate-free — the zero-skip is the seed loop's `0·∞`
/// guard). Returns the coefficient sum `Σ_j Δ[idx[j]·stride + col]` —
/// the matching bias gradient, summed in the same ascending order the
/// seed loop used.
///
/// Accumulators live in registers across the whole example walk, sixteen
/// `k` lanes at a time (one walk for layers up to 16 inputs), so the
/// gradient row costs one store per element and the strided coefficient
/// loads hit the L1-resident slab.
///
/// # Panics
///
/// Panics if `out.len() != d`, or an index walks past `delta`/`act`.
// lint: no-alloc
pub fn gemm_col_nz_into(
    delta: &[f64],
    stride: usize,
    col: usize,
    idx: &[usize],
    act: &[f64],
    d: usize,
    out: &mut [f64],
) -> f64 {
    assert_eq!(out.len(), d, "gemm_col_nz_into output length mismatch");
    let mut csum = 0.0;
    for &j in idx {
        csum += delta[j * stride + col];
    }
    let mut k0 = 0;
    while k0 + 16 <= d {
        let mut acc = [0.0f64; 16];
        for &j in idx {
            let c = delta[j * stride + col];
            let r = &act[j * d + k0..j * d + k0 + 16];
            for (a, &v) in acc.iter_mut().zip(r) {
                *a += c * v;
            }
        }
        out[k0..k0 + 16].copy_from_slice(&acc);
        k0 += 16;
    }
    if k0 + 8 <= d {
        let mut acc = [0.0f64; 8];
        for &j in idx {
            let c = delta[j * stride + col];
            let r = &act[j * d + k0..j * d + k0 + 8];
            for (a, &v) in acc.iter_mut().zip(r) {
                *a += c * v;
            }
        }
        out[k0..k0 + 8].copy_from_slice(&acc);
        k0 += 8;
    }
    if k0 < d {
        let tail = &mut out[k0..];
        tail.fill(0.0);
        for &j in idx {
            let c = delta[j * stride + col];
            let r = &act[j * d + k0..j * d + d];
            for (o, &v) in tail.iter_mut().zip(r) {
                *o += c * v;
            }
        }
    }
    csum
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn norm_pythagorean() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn matvec_rows_matches_naive() {
        // 6 rows exercises both the 4-way block and the remainder loop.
        let d = 5;
        let w: Vec<f64> = (0..6 * d).map(|i| (i as f64 * 0.37).sin()).collect();
        let x: Vec<f64> = (0..d).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut out = vec![0.0; 6];
        matvec_rows(&w, &x, &mut out);
        for o in 0..6 {
            let mut s = 0.0;
            for k in 0..d {
                s += w[o * d + k] * x[k];
            }
            assert_eq!(out[o].to_bits(), s.to_bits(), "row {o}");
        }
    }

    #[test]
    fn matvec_cols_matches_rows_bitwise() {
        // The transposed-layout kernel must agree bit for bit with the
        // row-major kernel on every element, across block boundaries
        // (d = 7 exercises the 4-fused pass plus a 3-step tail).
        let (m, d) = (9, 7);
        let w: Vec<f64> = (0..m * d).map(|i| (i as f64 * 0.61).sin()).collect();
        let mut wt = vec![0.0; m * d];
        for o in 0..m {
            for k in 0..d {
                wt[k * m + o] = w[o * d + k];
            }
        }
        let bias: Vec<f64> = (0..m).map(|i| i as f64 * 0.3 - 1.0).collect();
        let x: Vec<f64> = (0..d).map(|i| (i as f64 * 1.7).cos()).collect();
        let mut by_rows = vec![0.0; m];
        let mut by_cols = vec![0.0; m];
        matvec_rows_init(&w, &bias, &x, &mut by_rows);
        matvec_cols_init(&wt, &bias, &x, &mut by_cols);
        for (a, b) in by_rows.iter().zip(&by_cols) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matvec_rows_init_seeds_bias() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let bias = [10.0, 20.0];
        let mut out = [0.0; 2];
        matvec_rows_init(&w, &bias, &[1.0, 1.0], &mut out);
        assert_eq!(out, [13.0, 27.0]);
    }

    #[test]
    #[should_panic(expected = "matvec_rows weight length mismatch")]
    fn matvec_rows_mismatch_panics() {
        let mut out = [0.0; 2];
        matvec_rows(&[1.0, 2.0, 3.0], &[1.0, 2.0], &mut out);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
    }

    /// Shared fixture: n examples × d inputs × m outputs with deterministic
    /// awkward values, plus both weight layouts.
    fn gemm_fixture(n: usize, d: usize, m: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n * d).map(|i| (i as f64 * 0.23).sin()).collect();
        let w: Vec<f64> = (0..m * d).map(|i| (i as f64 * 0.71).cos()).collect();
        let mut wt = vec![0.0; m * d];
        for o in 0..m {
            for k in 0..d {
                wt[k * m + o] = w[o * d + k];
            }
        }
        let bias: Vec<f64> = (0..m).map(|i| i as f64 * 0.4 - 1.1).collect();
        (x, w, wt, bias)
    }

    #[test]
    fn gemm_kernels_match_per_example_matvec_bitwise() {
        // Sizes straddle every block boundary: example blocks of 4 (n = 7
        // exercises block + 3-row tail), k fusion of 4 (d = 6), and the
        // 2-wide output blocking with an odd m.
        for (n, d, m) in [(7, 6, 5), (4, 4, 8), (9, 3, 2), (1, 10, 3), (5, 1, 1)] {
            let (x, w, wt, bias) = gemm_fixture(n, d, m);
            let mut want = vec![0.0; n * m];
            for s in 0..n {
                matvec_rows_init(
                    &w,
                    &bias,
                    &x[s * d..(s + 1) * d],
                    &mut want[s * m..(s + 1) * m],
                );
            }
            let mut by_rows = vec![f64::NAN; n * m];
            gemm_rows_into(&x, &wt, &bias, m, &mut by_rows);
            let mut by_transb = vec![f64::NAN; n * m];
            gemm_transb_into(&x, &w, &bias, m, &mut by_transb);
            for i in 0..n * m {
                assert_eq!(
                    by_rows[i].to_bits(),
                    want[i].to_bits(),
                    "rows {n}x{d}x{m} @{i}"
                );
                assert_eq!(
                    by_transb[i].to_bits(),
                    want[i].to_bits(),
                    "transb {n}x{d}x{m} @{i}"
                );
            }
        }
    }

    #[test]
    fn gemm_empty_init_means_zero_bias() {
        let (x, w, wt, _) = gemm_fixture(6, 5, 4);
        let zeros = vec![0.0; 4];
        let mut with_zeros = vec![0.0; 24];
        gemm_rows_into(&x, &wt, &zeros, 4, &mut with_zeros);
        let mut with_empty = vec![0.0; 24];
        gemm_rows_into(&x, &wt, &[], 4, &mut with_empty);
        assert_eq!(with_zeros, with_empty);
        let mut tb = vec![0.0; 24];
        gemm_transb_into(&x, &w, &[], 4, &mut tb);
        assert_eq!(tb, with_empty);
    }

    #[test]
    fn gemm_zero_rows_is_a_noop() {
        let mut out: [f64; 0] = [];
        gemm_rows_into(&[], &[1.0, 2.0], &[], 2, &mut out);
        gemm_transb_into(&[], &[1.0, 2.0], &[], 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "gemm_rows_into weight length mismatch")]
    fn gemm_rows_shape_checked() {
        let mut out = [0.0; 4];
        gemm_rows_into(&[1.0, 2.0, 3.0, 4.0], &[1.0; 3], &[], 2, &mut out);
    }

    #[test]
    fn compact_nonzero_indices_ascending() {
        let xs = [0.0, 1.5, -0.0, 2.5, 0.0, -3.0];
        let mut idx = [0usize; 6];
        // -0.0 == 0.0, so index 2 is skipped like the seed's `!= 0.0` test.
        let nnz = compact_nonzero(&xs, &mut idx);
        assert_eq!(&idx[..nnz], &[1, 3, 5]);
        assert_eq!(compact_nonzero(&[], &mut idx), 0);
    }

    #[test]
    fn vecmat_nz_matches_axpy_loop_bitwise() {
        // d = 11 exercises the 8-lane tile plus a 3-lane tail.
        let (n, d) = (6, 11);
        let rows: Vec<f64> = (0..n * d).map(|i| (i as f64 * 0.37).sin()).collect();
        let coef = [0.4, 0.0, -1.2, 0.0, 0.7, 2.5];
        let mut idx = [0usize; 6];
        let nnz = compact_nonzero(&coef, &mut idx);
        let mut got = vec![f64::NAN; d];
        vecmat_nz_into(&coef, &idx[..nnz], &rows, d, &mut got);
        // Seed loop: zero-fill then one axpy per non-zero coefficient.
        let mut want = vec![0.0; d];
        for (j, &c) in coef.iter().enumerate() {
            if c != 0.0 {
                axpy(c, &rows[j * d..(j + 1) * d], &mut want);
            }
        }
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn vecmat_nz_skips_inf_rows_under_zero_coef() {
        // The zero-skip is semantic, not cosmetic: 0·∞ must never reach
        // the sum (a diverged training holds ∞ activations).
        let rows = [f64::INFINITY, f64::NEG_INFINITY, 1.0, 2.0];
        let coef = [0.0, 3.0];
        let mut idx = [0usize; 2];
        let nnz = compact_nonzero(&coef, &mut idx);
        let mut out = [0.0; 2];
        vecmat_nz_into(&coef, &idx[..nnz], &rows, 2, &mut out);
        assert_eq!(out, [3.0, 6.0]);
    }

    #[test]
    fn vecmat_nz_empty_index_zero_fills() {
        let mut out = [f64::NAN; 10];
        vecmat_nz_into(&[], &[], &[], 10, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
