//! Property-based tests: Cholesky correctness on arbitrary SPD matrices.

use proptest::prelude::*;
use varbench_linalg::{Cholesky, Matrix};

/// Builds a random SPD matrix A = BᵀB + εI from a flat coefficient list.
fn spd_from(coeffs: &[f64], n: usize) -> Matrix {
    let b = Matrix::from_vec(n, n, coeffs[..n * n].to_vec());
    let mut a = b.transpose().matmul(&b);
    a.add_diagonal(0.5);
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cholesky_reconstructs_spd(
        coeffs in prop::collection::vec(-3.0f64..3.0, 16..=16),
    ) {
        let a = spd_from(&coeffs, 4);
        let chol = Cholesky::new(&a).expect("SPD by construction");
        let r = chol.reconstruct();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!(
                    (r[(i, j)] - a[(i, j)]).abs() < 1e-8,
                    "({i},{j}): {} vs {}", r[(i, j)], a[(i, j)]
                );
            }
        }
    }

    #[test]
    fn cholesky_solve_satisfies_system(
        coeffs in prop::collection::vec(-3.0f64..3.0, 16..=16),
        b in prop::collection::vec(-5.0f64..5.0, 4..=4),
    ) {
        let a = spd_from(&coeffs, 4);
        let chol = Cholesky::new(&a).expect("SPD");
        let x = chol.solve(&b);
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-7, "{got} vs {want}");
        }
    }

    #[test]
    fn log_det_is_finite_and_consistent_with_scaling(
        coeffs in prop::collection::vec(-2.0f64..2.0, 9..=9),
    ) {
        let a = spd_from(&coeffs, 3);
        let chol = Cholesky::new(&a).expect("SPD");
        let ld = chol.log_det();
        prop_assert!(ld.is_finite());
        // det(2A) = 2³ det(A) for a 3×3 matrix.
        let chol2 = Cholesky::new(&a.scaled(2.0)).expect("scaled SPD");
        prop_assert!((chol2.log_det() - (ld + 3.0 * 2.0f64.ln())).abs() < 1e-8);
    }

    #[test]
    fn matmul_associates_with_vectors(
        coeffs in prop::collection::vec(-2.0f64..2.0, 12..=12),
        v in prop::collection::vec(-3.0f64..3.0, 3..=3),
    ) {
        // (A·B)·v == A·(B·v) for a 4×3 and 3×3 pair.
        let a = Matrix::from_vec(4, 3, coeffs[..12].to_vec());
        let b = spd_from(&coeffs[..9.min(coeffs.len())], 3);
        let lhs = a.matmul(&b).matvec(&v);
        let rhs = a.matvec(&b.matvec(&v));
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }
}
