//! Property-based tests: Cholesky correctness on arbitrary SPD matrices,
//! driven by the in-repo deterministic seed-sweep harness
//! ([`varbench_rng::sweep`]).

use varbench_linalg::{Cholesky, Matrix};
use varbench_rng::sweep::sweep;

/// Builds a random SPD matrix A = BᵀB + εI from a flat coefficient list.
fn spd_from(coeffs: &[f64], n: usize) -> Matrix {
    let b = Matrix::from_vec(n, n, coeffs[..n * n].to_vec());
    let mut a = b.transpose().matmul(&b);
    a.add_diagonal(0.5);
    a
}

#[test]
fn cholesky_reconstructs_spd() {
    sweep("cholesky_reconstructs_spd", 48, |case| {
        let c = case.f64s(-3.0, 3.0, 16);
        let a = spd_from(&c, 4);
        let chol = Cholesky::new(&a).expect("SPD by construction");
        let r = chol.reconstruct();
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (r[(i, j)] - a[(i, j)]).abs() < 1e-8,
                    "({i},{j}): {} vs {}",
                    r[(i, j)],
                    a[(i, j)]
                );
            }
        }
    });
}

#[test]
fn cholesky_solve_satisfies_system() {
    sweep("cholesky_solve_satisfies_system", 48, |case| {
        let c = case.f64s(-3.0, 3.0, 16);
        let b = case.f64s(-5.0, 5.0, 4);
        let a = spd_from(&c, 4);
        let chol = Cholesky::new(&a).expect("SPD");
        let x = chol.solve(&b);
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-7, "{got} vs {want}");
        }
    });
}

#[test]
fn log_det_is_finite_and_consistent_with_scaling() {
    sweep(
        "log_det_is_finite_and_consistent_with_scaling",
        48,
        |case| {
            let c = case.f64s(-2.0, 2.0, 9);
            let a = spd_from(&c, 3);
            let chol = Cholesky::new(&a).expect("SPD");
            let ld = chol.log_det();
            assert!(ld.is_finite());
            // det(2A) = 2³ det(A) for a 3×3 matrix.
            let chol2 = Cholesky::new(&a.scaled(2.0)).expect("scaled SPD");
            assert!((chol2.log_det() - (ld + 3.0 * 2.0f64.ln())).abs() < 1e-8);
        },
    );
}

#[test]
fn matmul_associates_with_vectors() {
    sweep("matmul_associates_with_vectors", 48, |case| {
        // (A·B)·v == A·(B·v) for a 4×3 and 3×3 pair.
        let c = case.f64s(-2.0, 2.0, 12);
        let v = case.f64s(-3.0, 3.0, 3);
        let a = Matrix::from_vec(4, 3, c[..12].to_vec());
        let b = spd_from(&c[..9], 3);
        let lhs = a.matmul(&b).matvec(&v);
        let rhs = a.matvec(&b.matvec(&v));
        for (x, y) in lhs.iter().zip(&rhs) {
            assert!((x - y).abs() < 1e-9);
        }
    });
}
