//! Golden bit-identity tests: the rewritten (vectorized / blocked /
//! transpose-aware) kernels must reproduce the seed implementations
//! **exactly**, bit for bit, on randomized shapes and contents — this is
//! the contract that keeps every paper artifact byte-identical across
//! perf work. Driven by the in-repo seed-sweep harness
//! ([`varbench_rng::sweep`]).

use varbench_linalg::{Cholesky, Matrix};
use varbench_rng::sweep::sweep;

/// Verbatim copy of the seed `matmul` loop (ikj order, ascending-k
/// accumulation per output element, exact-zero `a` terms skipped).
fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(i, k)];
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out[(i, j)] += av * b[(k, j)];
            }
        }
    }
    out
}

/// Verbatim copy of the seed `matvec` (one sum per row, ascending k).
fn reference_matvec(a: &Matrix, v: &[f64]) -> Vec<f64> {
    (0..a.rows())
        .map(|i| a.row(i).iter().zip(v).map(|(x, y)| x * y).sum())
        .collect()
}

/// Verbatim copy of the seed Cholesky factorization loop.
fn reference_cholesky(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs ({g} vs {w})"
        );
    }
}

/// Random matrix with a sprinkling of exact zeros (so the zero-skip paths
/// are exercised, not just the dense fast paths).
fn random_matrix(case: &mut varbench_rng::sweep::Case, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        if case.f64_in(0.0, 1.0) < 0.15 {
            0.0
        } else {
            case.f64_in(-3.0, 3.0)
        }
    })
}

#[test]
fn matmul_bit_identical_to_seed_loop() {
    sweep("matmul_bit_identical_to_seed_loop", 64, |case| {
        let (m, k, n) = (
            case.usize_in(1, 13),
            case.usize_in(1, 13),
            case.usize_in(1, 13),
        );
        let a = random_matrix(case, m, k);
        let b = random_matrix(case, k, n);
        let got = a.matmul(&b);
        let want = reference_matmul(&a, &b);
        assert_bits_eq(got.as_slice(), want.as_slice(), "matmul");
    });
}

#[test]
fn matmul_transb_bit_identical_to_transpose_route() {
    sweep(
        "matmul_transb_bit_identical_to_transpose_route",
        64,
        |case| {
            let (m, k, n) = (
                case.usize_in(1, 13),
                case.usize_in(1, 13),
                case.usize_in(1, 13),
            );
            let a = random_matrix(case, m, k);
            let b = random_matrix(case, n, k);
            let got = a.matmul_transb(&b);
            let want = reference_matmul(&a, &b.transpose());
            assert_bits_eq(got.as_slice(), want.as_slice(), "matmul_transb");
        },
    );
}

#[test]
fn matvec_bit_identical_to_seed_loop() {
    sweep("matvec_bit_identical_to_seed_loop", 64, |case| {
        let (m, k) = (case.usize_in(1, 24), case.usize_in(1, 24));
        let a = random_matrix(case, m, k);
        let v = case.f64s(-2.0, 2.0, k);
        let want = reference_matvec(&a, &v);
        assert_bits_eq(&a.matvec(&v), &want, "matvec");
        let mut out = vec![0.0; m];
        a.matvec_into(&v, &mut out);
        assert_bits_eq(&out, &want, "matvec_into");
    });
}

#[test]
fn cholesky_bit_identical_to_seed_loop() {
    sweep("cholesky_bit_identical_to_seed_loop", 48, |case| {
        let n = case.usize_in(1, 10);
        // SPD by construction: BᵀB + I.
        let b = random_matrix(case, n, n);
        let mut a = b.transpose().matmul(&b);
        a.add_diagonal(1.0);
        let want = reference_cholesky(&a).expect("SPD by construction");
        let got = Cholesky::new(&a).expect("SPD by construction");
        assert_bits_eq(got.factor().as_slice(), want.as_slice(), "cholesky");
        // The triangular solves must match the seed's elimination order too.
        let rhs = case.f64s(-5.0, 5.0, n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = rhs[i];
            for k in 0..i {
                sum -= want[(i, k)] * y[k];
            }
            y[i] = sum / want[(i, i)];
        }
        assert_bits_eq(&got.solve_lower(&rhs), &y, "solve_lower");
    });
}
