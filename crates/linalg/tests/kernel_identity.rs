//! Golden bit-identity tests: the rewritten (vectorized / blocked /
//! transpose-aware) kernels must reproduce the seed implementations
//! **exactly**, bit for bit, on randomized shapes and contents — this is
//! the contract that keeps every paper artifact byte-identical across
//! perf work. Driven by the in-repo seed-sweep harness
//! ([`varbench_rng::sweep`]).

use varbench_linalg::{
    compact_nonzero, gemm_rows_into, gemm_transb_into, vecmat_nz_into, Cholesky, Matrix,
};
use varbench_rng::sweep::sweep;

/// Verbatim copy of the seed `matmul` loop (ikj order, ascending-k
/// accumulation per output element, exact-zero `a` terms skipped).
fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(i, k)];
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out[(i, j)] += av * b[(k, j)];
            }
        }
    }
    out
}

/// Verbatim copy of the seed `matvec` (one sum per row, ascending k).
fn reference_matvec(a: &Matrix, v: &[f64]) -> Vec<f64> {
    (0..a.rows())
        .map(|i| a.row(i).iter().zip(v).map(|(x, y)| x * y).sum())
        .collect()
}

/// Verbatim copy of the seed Cholesky factorization loop.
fn reference_cholesky(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs ({g} vs {w})"
        );
    }
}

/// Random matrix with a sprinkling of exact zeros (so the zero-skip paths
/// are exercised, not just the dense fast paths).
fn random_matrix(case: &mut varbench_rng::sweep::Case, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        if case.f64_in(0.0, 1.0) < 0.15 {
            0.0
        } else {
            case.f64_in(-3.0, 3.0)
        }
    })
}

#[test]
fn matmul_bit_identical_to_seed_loop() {
    sweep("matmul_bit_identical_to_seed_loop", 64, |case| {
        let (m, k, n) = (
            case.usize_in(1, 13),
            case.usize_in(1, 13),
            case.usize_in(1, 13),
        );
        let a = random_matrix(case, m, k);
        let b = random_matrix(case, k, n);
        let got = a.matmul(&b);
        let want = reference_matmul(&a, &b);
        assert_bits_eq(got.as_slice(), want.as_slice(), "matmul");
    });
}

#[test]
fn matmul_transb_bit_identical_to_transpose_route() {
    sweep(
        "matmul_transb_bit_identical_to_transpose_route",
        64,
        |case| {
            let (m, k, n) = (
                case.usize_in(1, 13),
                case.usize_in(1, 13),
                case.usize_in(1, 13),
            );
            let a = random_matrix(case, m, k);
            let b = random_matrix(case, n, k);
            let got = a.matmul_transb(&b);
            let want = reference_matmul(&a, &b.transpose());
            assert_bits_eq(got.as_slice(), want.as_slice(), "matmul_transb");
        },
    );
}

#[test]
fn matvec_bit_identical_to_seed_loop() {
    sweep("matvec_bit_identical_to_seed_loop", 64, |case| {
        let (m, k) = (case.usize_in(1, 24), case.usize_in(1, 24));
        let a = random_matrix(case, m, k);
        let v = case.f64s(-2.0, 2.0, k);
        let want = reference_matvec(&a, &v);
        assert_bits_eq(&a.matvec(&v), &want, "matvec");
        let mut out = vec![0.0; m];
        a.matvec_into(&v, &mut out);
        assert_bits_eq(&out, &want, "matvec_into");
    });
}

/// Verbatim copy of the seed per-example forward loop: one bias-seeded
/// ascending-k dot product per (example, output) pair — the accumulation
/// order both batch-GEMM kernels must preserve per element.
fn reference_batch_forward(
    x: &[f64],
    w: &[f64],
    bias: &[f64],
    n: usize,
    d: usize,
    m: usize,
) -> Vec<f64> {
    let mut out = vec![0.0; n * m];
    for s in 0..n {
        for o in 0..m {
            let mut acc = bias[o];
            for k in 0..d {
                acc += w[o * d + k] * x[s * d + k];
            }
            out[s * m + o] = acc;
        }
    }
    out
}

#[test]
fn batch_gemm_bit_identical_to_seed_forward_loop() {
    sweep(
        "batch_gemm_bit_identical_to_seed_forward_loop",
        64,
        |case| {
            // Shapes straddle the 4-example block, the 4-fused-k pass and the
            // 2-wide output blocking (plus their tails).
            let (n, d, m) = (
                case.usize_in(1, 11),
                case.usize_in(1, 11),
                case.usize_in(1, 11),
            );
            let x = random_matrix(case, n, d);
            let w = random_matrix(case, m, d);
            let bias: Vec<f64> = (0..m).map(|_| case.f64_in(-1.0, 1.0)).collect();
            let want = reference_batch_forward(x.as_slice(), w.as_slice(), &bias, n, d, m);

            let wt = w.transpose();
            let mut by_rows = vec![f64::NAN; n * m];
            gemm_rows_into(x.as_slice(), wt.as_slice(), &bias, m, &mut by_rows);
            assert_bits_eq(&by_rows, &want, "gemm_rows_into");

            let mut by_transb = vec![f64::NAN; n * m];
            gemm_transb_into(x.as_slice(), w.as_slice(), &bias, m, &mut by_transb);
            assert_bits_eq(&by_transb, &want, "gemm_transb_into");
        },
    );
}

#[test]
fn vecmat_nz_bit_identical_to_seed_delta_loop() {
    sweep("vecmat_nz_bit_identical_to_seed_delta_loop", 64, |case| {
        let (n, d) = (case.usize_in(1, 12), case.usize_in(1, 20));
        let rows = random_matrix(case, n, d);
        // ReLU-like coefficient sparsity, with exact zeros guarding ±∞
        // rows (the 0·∞ hazard the seed's skip exists for).
        let coef: Vec<f64> = (0..n)
            .map(|_| {
                if case.f64_in(0.0, 1.0) < 0.4 {
                    0.0
                } else {
                    case.f64_in(-2.0, 2.0)
                }
            })
            .collect();
        let mut rows = rows.as_slice().to_vec();
        for (j, &c) in coef.iter().enumerate() {
            if c == 0.0 && case.f64_in(0.0, 1.0) < 0.5 {
                rows[j * d] = f64::INFINITY;
            }
        }
        // Seed loop: zero-fill then ascending-j axpys over non-zeros.
        let mut want = vec![0.0; d];
        for (j, &c) in coef.iter().enumerate() {
            if c != 0.0 {
                for k in 0..d {
                    want[k] += c * rows[j * d + k];
                }
            }
        }
        let mut idx = vec![0usize; n];
        let nnz = compact_nonzero(&coef, &mut idx);
        let mut got = vec![f64::NAN; d];
        vecmat_nz_into(&coef, &idx[..nnz], &rows, d, &mut got);
        assert_bits_eq(&got, &want, "vecmat_nz_into");
    });
}

#[test]
fn cholesky_bit_identical_to_seed_loop() {
    sweep("cholesky_bit_identical_to_seed_loop", 48, |case| {
        let n = case.usize_in(1, 10);
        // SPD by construction: BᵀB + I.
        let b = random_matrix(case, n, n);
        let mut a = b.transpose().matmul(&b);
        a.add_diagonal(1.0);
        let want = reference_cholesky(&a).expect("SPD by construction");
        let got = Cholesky::new(&a).expect("SPD by construction");
        assert_bits_eq(got.factor().as_slice(), want.as_slice(), "cholesky");
        // The triangular solves must match the seed's elimination order too.
        let rhs = case.f64s(-5.0, 5.0, n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = rhs[i];
            for k in 0..i {
                sum -= want[(i, k)] * y[k];
            }
            y[i] = sum / want[(i, i)];
        }
        assert_bits_eq(&got.solve_lower(&rhs), &y, "solve_lower");
    });
}

#[test]
fn solve_lower_batch_bit_identical_to_per_rhs_solves() {
    sweep(
        "solve_lower_batch_bit_identical_to_per_rhs_solves",
        48,
        |case| {
            let n = case.usize_in(1, 10);
            // Candidate counts straddle any batching granularity, including
            // the empty batch.
            let count = case.usize_in(0, 9);
            let b = random_matrix(case, n, n);
            let mut a = b.transpose().matmul(&b);
            a.add_diagonal(1.0);
            let chol = Cholesky::new(&a).expect("SPD by construction");
            let rhs = case.f64s(-5.0, 5.0, count * n);
            // Reference: one per-candidate `solve_lower_into` call each —
            // the exact elimination chain the batch kernel must preserve.
            let mut want = Vec::new();
            let mut y = Vec::new();
            for c in 0..count {
                chol.solve_lower_into(&rhs[c * n..(c + 1) * n], &mut y);
                want.extend_from_slice(&y);
            }
            let mut got = vec![f64::NAN; 0];
            chol.solve_lower_batch_into(&rhs, count, &mut got);
            assert_bits_eq(&got, &want, "solve_lower_batch_into");
        },
    );
}
