//! A hand-rolled lossy Rust lexer — just enough fidelity for lints.
//!
//! The lints in this crate are token-pattern checks: "ident `HashMap`
//! outside a string", "comment containing `SAFETY:` above an `unsafe`",
//! and so on. What they need from a lexer is *not* full grammar — only
//! that the four hard token classes are classified correctly, because
//! misclassifying any of them turns lint matching into text matching:
//!
//! * **comments** — line comments, doc comments and *nested* block
//!   comments (`/* /* */ */` is one comment in Rust);
//! * **string-likes** — plain strings with escapes, raw strings with
//!   arbitrary `#` fences (`r##"…"##` may contain `"#`, `//` and `*/`
//!   without ending anything), byte and C variants;
//! * **char vs lifetime** — `'a'` is a char, `'a` is a lifetime,
//!   `'\u{41}'` is a char, `'outer:` is a label;
//! * **idents** — including raw idents (`r#fn`), so `r#"…"#` raw strings
//!   and `r#match` raw idents disambiguate on the byte after the fence.
//!
//! The lexer is *lossy* by design: numbers are folded greedily
//! (`1e-5` lexes as `1e`, `-`, `5`), every unrecognized byte becomes a
//! one-byte [`TokenKind::Punct`], and unterminated literals run to end of
//! file instead of erroring. None of that affects any lint, and it means
//! the lexer total-functions over arbitrary input — fixture files and
//! half-written code lex fine. Guaranteed behaviour is pinned by the
//! golden tests in `tests/lexer_golden.rs`.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unsafe`, …).
    Ident,
    /// A raw identifier (`r#fn`), fence included in the token text.
    RawIdent,
    /// A lifetime or loop label (`'a`, `'static`), quote included.
    Lifetime,
    /// A char or byte-char literal (`'x'`, `b'\n'`), quotes included.
    Char,
    /// A plain (possibly byte/C) string literal, quotes included.
    Str,
    /// A raw (possibly byte/C) string literal, fences included.
    RawStr,
    /// A numeric literal (greedy: digits, `_`, alphanumeric suffixes and
    /// decimal points followed by a digit).
    Number,
    /// A `//` comment (doc comments `///` and `//!` included), newline
    /// excluded.
    LineComment,
    /// A `/* … */` comment (nesting respected), delimiters included.
    BlockComment,
    /// Any other single byte: operators, brackets, `#`, `!`, ….
    Punct,
}

/// One token: a classification plus the byte span it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The source text the token covers.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a whitespace-free token stream.
///
/// Never fails: unrecognized bytes become [`TokenKind::Punct`] and
/// unterminated literals extend to end of input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_whitespace() {
                self.bump();
                continue;
            }
            let start = self.pos;
            let line = self.line;
            let kind = self.token(b);
            out.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.src.len() {
                self.bump();
            }
        }
    }

    /// Consumes one token starting at byte `b` and returns its kind.
    fn token(&mut self, b: u8) -> TokenKind {
        match b {
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'\'' => self.quote(),
            b'"' => self.string(),
            b'r' | b'b' | b'c' => self.maybe_prefixed(),
            _ if is_ident_start(b) => self.ident(),
            _ if b.is_ascii_digit() => self.number(),
            _ => {
                self.bump();
                TokenKind::Punct
            }
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.bump();
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump_n(2); // consume `/*`
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump_n(2);
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        TokenKind::BlockComment
    }

    /// `'` — a char literal, a lifetime, or a stray quote.
    fn quote(&mut self) -> TokenKind {
        self.bump(); // consume `'`
        match self.peek(0) {
            // Escaped char literal: `\` plus the escaped char are
            // consumed unconditionally (so `'\''` closes on the *third*
            // quote), then scan to the closing quote.
            Some(b'\\') => {
                self.bump_n(2);
                while self.pos < self.src.len() {
                    match self.src[self.pos] {
                        b'\\' => self.bump_n(2),
                        b'\'' => {
                            self.bump();
                            return TokenKind::Char;
                        }
                        _ => self.bump(),
                    }
                }
                TokenKind::Char // unterminated: runs to EOF
            }
            Some(c) => {
                // One char (UTF-8 aware) then a quote => char literal;
                // ident-start => lifetime/label; otherwise stray punct.
                let len = utf8_len(c);
                if self.peek(len) == Some(b'\'') {
                    self.bump_n(len + 1);
                    TokenKind::Char
                } else if is_ident_start(c) {
                    while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                        self.bump();
                    }
                    TokenKind::Lifetime
                } else {
                    TokenKind::Punct // the bare `'` already consumed
                }
            }
            None => TokenKind::Punct,
        }
    }

    /// A plain `"…"` string body (opening quote not yet consumed).
    fn string(&mut self) -> TokenKind {
        self.bump(); // consume `"`
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return TokenKind::Str;
                }
                _ => self.bump(),
            }
        }
        TokenKind::Str // unterminated
    }

    /// `r`, `b` or `c`: raw strings, byte/C strings, raw idents, or a
    /// plain ident that merely starts with one of those letters.
    fn maybe_prefixed(&mut self) -> TokenKind {
        let b0 = self.src[self.pos];
        // Prefix letters: `r`, `b`, `br`, `c`, `cr` … normalize to
        // (has_r, offset past the letters).
        let (has_r, letters) = match (b0, self.peek(1)) {
            (b'r', _) => (true, 1),
            (b'b' | b'c', Some(b'r')) => (true, 2),
            (b'b' | b'c', _) => (false, 1),
            _ => (false, 1),
        };
        if has_r {
            // Count `#` fence after the letters.
            let mut fence = 0usize;
            while self.peek(letters + fence) == Some(b'#') {
                fence += 1;
            }
            match self.peek(letters + fence) {
                Some(b'"') => {
                    self.bump_n(letters + fence + 1);
                    return self.raw_string_body(fence);
                }
                Some(c) if fence == 1 && b0 == b'r' && is_ident_start(c) => {
                    // Raw ident `r#foo`.
                    self.bump_n(2);
                    while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                        self.bump();
                    }
                    return TokenKind::RawIdent;
                }
                _ => {}
            }
        } else {
            match self.peek(letters) {
                Some(b'"') => {
                    self.bump_n(letters);
                    return self.string();
                }
                Some(b'\'') if b0 == b'b' => {
                    self.bump_n(letters);
                    return self.quote();
                }
                _ => {}
            }
        }
        self.ident()
    }

    /// The body of a raw string after `r#…#"`: ends at `"` + `fence` `#`s.
    fn raw_string_body(&mut self, fence: usize) -> TokenKind {
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                let mut matched = 0usize;
                while matched < fence && self.peek(1 + matched) == Some(b'#') {
                    matched += 1;
                }
                if matched == fence {
                    self.bump_n(1 + fence);
                    return TokenKind::RawStr;
                }
            }
            self.bump();
        }
        TokenKind::RawStr // unterminated
    }

    fn ident(&mut self) -> TokenKind {
        while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
            self.bump();
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        self.bump();
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else if b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()) {
                // `1.5` continues the number; `1..n` does not.
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Number
    }
}

/// Byte length of the UTF-8 char starting with `b` (1 for ASCII/invalid).
fn utf8_len(b: u8) -> usize {
    match b {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    #[test]
    fn comments_and_idents() {
        let src = "let x = 1; // trailing\n/* a /* nested */ b */ fn";
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::LineComment, "// trailing")));
        assert!(toks.contains(&(TokenKind::BlockComment, "/* a /* nested */ b */")));
        assert_eq!(toks.last(), Some(&(TokenKind::Ident, "fn")));
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(
            kinds("'a' 'a 'static '\\'' b'x'"),
            vec![
                (TokenKind::Char, "'a'"),
                (TokenKind::Lifetime, "'a"),
                (TokenKind::Lifetime, "'static"),
                (TokenKind::Char, "'\\''"),
                (TokenKind::Char, "b'x'"),
            ]
        );
    }

    #[test]
    fn raw_string_vs_raw_ident() {
        let src = "r#\"body \"# r#match r\"plain\" br##\"x\"# still\"##";
        assert_eq!(
            kinds(src),
            vec![
                (TokenKind::RawStr, "r#\"body \"#"),
                (TokenKind::RawIdent, "r#match"),
                (TokenKind::RawStr, "r\"plain\""),
                (TokenKind::RawStr, "br##\"x\"# still\"##"),
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c");
        assert_eq!(
            toks.iter().map(|t| t.line).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }
}
